"""Legacy shim so `pip install -e . --no-use-pep517` works on machines
without the `wheel` package (e.g. offline clusters).  All metadata lives
in pyproject.toml."""

from setuptools import setup

setup()
