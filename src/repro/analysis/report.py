"""Summary reports over compressed traces — computed from the CTT records
directly, without decompression (one of the points of structural
compression: analyses read the compressed form).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.inter import MergedCTT
from repro.mpisim.events import COLLECTIVES


@dataclass
class OpSummary:
    op: str
    calls: int = 0  # total dynamic calls across ranks
    nbytes: int = 0  # total payload bytes
    time_us: float = 0.0  # total time inside the op (sum over ranks)


@dataclass
class TraceReport:
    nranks: int
    vertices: int
    groups: int
    ops: dict[str, OpSummary] = field(default_factory=dict)
    total_comm_us: float = 0.0
    total_gap_us: float = 0.0  # computation time between events

    @property
    def total_events(self) -> int:
        return sum(o.calls for o in self.ops.values())

    @property
    def comm_fraction(self) -> float:
        total = self.total_comm_us + self.total_gap_us
        return self.total_comm_us / total if total else 0.0

    def p2p_volume(self) -> int:
        return sum(
            o.nbytes for o in self.ops.values() if o.op not in COLLECTIVES
        )

    def collective_volume(self) -> int:
        return sum(o.nbytes for o in self.ops.values() if o.op in COLLECTIVES)

    def format(self) -> str:
        lines = [
            f"ranks: {self.nranks}   CTT vertices: {self.vertices}   "
            f"rank groups: {self.groups}",
            f"events: {self.total_events}   "
            f"comm time fraction: {self.comm_fraction * 100:.1f}%",
            f"{'op':16s} {'calls':>10s} {'bytes':>14s} {'time(ms)':>10s}",
        ]
        for op in sorted(self.ops, key=lambda o: -self.ops[o].time_us):
            s = self.ops[op]
            lines.append(
                f"{op:16s} {s.calls:10d} {s.nbytes:14d} {s.time_us / 1e3:10.2f}"
            )
        return "\n".join(lines)


def summarize(merged: MergedCTT) -> TraceReport:
    """Aggregate per-op statistics straight from the merged records."""
    ranks: set[int] = set()
    report = TraceReport(
        nranks=0,
        vertices=merged.vertex_count(),
        groups=merged.group_count(),
    )
    for vertex in merged.root.preorder():
        for group in vertex.groups.values():
            ranks.update(group.ranks)
            if not group.records:
                continue
            nmembers = len(group.ranks)
            for record in group.records:
                op = record.key[0]
                entry = report.ops.setdefault(op, OpSummary(op=op))
                calls = record.count * nmembers
                entry.calls += calls
                entry.nbytes += (record.key[5] + record.key[6]) * calls
                entry.time_us += record.duration.mean * record.duration.count
                report.total_comm_us += (
                    record.duration.mean * record.duration.count
                )
                report.total_gap_us += record.pre_gap.mean * record.pre_gap.count
    report.nranks = len(ranks)
    return report
