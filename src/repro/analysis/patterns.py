"""Communication-pattern extraction from compressed traces (paper §VII-D:
"The basic function with the compressed traces of CYPRESS is to analyze
program communication patterns", Figs. 17 and 20).

The volume matrix is computed directly from the merged CTT's leaf records
— no decompression pass needed: each send-type record contributes
``count × nbytes`` from every rank in its group to the decoded
destination.
"""

from __future__ import annotations

import numpy as np

from repro.core.inter import MergedCTT
from repro.core.ranks import decode_peer

_SEND_OPS = {"MPI_Send", "MPI_Isend"}


def communication_matrix(merged: MergedCTT, nprocs: int) -> np.ndarray:
    """``M[src, dst]`` = total point-to-point bytes sent src→dst."""
    matrix = np.zeros((nprocs, nprocs), dtype=np.int64)
    for vertex in merged.root.preorder():
        for group in vertex.groups.values():
            if group.records is None:
                continue
            for record in group.records:
                op = record.key[0]
                count = record.count
                if op in _SEND_OPS:
                    nbytes = record.key[5]
                    for rank in group.ranks:
                        dst = decode_peer(record.key[1], rank)
                        if 0 <= dst < nprocs:
                            matrix[rank, dst] += count * nbytes
                elif op == "MPI_Sendrecv":
                    nbytes = record.key[5]
                    for rank in group.ranks:
                        dst = decode_peer(record.key[1], rank)
                        if 0 <= dst < nprocs:
                            matrix[rank, dst] += count * nbytes
    return matrix


def message_sizes(merged: MergedCTT) -> dict[int, int]:
    """Distinct point-to-point message sizes -> total message count
    (the paper observes exactly two sizes for LESlie3d)."""
    sizes: dict[int, int] = {}
    for vertex in merged.root.preorder():
        for group in vertex.groups.values():
            if group.records is None:
                continue
            for record in group.records:
                if record.key[0] in _SEND_OPS or record.key[0] == "MPI_Sendrecv":
                    nbytes = record.key[5]
                    sizes[nbytes] = sizes.get(nbytes, 0) + record.count * len(
                        group.ranks
                    )
    return sizes


def neighbor_sets(matrix: np.ndarray) -> dict[int, list[int]]:
    """Per-rank list of communication partners (non-zero volume)."""
    out: dict[int, list[int]] = {}
    for rank in range(matrix.shape[0]):
        peers = sorted(
            set(np.nonzero(matrix[rank])[0]) | set(np.nonzero(matrix[:, rank])[0])
        )
        out[rank] = [int(p) for p in peers]
    return out


def ascii_heatmap(matrix: np.ndarray, width: int = 64) -> str:
    """Terminal rendering of a communication matrix (Figs. 17/20 stand-in).

    Rows are receivers, columns senders, like the paper's plots; darkness
    scales with volume.
    """
    n = matrix.shape[0]
    step = max(1, n // width)
    shades = " .:-=+*#%@"
    # Downsample by summing blocks.
    m = matrix[: (n // step) * step, : (n // step) * step]
    blocks = m.reshape(n // step, step, n // step, step).sum(axis=(1, 3))
    peak = blocks.max() or 1
    lines = []
    for row in blocks.T:  # transpose: paper plots receiver on Y
        chars = []
        for v in row:
            level = int((len(shades) - 1) * (v / peak) ** 0.5)
            chars.append(shades[level])
        lines.append("".join(chars))
    return "\n".join(lines)
