"""Communication-pattern extraction from compressed traces (paper §VII-D:
"The basic function with the compressed traces of CYPRESS is to analyze
program communication patterns", Figs. 17 and 20).

The volume matrix is computed directly from the merged CTT's leaf records
— no decompression pass needed: each send-type record contributes
``count × nbytes`` from every rank in its group to the decoded
destination.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import obs
from repro.core.inter import MergedCTT
from repro.core.ranks import try_decode_peer

_SEND_OPS = {"MPI_Send", "MPI_Isend", "MPI_Sendrecv"}


def communication_matrix(merged: MergedCTT, nprocs: int) -> np.ndarray:
    """``M[src, dst]`` = total point-to-point bytes sent src→dst.

    A destination that decodes outside ``[0, nprocs)`` (a damaged trace,
    or a matrix requested for the wrong rank count) cannot be charged to
    any cell; such sends are dropped *loudly* — a ``RuntimeWarning``
    naming the leaf plus a ``patterns.out_of_range_peers`` counter —
    instead of silently vanishing from the plot.
    """
    matrix = np.zeros((nprocs, nprocs), dtype=np.int64)
    dropped = 0
    dropped_at: tuple | None = None
    for vertex in merged.root.preorder():
        for group in vertex.groups.values():
            if group.records is None:
                continue
            for record in group.records:
                op = record.key[0]
                if op not in _SEND_OPS:
                    continue
                count = record.count
                nbytes = record.key[5]
                for rank in group.ranks:
                    dst, ok = try_decode_peer(record.key[1], rank, nprocs)
                    if ok and 0 <= dst < nprocs:
                        matrix[rank, dst] += count * nbytes
                    else:
                        dropped += 1
                        if dropped_at is None:
                            dropped_at = (vertex.gid, rank, dst)
    if dropped:
        gid, rank, dst = dropped_at
        warnings.warn(
            f"communication_matrix: dropped {dropped} send record(s) with "
            f"out-of-range destinations (first: gid={gid} rank={rank} "
            f"dst={dst}, nprocs={nprocs}) — damaged trace or wrong rank "
            "count",
            RuntimeWarning,
            stacklevel=2,
        )
        registry = obs.active()
        if registry is not None:
            registry.counter_add("patterns.out_of_range_peers", dropped)
    return matrix


def message_sizes(merged: MergedCTT) -> dict[int, int]:
    """Distinct point-to-point message sizes -> total message count
    (the paper observes exactly two sizes for LESlie3d)."""
    sizes: dict[int, int] = {}
    for vertex in merged.root.preorder():
        for group in vertex.groups.values():
            if group.records is None:
                continue
            for record in group.records:
                if record.key[0] in _SEND_OPS or record.key[0] == "MPI_Sendrecv":
                    nbytes = record.key[5]
                    sizes[nbytes] = sizes.get(nbytes, 0) + record.count * len(
                        group.ranks
                    )
    return sizes


def neighbor_sets(matrix: np.ndarray) -> dict[int, list[int]]:
    """Per-rank list of communication partners (non-zero volume)."""
    out: dict[int, list[int]] = {}
    for rank in range(matrix.shape[0]):
        peers = sorted(
            set(np.nonzero(matrix[rank])[0]) | set(np.nonzero(matrix[:, rank])[0])
        )
        out[rank] = [int(p) for p in peers]
    return out


def ascii_heatmap(matrix: np.ndarray, width: int = 64) -> str:
    """Terminal rendering of a communication matrix (Figs. 17/20 stand-in).

    Rows are receivers, columns senders, like the paper's plots; darkness
    scales with volume.
    """
    n = matrix.shape[0]
    step = max(1, n // width)
    shades = " .:-=+*#%@"
    # Downsample by summing blocks.
    m = matrix[: (n // step) * step, : (n // step) * step]
    blocks = m.reshape(n // step, step, n // step, step).sum(axis=(1, 3))
    peak = blocks.max() or 1
    lines = []
    for row in blocks.T:  # transpose: paper plots receiver on Y
        chars = []
        for v in row:
            level = int((len(shades) - 1) * (v / peak) ** 0.5)
            chars.append(shades[level])
        lines.append("".join(chars))
    return "\n".join(lines)
