"""Structural hotspot analysis: which loops/call sites dominate
communication time.

Because the compressed trace *is* the program structure (the CTT), time
can be attributed to source structures directly — no flat-trace
post-processing.  Each CST vertex aggregates the total communication time
of the records beneath it, giving a "which loop hurts" view (the paper's
performance-problem-identification use case, §I).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.inter import MergedCTT, MergedVertex
from repro.query.engine import critical_leaves, leaf_time as _leaf_time
from repro.static.cst import BRANCH, CALL, LOOP


@dataclass
class Hotspot:
    gid: int
    kind: str
    label: str  # op name for leaves, "loop"/"branch" otherwise
    depth: int
    total_us: float  # communication time under this vertex (summed over ranks)
    calls: int  # dynamic MPI calls under this vertex
    children: list["Hotspot"] = field(default_factory=list)

    def format(self, budget_us: float | None = None, indent: int = 0) -> str:
        total = budget_us if budget_us else (self.total_us or 1.0)
        share = 100.0 * self.total_us / total
        line = (
            f"{'  ' * indent}{self.label:<20s} {self.total_us / 1e3:10.2f} ms "
            f"{share:5.1f}%  ({self.calls} calls)"
        )
        lines = [line]
        for child in sorted(self.children, key=lambda h: -h.total_us):
            if child.total_us > 0:
                lines.append(child.format(total, indent + 1))
        return "\n".join(lines)


def hotspots(merged: MergedCTT) -> Hotspot:
    """Aggregate communication time bottom-up over the merged CTT."""

    def walk(vertex: MergedVertex, depth: int) -> Hotspot:
        if vertex.kind == CALL:
            total, calls = _leaf_time(vertex)
            return Hotspot(
                gid=vertex.gid, kind=CALL, label=vertex.op or "?",
                depth=depth, total_us=total, calls=calls,
            )
        children = [walk(c, depth + 1) for c in vertex.children]
        total = sum(c.total_us for c in children)
        calls = sum(c.calls for c in children)
        label = {LOOP: "loop", BRANCH: "branch"}.get(vertex.kind, "program")
        return Hotspot(
            gid=vertex.gid, kind=vertex.kind, label=f"{label}#{vertex.gid}",
            depth=depth, total_us=total, calls=calls, children=children,
        )

    return walk(merged.root, 0)


def top_leaves(merged: MergedCTT, n: int = 10) -> list[Hotspot]:
    """The n most expensive MPI call sites (delegates to the query
    engine's :func:`repro.query.engine.critical_leaves`)."""
    return [
        Hotspot(
            gid=c.gid, kind=CALL, label=c.op, depth=c.depth,
            total_us=c.total_us, calls=c.calls,
        )
        for c in critical_leaves(merged, n)
    ]
