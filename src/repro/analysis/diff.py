"""Trace diffing: compare two compressed traces rank by rank.

Useful for regression checks ("did the new library version change the
communication behaviour?") and for validating that two tracing runs of
the same program agree.  Comparison is on the *replayed call sequences*
(no timing), so traces produced by different compressor configurations —
or different trace-file versions — compare equal when the behaviour is
the same.

Where the sequences diverge, the report points at *program structure*,
not just an event index: each divergence carries the query-layer vertex
path of the call site on both sides (``loop#4/MPI_Send@6``), so "event
48237 differs" becomes "the send inside the halo-exchange loop differs".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decompress import decompress_all
from repro.core.inter import MergedCTT
from repro.query.paths import TreeIndex


@dataclass
class RankDiff:
    rank: int
    first_divergence: int  # event index, -1 if only lengths differ
    len_a: int
    len_b: int
    detail: str = ""
    path_a: str = ""  # vertex path of the divergent event in A ("" if absent)
    path_b: str = ""  # ... and in B

    def where(self) -> str:
        """Human-readable location of the divergence."""
        if self.path_a and self.path_b and self.path_a != self.path_b:
            return f"at {self.path_a} (A) vs {self.path_b} (B)"
        if self.path_a or self.path_b:
            return f"at {self.path_a or self.path_b}"
        return ""


@dataclass
class TraceDiff:
    identical: bool
    only_in_a: list[int] = field(default_factory=list)  # ranks
    only_in_b: list[int] = field(default_factory=list)
    diverged: list[RankDiff] = field(default_factory=list)

    def format(self) -> str:
        if self.identical:
            return "traces are identical"
        lines = []
        if self.only_in_a:
            lines.append(f"ranks only in A: {self.only_in_a}")
        if self.only_in_b:
            lines.append(f"ranks only in B: {self.only_in_b}")
        for d in self.diverged:
            where = d.where()
            suffix = f" [{where}]" if where else ""
            if d.first_divergence >= 0:
                lines.append(
                    f"rank {d.rank}: diverges at event {d.first_divergence}: "
                    f"{d.detail}{suffix}"
                )
            else:
                lines.append(
                    f"rank {d.rank}: lengths differ ({d.len_a} vs {d.len_b})"
                    f"{suffix}"
                )
        return "\n".join(lines)


def _safe_path(index: TreeIndex, gid: int) -> str:
    """Vertex path, or "" when the gid is unknown to this tree (salvaged
    or hand-built traces may carry unindexed gids)."""
    if gid not in index.by_gid:
        return ""
    return index.path(gid)


def diff_traces(a: MergedCTT, b: MergedCTT) -> TraceDiff:
    """Compare two merged traces by replayed call sequences."""
    events_a = decompress_all(a)
    events_b = decompress_all(b)
    index_a = TreeIndex(a)
    index_b = TreeIndex(b)
    result = TraceDiff(identical=True)
    result.only_in_a = sorted(set(events_a) - set(events_b))
    result.only_in_b = sorted(set(events_b) - set(events_a))
    if result.only_in_a or result.only_in_b:
        result.identical = False
    for rank in sorted(set(events_a) & set(events_b)):
        evs_a, evs_b = events_a[rank], events_b[rank]
        seq_a = [e.call_tuple() for e in evs_a]
        seq_b = [e.call_tuple() for e in evs_b]
        if seq_a == seq_b:
            continue
        result.identical = False
        idx = next(
            (i for i, (x, y) in enumerate(zip(seq_a, seq_b)) if x != y), -1
        )
        detail = ""
        path_a = path_b = ""
        if idx >= 0:
            detail = f"A={seq_a[idx][0]}{seq_a[idx][1:6]} B={seq_b[idx][0]}{seq_b[idx][1:6]}"
            path_a = _safe_path(index_a, evs_a[idx].gid)
            path_b = _safe_path(index_b, evs_b[idx].gid)
        else:
            # Lengths differ with a common prefix: point at the first
            # extra event of the longer trace.
            extra = len(seq_b)  # index of the first unmatched event
            if len(seq_a) > len(seq_b):
                path_a = _safe_path(index_a, evs_a[extra].gid)
            else:
                extra = len(seq_a)
                path_b = _safe_path(index_b, evs_b[extra].gid)
        result.diverged.append(
            RankDiff(
                rank=rank,
                first_divergence=idx,
                len_a=len(seq_a),
                len_b=len(seq_b),
                detail=detail,
                path_a=path_a,
                path_b=path_b,
            )
        )
    return result
