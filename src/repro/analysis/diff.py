"""Trace diffing: compare two compressed traces rank by rank.

Useful for regression checks ("did the new library version change the
communication behaviour?") and for validating that two tracing runs of
the same program agree.  Comparison is on the *replayed call sequences*
(no timing), so traces produced by different compressor configurations —
or different trace-file versions — compare equal when the behaviour is
the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.decompress import decompress_all
from repro.core.inter import MergedCTT


@dataclass
class RankDiff:
    rank: int
    first_divergence: int  # event index, -1 if only lengths differ
    len_a: int
    len_b: int
    detail: str = ""


@dataclass
class TraceDiff:
    identical: bool
    only_in_a: list[int] = field(default_factory=list)  # ranks
    only_in_b: list[int] = field(default_factory=list)
    diverged: list[RankDiff] = field(default_factory=list)

    def format(self) -> str:
        if self.identical:
            return "traces are identical"
        lines = []
        if self.only_in_a:
            lines.append(f"ranks only in A: {self.only_in_a}")
        if self.only_in_b:
            lines.append(f"ranks only in B: {self.only_in_b}")
        for d in self.diverged:
            if d.first_divergence >= 0:
                lines.append(
                    f"rank {d.rank}: diverges at event {d.first_divergence}: "
                    f"{d.detail}"
                )
            else:
                lines.append(
                    f"rank {d.rank}: lengths differ ({d.len_a} vs {d.len_b})"
                )
        return "\n".join(lines)


def diff_traces(a: MergedCTT, b: MergedCTT) -> TraceDiff:
    """Compare two merged traces by replayed call sequences."""
    traces_a = {r: [e.call_tuple() for e in evs]
                for r, evs in decompress_all(a).items()}
    traces_b = {r: [e.call_tuple() for e in evs]
                for r, evs in decompress_all(b).items()}
    result = TraceDiff(identical=True)
    result.only_in_a = sorted(set(traces_a) - set(traces_b))
    result.only_in_b = sorted(set(traces_b) - set(traces_a))
    if result.only_in_a or result.only_in_b:
        result.identical = False
    for rank in sorted(set(traces_a) & set(traces_b)):
        seq_a, seq_b = traces_a[rank], traces_b[rank]
        if seq_a == seq_b:
            continue
        result.identical = False
        idx = next(
            (i for i, (x, y) in enumerate(zip(seq_a, seq_b)) if x != y), -1
        )
        detail = ""
        if idx >= 0:
            detail = f"A={seq_a[idx][0]}{seq_a[idx][1:6]} B={seq_b[idx][0]}{seq_b[idx][1:6]}"
        result.diverged.append(
            RankDiff(
                rank=rank,
                first_divergence=idx,
                len_a=len(seq_a),
                len_b=len(seq_b),
                detail=detail,
            )
        )
    return result
