"""Trace analytics: communication patterns and measurement harness.

The decompression-free query layer lives in :mod:`repro.query`; its
public entry points are re-exported here so analysis callers have one
import surface.
"""

from repro.query import (
    CriticalLeaf,
    OrderingResult,
    RankProfile,
    Traffic,
    critical_leaves,
    ordering,
    rank_profile,
    traffic,
    vertex_path,
)

from .patterns import ascii_heatmap, communication_matrix, message_sizes, neighbor_sets
from .diff import RankDiff, TraceDiff, diff_traces
from .hotspots import Hotspot, hotspots, top_leaves
from .report import OpSummary, TraceReport, summarize
from .stats import MethodResult, RunMeasurement, measure_all_methods, APP_MEMORY_BASELINE

__all__ = [
    "CriticalLeaf",
    "OrderingResult",
    "RankProfile",
    "Traffic",
    "critical_leaves",
    "ordering",
    "rank_profile",
    "traffic",
    "vertex_path",
    "ascii_heatmap",
    "communication_matrix",
    "message_sizes",
    "neighbor_sets",
    "MethodResult",
    "RunMeasurement",
    "measure_all_methods",
    "APP_MEMORY_BASELINE",
    "OpSummary",
    "TraceReport",
    "summarize",
    "RankDiff",
    "TraceDiff",
    "diff_traces",
    "Hotspot",
    "hotspots",
    "top_leaves",
]
