"""Trace-size and overhead accounting shared by the benchmark harness.

``measure_all_methods`` runs one workload at one process count with every
tracer attached to a single execution, then reports per-method trace sizes
and compression overheads — the raw material of Figs. 15, 16, 18 and 19.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.rawtrace import RawTraceSink
from repro.baselines.scalatrace import ScalaTraceCompressor, merge_all_queues
from repro.baselines.scalatrace2 import ScalaTrace2Compressor, merge_all_st2
from repro.core.inter import merge_all
from repro.core.intra import CypressConfig, IntraProcessCompressor
from repro.core.serialize import dumps as cypress_dumps
from repro.driver import run_compiled
from repro.mpisim.pmpi import MultiSink, NullSink, TimingSink
from repro.static.instrument import compile_minimpi
from repro.workloads.base import Workload


@dataclass
class MethodResult:
    """One compression method's outcome on one run."""

    name: str
    trace_bytes: int = 0
    gzip_bytes: int | None = None
    intra_seconds: float = 0.0  # CPU time inside the compressor callbacks
    inter_seconds: float = 0.0  # wall time of the inter-process merge
    memory_bytes: int = 0  # per-process compressor working set (max rank)


@dataclass
class RunMeasurement:
    workload: str
    nprocs: int
    base_seconds: float  # untraced execution wall time (denominator)
    app_events: int
    methods: dict[str, MethodResult] = field(default_factory=dict)

    def overhead_pct(self, method: str, phase: str = "intra") -> float:
        m = self.methods[method]
        sec = m.intra_seconds if phase == "intra" else m.inter_seconds
        return 100.0 * sec / self.base_seconds if self.base_seconds else 0.0


# Nominal per-rank application heap the memory overheads are measured
# against (the simulator has no real application arrays; NPB CLASS D uses
# on the order of 100 MB/rank — we use a conservative 64 MB baseline).
APP_MEMORY_BASELINE = 64 << 20


def measure_all_methods(
    workload: Workload,
    nprocs: int,
    scale: float = 1.0,
    methods: tuple[str, ...] = ("gzip", "scalatrace", "scalatrace2", "cypress"),
    config: CypressConfig | None = None,
) -> RunMeasurement:
    """Execute once per method-set (single run, all sinks attached) and
    collect sizes + overheads."""
    workload.check_procs(nprocs)
    defines = workload.defines(nprocs, scale)

    # Baseline: untraced run (Fig. 16's denominator).
    compiled_plain = compile_minimpi(workload.source, cypress=False)
    t0 = time.perf_counter()
    base_result = run_compiled(compiled_plain, nprocs, defines=defines, tracer=NullSink())
    base_seconds = time.perf_counter() - t0

    sinks = []
    timed: dict[str, TimingSink] = {}
    raw = st = st2 = cyp = None
    if "gzip" in methods:
        raw = RawTraceSink()
        timed["gzip"] = TimingSink(raw)
        sinks.append(timed["gzip"])
    if "scalatrace" in methods:
        st = ScalaTraceCompressor()
        timed["scalatrace"] = TimingSink(st)
        sinks.append(timed["scalatrace"])
    if "scalatrace2" in methods:
        st2 = ScalaTrace2Compressor()
        timed["scalatrace2"] = TimingSink(st2)
        sinks.append(timed["scalatrace2"])
    compiled = compile_minimpi(workload.source)
    if "cypress" in methods:
        cyp = IntraProcessCompressor(compiled.cst, config=config)
        timed["cypress"] = TimingSink(cyp)
        sinks.append(timed["cypress"])

    run_result = run_compiled(compiled, nprocs, defines=defines, tracer=MultiSink(sinks))

    out = RunMeasurement(
        workload=workload.name,
        nprocs=nprocs,
        base_seconds=base_seconds,
        app_events=run_result.total_events,
    )

    if raw is not None:
        m = MethodResult("gzip")
        m.trace_bytes = raw.total_bytes()
        m.gzip_bytes = raw.gzip_bytes()
        m.intra_seconds = timed["gzip"].elapsed
        m.memory_bytes = max(
            (raw.rank_bytes(r) for r in range(nprocs)), default=0
        )
        out.methods["gzip"] = m
    if st is not None:
        from repro.baselines.serialize import scalatrace_dumps

        m = MethodResult("scalatrace")
        m.intra_seconds = timed["scalatrace"].elapsed
        t0 = time.perf_counter()
        merged = merge_all_queues({r: st.queue(r) for r in range(nprocs)})
        m.inter_seconds = time.perf_counter() - t0
        m.trace_bytes = len(scalatrace_dumps(merged))
        m.memory_bytes = max(st.approx_memory(r) for r in range(nprocs))
        out.methods["scalatrace"] = m
    if st2 is not None:
        from repro.baselines.serialize import scalatrace2_dumps

        m = MethodResult("scalatrace2")
        m.intra_seconds = timed["scalatrace2"].elapsed
        t0 = time.perf_counter()
        merged2 = merge_all_st2({r: st2.queue(r) for r in range(nprocs)})
        m.inter_seconds = time.perf_counter() - t0
        data2 = scalatrace2_dumps(merged2)
        m.trace_bytes = len(data2)
        m.gzip_bytes = len(_gzip_compress(data2))
        m.memory_bytes = max(st2.approx_memory(r) for r in range(nprocs))
        out.methods["scalatrace2"] = m
    if cyp is not None:
        m = MethodResult("cypress")
        m.intra_seconds = timed["cypress"].elapsed
        t0 = time.perf_counter()
        merged_c = merge_all([cyp.ctt(r) for r in range(nprocs)])
        m.inter_seconds = time.perf_counter() - t0
        data = cypress_dumps(merged_c)
        m.trace_bytes = len(data)
        m.gzip_bytes = len(_gzip_compress(data))
        m.memory_bytes = max(cyp.approx_bytes(r) for r in range(nprocs))
        out.methods["cypress"] = m
    return out


def _gzip_compress(data: bytes) -> bytes:
    import gzip

    return gzip.compress(data, 6)
