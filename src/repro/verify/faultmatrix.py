"""Seeded fault matrix: prove the checkers detect every damage class.

A checker that always says "clean" is worse than no checker.  This
module runs the *negative* half of ``repro check``: for every
payload-corruption kind (:data:`repro.faults.payload.PAYLOAD_KINDS`) it
damages a freshly merged trace and requires :func:`check_merged` to
report at least one violation — including the kind's namesake code —
and for every stream-corruption kind
(:data:`repro.faults.plan.CORRUPT_KINDS`) it requires strict compression
to raise :class:`~repro.core.errors.StreamMismatchError` and lenient
compression to quarantine exactly the victim rank.

Same seed → same victims, same damage — a failing matrix entry is
reproducible from the CI report alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import StreamMismatchError
from repro.core.inter import merge_all
from repro.core.intra import compress_streams
from repro.driver import run_compiled
from repro.faults.payload import PAYLOAD_KINDS, corrupt_merged
from repro.faults.plan import CORRUPT_KINDS, FaultPlan
from repro.faults.streams import corrupt_stream
from repro.mpisim.pmpi import StreamCaptureSink
from repro.static.instrument import compile_minimpi

from .invariants import check_merged

#: Violation codes each payload kind must produce (the namesake plus the
#: secondary codes the same damage legitimately trips).
EXPECTED_CODES = {
    "occ-overlap": {"occ-overlap", "occ-regress", "occ-count",
                    "occ-not-contiguous"},
    "occ-hole": {"occ-count", "occ-not-contiguous"},
    "rank-overlap": {"rank-overlap", "ranks-unsorted"},
    "rank-range": {"rank-range"},
    "signature-stale": {"signature-stale"},
    "loop-negative": {"loop-negative"},
    "peer-range": {"peer-range"},
    "visits-regress": {"visits-regress", "visit-overlap", "visit-bounds"},
}


@dataclass
class MatrixEntry:
    kind: str
    detected: bool
    description: str
    codes: list[str] = field(default_factory=list)
    violations: int = 0
    skipped: bool = False  # kind has no site in this trace's shape

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detected": self.detected,
            "description": self.description,
            "codes": self.codes,
            "violations": self.violations,
            "skipped": self.skipped,
        }


@dataclass
class MatrixReport:
    workload: str
    nprocs: int
    seed: int
    entries: list[MatrixEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every *applicable* kind detected.  A kind with no corruption
        site in this trace's shape (e.g. no multi-occurrence record in a
        tiny workload) is skipped, not failed — but at least one kind
        must have actually run."""
        ran = [e for e in self.entries if not e.skipped]
        return bool(ran) and all(e.detected for e in ran)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "nprocs": self.nprocs,
            "seed": self.seed,
            "ok": self.ok,
            "entries": [e.to_dict() for e in self.entries],
        }


def run_fault_matrix(
    source: str,
    nprocs: int,
    defines: dict[str, int] | None = None,
    *,
    workload: str = "<inline>",
    seed: int = 20260807,
) -> MatrixReport:
    """Run every corruption kind against one workload's trace."""
    report = MatrixReport(workload=workload, nprocs=nprocs, seed=seed)
    plan = FaultPlan(seed=seed)
    compiled = compile_minimpi(source)
    capture = StreamCaptureSink()
    run_compiled(compiled, nprocs, defines=defines, tracer=capture)
    compressor = compress_streams(compiled.cst, capture.streams)
    ctts = [compressor.ctt(r) for r in range(nprocs)]

    for kind in PAYLOAD_KINDS:
        merged = merge_all(ctts, nranks=nprocs)  # fresh victim per kind
        try:
            description = corrupt_merged(
                merged, kind, plan.rng("payload", kind), nranks=nprocs
            )
        except ValueError as exc:
            report.entries.append(MatrixEntry(
                kind=kind, detected=False, skipped=True,
                description=f"skipped, no corruption site: {exc}",
            ))
            continue
        violations = check_merged(merged, nranks=nprocs)
        codes = sorted({v.code for v in violations})
        detected = bool(violations) and bool(
            EXPECTED_CODES[kind] & set(codes)
        )
        report.entries.append(MatrixEntry(
            kind=kind, detected=detected, description=description,
            codes=codes, violations=len(violations),
        ))

    victim = nprocs - 1
    for kind in CORRUPT_KINDS:
        streams = dict(capture.streams)
        streams[victim] = corrupt_stream(
            list(streams[victim]), kind, plan.rng("stream", kind)
        )
        try:
            compress_streams(compiled.cst, streams, strict=True)
            strict_raised = False
        except StreamMismatchError:
            strict_raised = True
        lenient = compress_streams(compiled.cst, streams)
        quarantined = lenient.quarantine.ranks()
        detected = strict_raised and quarantined == [victim]
        report.entries.append(MatrixEntry(
            kind=f"stream:{kind}",
            detected=detected,
            description=(
                f"rank {victim} stream corrupted ({kind}); strict raise: "
                f"{strict_raised}, quarantined: {quarantined}"
            ),
            codes=["stream-mismatch"] if strict_raised else [],
            violations=int(strict_raised) + len(quarantined),
        ))
    return report
