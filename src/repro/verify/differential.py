"""Differential self-verification of the pipeline's equivalence claims.

The codebase claims several independently-implemented paths are
equivalent:

* fastpath compression == reference compression
  (``CypressConfig(fastpath=False)``);
* inline (callback) compression == deferred serial == deferred parallel
  (``compress_streams(workers=N)``);
* the packed codec + columnar ingest == the list-stream path, both
  serially (``packed``) and over the shared-memory transport
  (``parallel_shm``, ``transport="shm"``);
* run-collapsed ingestion (:meth:`ingest_runs` — batch time decode +
  iteration-replay plans) == event-at-a-time ingestion, from both a
  packed blob (``packed_runs``) and a live :class:`PackedStream`
  (``packed_runs_live``, the zero-copy ``events_buf`` path);
* fold merge == tree merge == parallel tree merge (byte-identical);
* every rank's replay is the same before and after the merge, and equals
  the ground-truth recorded sequence.

This harness runs a workload *once* (capturing both ground truth and the
raw streams) and drives every variant from the same capture, so any
divergence is a pipeline bug, not run-to-run noise.  Sequences are
diffed at the **first diverging event** — index plus both events —
rather than byte-level, so a report says *what* diverged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import packed, serialize
from repro.core.decompress import decompress_merged_rank, decompress_rank
from repro.core.inter import merge_all
from repro.core.intra import CypressConfig, IntraProcessCompressor, compress_streams
from repro.driver import run_compiled
from repro.mpisim.pmpi import MultiSink, RecordingSink, StreamCaptureSink
from repro.static.instrument import compile_minimpi


@dataclass(frozen=True)
class Divergence:
    """First diverging event between two supposedly equal sequences."""

    left: str  # variant name, e.g. "fastpath"
    right: str  # variant name or "truth"
    rank: int
    index: int  # first diverging event index (or the shorter length)
    left_event: tuple | None  # None when one side is shorter
    right_event: tuple | None

    def format(self) -> str:
        return (
            f"{self.left} vs {self.right}, rank {self.rank}: first "
            f"divergence at event {self.index}: "
            f"{self.left_event!r} != {self.right_event!r}"
        )


@dataclass
class DifferentialReport:
    workload: str
    nprocs: int
    events: int = 0
    variants: list[str] = field(default_factory=list)
    schedules: list[str] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "nprocs": self.nprocs,
            "events": self.events,
            "variants": self.variants,
            "schedules": self.schedules,
            "ok": self.ok,
            "divergences": [d.format() for d in self.divergences],
        }


def first_divergence(left_name, right_name, rank, left_seq, right_seq):
    """``None`` when the sequences are equal, else the first difference."""
    for i, (a, b) in enumerate(zip(left_seq, right_seq)):
        if a != b:
            return Divergence(left_name, right_name, rank, i, a, b)
    if len(left_seq) != len(right_seq):
        n = min(len(left_seq), len(right_seq))
        return Divergence(
            left_name, right_name, rank, n,
            left_seq[n] if len(left_seq) > n else None,
            right_seq[n] if len(right_seq) > n else None,
        )
    return None


def _replays(compressor, nprocs):
    return {
        r: [e.call_tuple() for e in decompress_rank(compressor.ctt(r))]
        for r in range(nprocs)
    }


def differential_check(
    source: str,
    nprocs: int,
    defines: dict[str, int] | None = None,
    *,
    workload: str = "<inline>",
    schedules: tuple[str, ...] = ("fold", "tree", "parallel"),
    max_divergences: int = 20,
) -> DifferentialReport:
    """Cross-check every compression variant and merge schedule against
    ground truth and against each other."""
    report = DifferentialReport(workload=workload, nprocs=nprocs)
    compiled = compile_minimpi(source)
    recorder = RecordingSink()
    capture = StreamCaptureSink()
    result = run_compiled(
        compiled, nprocs, defines=defines,
        tracer=MultiSink([recorder, capture]),
    )
    report.events = result.total_events
    truth = {
        r: [e.replay_tuple() for e in recorder.events.get(r, [])]
        for r in range(nprocs)
    }

    def note(div):
        if div is not None and len(report.divergences) < max_divergences:
            report.divergences.append(div)

    # -- compression variants, all from the same captured streams --------
    inline = IntraProcessCompressor(compiled.cst)
    capture.replay_into(inline)
    packed_streams = {
        rank: packed.encode_stream(stream).to_bytes()
        for rank, stream in capture.streams.items()
    }
    # Run-collapsed ingestion called directly (not via compress_streams
    # routing, which may change): once over serialized blobs, once over
    # live PackedStream objects whose events live in a bytearray the
    # zero-copy plan matcher slices without snapshotting.
    packed_runs = IntraProcessCompressor(compiled.cst)
    for rank, blob in packed_streams.items():
        packed_runs.ingest_runs(rank, blob)
    packed_runs_live = IntraProcessCompressor(compiled.cst)
    for rank, stream in capture.streams.items():
        packed_runs_live.ingest_runs(rank, packed.encode_stream(stream))
    variants = {
        "packed_runs": packed_runs,
        "packed_runs_live": packed_runs_live,
        "inline": inline,
        "fastpath": compress_streams(compiled.cst, capture.streams),
        "reference": compress_streams(
            compiled.cst, capture.streams,
            config=CypressConfig(fastpath=False),
        ),
        "parallel": compress_streams(
            compiled.cst, capture.streams, workers=2, parallel_threshold=2,
            transport="pickle",
        ),
        # Packed codec + columnar ingest, serially (no pool in the way).
        "packed": compress_streams(compiled.cst, packed_streams),
        # The shared-memory transport end to end: encode → ring → decode
        # → columnar ingest in warm workers.
        "parallel_shm": compress_streams(
            compiled.cst, capture.streams, workers=2, parallel_threshold=2,
            transport="shm",
        ),
    }
    report.variants = sorted(variants)
    replays = {name: _replays(comp, nprocs) for name, comp in variants.items()}
    for name in sorted(variants):
        for rank in range(nprocs):
            note(first_divergence(
                name, "truth", rank, replays[name][rank], truth[rank]
            ))
    base = replays["fastpath"]
    for name in sorted(variants):
        if name == "fastpath":
            continue
        for rank in range(nprocs):
            note(first_divergence(
                name, "fastpath", rank, replays[name][rank], base[rank]
            ))

    # -- byte identity across the variant matrix --------------------------
    # Replay diffs above catch semantic divergence; this catches encoding
    # divergence (e.g. run-collapsed ingestion producing equal replays
    # from different record/timing layouts — the bulk add_occurrences
    # path must be bit-for-bit the same as N single adds).
    def variant_blob(comp):
        return serialize.dumps(merge_all(
            [comp.ctt(r) for r in range(nprocs)], nranks=nprocs))

    base_blob = variant_blob(variants["fastpath"])
    for name in sorted(variants):
        if name == "fastpath":
            continue
        vb = variant_blob(variants[name])
        if vb != base_blob:
            note(Divergence(
                f"bytes:{name}", "bytes:fastpath", -1, -1,
                (len(vb), "bytes"), (len(base_blob), "bytes"),
            ))

    # -- merge schedules, all from the fastpath CTTs ----------------------
    ctts = [variants["fastpath"].ctt(r) for r in range(nprocs)]
    merged_by: dict[str, object] = {}
    for sched in schedules:
        if sched == "parallel":
            merged_by[sched] = merge_all(
                ctts, schedule="tree", workers=2, parallel_threshold=2,
                nranks=nprocs,
            )
        else:
            merged_by[sched] = merge_all(ctts, schedule=sched, nranks=nprocs)
    report.schedules = list(schedules)
    blobs = {s: serialize.dumps(m) for s, m in merged_by.items()}
    names = list(schedules)
    for other in names[1:]:
        if blobs[other] != blobs[names[0]]:
            # Byte mismatch: localize it via per-rank replay diffs.
            for rank in range(nprocs):
                note(first_divergence(
                    f"merge:{other}", f"merge:{names[0]}", rank,
                    [e.call_tuple() for e in
                     decompress_merged_rank(merged_by[other], rank)],
                    [e.call_tuple() for e in
                     decompress_merged_rank(merged_by[names[0]], rank)],
                ))
            note(Divergence(
                f"merge:{other}", f"merge:{names[0]}", -1, -1,
                (len(blobs[other]), "bytes"), (len(blobs[names[0]]), "bytes"),
            ))

    # -- replay before vs after merge -------------------------------------
    merged = merged_by[names[0]]
    for rank in range(nprocs):
        note(first_divergence(
            "merged-replay", "per-rank-replay", rank,
            [e.call_tuple()
             for e in decompress_merged_rank(merged, rank, nranks=nprocs)],
            base[rank],
        ))

    # -- budgeted streaming mode (PR-5 invariant) --------------------------
    # A separate section, not a `variants` entry: folded compressors no
    # longer expose per-rank CTTs (the fold is one-way), so the
    # comparison is over the merged container bytes and merged replay.
    # A 1-byte budget maximizes pressure — every rank folds, and any
    # eviction/reload the interleaving triggers must not change a byte.
    budgeted = compress_streams(
        compiled.cst, capture.streams,
        config=CypressConfig(memory_budget_bytes=1),
        nranks=nprocs,
    )
    report.variants.append("budgeted")
    budget_blob = serialize.dumps(budgeted.merged(nranks=nprocs))
    budgeted.close_spill()
    ref_blob = serialize.dumps(merge_all(ctts, nranks=nprocs))
    if budget_blob != ref_blob:
        merged_budget = serialize.loads(budget_blob)
        for rank in range(nprocs):
            note(first_divergence(
                "budgeted-replay", "per-rank-replay", rank,
                [e.call_tuple() for e in
                 decompress_merged_rank(merged_budget, rank, nranks=nprocs)],
                base[rank],
            ))
        note(Divergence(
            "bytes:budgeted", "bytes:merge_all", -1, -1,
            (len(budget_blob), "bytes"), (len(ref_blob), "bytes"),
        ))
    return report
