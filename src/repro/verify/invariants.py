"""O(n) structural invariant checkers for CSTs and (merged) CTTs.

Every property checked here is one the pipeline *relies on* rather than
re-derives — replay cursors assume monotone occurrence sequences, the
merge assumes disjoint rank sets, peer decoding assumes deltas stay in
the rank range.  Violations therefore mean a damaged trace (or a
pipeline bug), never a legal input; each one carries the gid, rank, and
offending values so a report names the exact divergence.

The arity invariants tie a vertex's payload length to how often its
parent's body executed (``E_body``):

* ``E_body(root) = 1``;
* a LOOP child records exactly ``E_body(parent)`` iteration counts and
  its own body executes ``sum(counts)`` times;
* a BRANCH group's shared visit counter advances once per parent body
  execution, so path visit indices live in ``[0, E_body(parent))``,
  strictly increasing per path and disjoint across sibling paths —
  with holes allowed where a pruned (empty) path was taken;
* a CALL leaf executes once per parent body execution, so the union of
  its records' occurrence indices is exactly ``{0..E_body(parent)-1}``,
  disjoint across records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mpisim.datatypes import ANY_SOURCE
from repro.mpisim.events import NO_PEER
from repro.static.cst import BRANCH, CALL, FUNC, LOOP, ROOT, CSTNode

from repro.core.inter import (
    MergedCTT,
    _loop_signature,
    _records_signature,
    _visits_signature,
)
from repro.core.ranks import ABS, REL

_WILDCARD_SLOT = 9  # record key layout, see repro.core.records


@dataclass(frozen=True)
class Violation:
    """One invariant violation, with enough context to locate it."""

    code: str  # short machine-readable kind, e.g. "occ-not-contiguous"
    message: str  # human-readable statement of what failed
    gid: int = -1  # CST/CTT vertex, -1 when not vertex-specific
    rank: int = -1  # owning rank (or lowest group rank), -1 if global
    detail: tuple = ()  # offending values (sequences, keys, ranks)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "gid": self.gid,
            "rank": self.rank,
            "detail": [repr(d) for d in self.detail],
        }


class _Report:
    __slots__ = ("violations", "limit")

    def __init__(self, limit: int = 200) -> None:
        self.violations: list[Violation] = []
        self.limit = limit

    def add(self, code, message, gid=-1, rank=-1, detail=()) -> None:
        if len(self.violations) < self.limit:
            self.violations.append(
                Violation(code, message, gid=gid, rank=rank, detail=detail)
            )


# ---------------------------------------------------------------------------
# CST.


def check_cst(cst: CSTNode, limit: int = 200) -> list[Violation]:
    """Structural validation of a compiled CST.

    Checks pre-order GID assignment (unique, dense, starting at the
    root's gid), vertex-kind legality (CALL leaves only, no leftover
    FUNC vertices after inlining, LOOP/BRANCH never empty after
    pruning), and branch-path sanity (``branch_path`` set on BRANCH
    vertices, sibling paths of one ``if`` distinct).
    """
    rep = _Report(limit)
    seen_gids: set[int] = set()
    expected = cst.gid
    for node, parent in cst.preorder_with_parent():
        if node.gid in seen_gids:
            rep.add("gid-duplicate", f"gid {node.gid} assigned twice",
                    gid=node.gid)
        seen_gids.add(node.gid)
        if node.gid != expected:
            rep.add(
                "gid-not-preorder",
                f"gid {node.gid} at pre-order position {expected}",
                gid=node.gid, detail=(expected,),
            )
        expected += 1
        if parent is None:
            if node.kind != ROOT:
                rep.add("root-kind", f"root vertex has kind {node.kind!r}",
                        gid=node.gid)
        elif node.kind == ROOT:
            rep.add("root-not-root", "non-root vertex has kind 'root'",
                    gid=node.gid)
        if node.kind == FUNC:
            rep.add("func-leaf", f"un-inlined func leaf {node.name!r}",
                    gid=node.gid)
        if node.kind == CALL and node.children:
            rep.add("call-with-children",
                    f"call leaf {node.name!r} has {len(node.children)} children",
                    gid=node.gid)
        if node.kind in (LOOP, BRANCH) and not node.children:
            rep.add("empty-control",
                    f"{node.kind} vertex survived pruning with no children",
                    gid=node.gid)
        if node.kind == BRANCH and node.branch_path is None:
            rep.add("branch-no-path", "branch vertex without branch_path",
                    gid=node.gid)
        # Sibling paths of one `if` group their visit counter; a legal
        # path index is 0 (then) or 1 (else).  A *repeated* path under
        # the same ast_id is NOT a violation — the same inlined function
        # contributes one `if` instance per call site, and group
        # formation splits runs at repeats (see CTTVertex._build_groups).
        for child in node.children:
            if (
                child.kind == BRANCH
                and child.branch_path is not None
                and child.branch_path not in (0, 1)
            ):
                rep.add(
                    "branch-bad-path",
                    f"branch path {child.branch_path!r} is neither "
                    "then (0) nor else (1)",
                    gid=child.gid,
                )
    return rep.violations


# ---------------------------------------------------------------------------
# Shared payload helpers.


def _check_monotone(seq, what, gid, rank, rep, strict=True) -> None:
    prev = None
    for v in seq:
        if prev is not None and (v <= prev if strict else v < prev):
            rep.add(
                f"{what}-regress",
                f"{what} sequence not monotone at gid={gid}: "
                f"{v} after {prev}",
                gid=gid, rank=rank, detail=(prev, v),
            )
            return
        prev = v


def _check_records(records, gid, rank, nranks, expected_total, rep) -> None:
    """One leaf's record list: monotone disjoint occurrences whose union
    is exactly ``{0..expected_total-1}``, legal keys, in-range peers."""
    covered: list[int] = []
    for idx, record in enumerate(records):
        key = record.key
        if key is None or getattr(record, "pending", False):
            rep.add(
                "pending-record",
                f"leaf gid={gid} record #{idx} is an unresolved wildcard "
                "(pending/keyless)",
                gid=gid, rank=rank, detail=(key,),
            )
            continue
        _check_monotone(record.occurrences, "occ", gid, rank, rep)
        covered.extend(record.occurrences)
        for slot, label in ((1, "peer"), (2, "peer2")):
            enc = key[slot]
            mode, value = enc
            if mode == REL:
                lo = hi = rank + value
                if not 0 <= lo or (nranks is not None and hi >= nranks):
                    rep.add(
                        "peer-range",
                        f"leaf gid={gid} ({key[0]}) {label} {enc!r} decodes "
                        f"to {lo} on rank {rank}, outside "
                        f"[0, {nranks if nranks is not None else '?'})",
                        gid=gid, rank=rank, detail=(enc,),
                    )
            elif mode == ABS:
                if value not in (NO_PEER, ANY_SOURCE) and (
                    value < 0 or (nranks is not None and value >= nranks)
                ):
                    rep.add(
                        "peer-range",
                        f"leaf gid={gid} ({key[0]}) {label} {enc!r} is "
                        "neither a rank nor a legal sentinel",
                        gid=gid, rank=rank, detail=(enc,),
                    )
            else:
                rep.add("peer-encoding",
                        f"leaf gid={gid} bad peer encoding {enc!r}",
                        gid=gid, rank=rank, detail=(enc,))
        if key[1] == (ABS, ANY_SOURCE) and not key[_WILDCARD_SLOT]:
            rep.add(
                "anysource-not-wildcard",
                f"leaf gid={gid} stores ANY_SOURCE as peer without the "
                "wildcard flag",
                gid=gid, rank=rank, detail=(key,),
            )
    covered.sort()
    if expected_total is not None and len(covered) != expected_total:
        rep.add(
            "occ-count",
            f"leaf gid={gid}: {len(covered)} occurrences recorded, parent "
            f"body executed {expected_total} times",
            gid=gid, rank=rank, detail=(len(covered), expected_total),
        )
        return
    for i, v in enumerate(covered):
        if v != i:
            code = "occ-overlap" if i > 0 and covered[i - 1] == v else (
                "occ-not-contiguous"
            )
            rep.add(
                code,
                f"leaf gid={gid}: occurrence union not exactly "
                f"{{0..{len(covered) - 1}}} (index {i} holds {v})",
                gid=gid, rank=rank, detail=(i, v),
            )
            return


def _branch_runs(children):
    """Consecutive same-``ast_id`` branch-path children, grouped the way
    replay groups them (see ``decompress._replay_group``)."""
    runs, i = [], 0
    while i < len(children):
        child = children[i]
        if child.kind != BRANCH:
            i += 1
            continue
        run, paths = [], set()
        while (
            i < len(children)
            and children[i].kind == BRANCH
            and children[i].ast_id == child.ast_id
            and children[i].branch_path not in paths
        ):
            run.append(children[i])
            paths.add(children[i].branch_path)
            i += 1
        runs.append(run)
    return runs


# ---------------------------------------------------------------------------
# Per-rank CTT.


def check_ctt(ctt, nranks: int | None = None, limit: int = 200) -> list[Violation]:
    """Validate one rank's CTT payload against the arity invariants.

    ``nranks`` additionally range-checks every decoded peer.
    """
    rep = _Report(limit)
    rank = ctt.rank
    if nranks is not None and not 0 <= rank < nranks:
        rep.add("rank-range", f"CTT rank {rank} outside [0, {nranks})",
                rank=rank)
    call_gids = {
        v.gid for v in ctt.vertices() if v.kind == CALL
    }

    def walk(vertex, e_body: int) -> None:
        for child in vertex.children:
            if child.kind == LOOP:
                counts = child.loop_counts
                if len(counts) != e_body:
                    rep.add(
                        "loop-arity",
                        f"loop gid={child.gid}: {len(counts)} activations "
                        f"recorded, parent body executed {e_body} times",
                        gid=child.gid, rank=rank,
                        detail=(len(counts), e_body),
                    )
                total = 0
                for c in counts:
                    if c < 0:
                        rep.add(
                            "loop-negative",
                            f"loop gid={child.gid}: negative iteration "
                            f"count {c}",
                            gid=child.gid, rank=rank, detail=(c,),
                        )
                    else:
                        total += c
                walk(child, total)
            elif child.kind == CALL:
                _check_records(
                    child.records or [], child.gid, rank, nranks, e_body, rep
                )
                for record in child.records or []:
                    if record.key is None:
                        continue
                    for g in record.key[10]:
                        if g != -1 and g not in call_gids:
                            rep.add(
                                "req-gid",
                                f"leaf gid={child.gid}: req_gid {g} is not "
                                "a CALL vertex",
                                gid=child.gid, rank=rank, detail=(g,),
                            )
        for run in _branch_runs(vertex.children):
            taken: dict[int, int] = {}
            for path in run:
                visits = path.visits or ()
                _check_monotone(visits, "visits", path.gid, rank, rep)
                for v in visits:
                    if not 0 <= v < e_body:
                        rep.add(
                            "visit-bounds",
                            f"branch gid={path.gid}: visit {v} outside "
                            f"[0, {e_body})",
                            gid=path.gid, rank=rank, detail=(v, e_body),
                        )
                    elif v in taken:
                        rep.add(
                            "visit-overlap",
                            f"branch gid={path.gid}: visit {v} already "
                            f"taken by sibling gid={taken[v]}",
                            gid=path.gid, rank=rank, detail=(v, taken[v]),
                        )
                    else:
                        taken[v] = path.gid
                walk(path, len(visits))

    walk(ctt.root, 1)
    return rep.violations


# ---------------------------------------------------------------------------
# Merged CTT.


def check_merged(
    merged: MergedCTT, nranks: int | None = None, limit: int = 200
) -> list[Violation]:
    """Validate a job-wide merged CTT.

    Per-vertex: group rank sets sorted, disjoint, in range, and drawn
    from one global rank population whose size matches
    ``nranks_merged``; stored interned signatures agree with the payload
    they summarize.  Per-rank: the same arity invariants as
    :func:`check_ctt`, evaluated through each rank's group view.
    """
    rep = _Report(limit)
    all_ranks: set[int] = set()
    for vertex in merged.vertices():
        seen: dict[int, object] = {}
        for sig, group in vertex.groups.items():
            ranks = group.ranks
            if not ranks:
                rep.add("group-empty", f"gid={vertex.gid}: empty group",
                        gid=vertex.gid)
                continue
            if any(b <= a for a, b in zip(ranks, ranks[1:])):
                rep.add(
                    "ranks-unsorted",
                    f"gid={vertex.gid}: group rank list not strictly "
                    "ascending",
                    gid=vertex.gid, rank=ranks[0], detail=(tuple(ranks),),
                )
            for r in ranks:
                if r in seen:
                    rep.add(
                        "rank-overlap",
                        f"gid={vertex.gid}: rank {r} in two groups",
                        gid=vertex.gid, rank=r,
                    )
                seen[r] = group
                if r < 0 or (nranks is not None and r >= nranks):
                    rep.add(
                        "rank-range",
                        f"gid={vertex.gid}: group rank {r} outside "
                        f"[0, {nranks if nranks is not None else '?'})",
                        gid=vertex.gid, rank=r,
                    )
            all_ranks.update(ranks)
            if sig is not group.signature and sig != group.signature:
                rep.add(
                    "signature-index",
                    f"gid={vertex.gid}: group stored under a different "
                    "signature than it carries",
                    gid=vertex.gid, rank=ranks[0],
                )
            recomputed = None
            if group.counts is not None:
                recomputed = _loop_signature(group.counts)
            elif group.visits is not None:
                recomputed = _visits_signature(group.visits)
            elif group.records is not None:
                recomputed = _records_signature(group.records)
            if recomputed is not None and recomputed != group.signature.key:
                rep.add(
                    "signature-stale",
                    f"gid={vertex.gid}: stored signature does not match "
                    "the group payload",
                    gid=vertex.gid, rank=ranks[0],
                    detail=(group.signature.key, recomputed),
                )
    if len(all_ranks) > merged.nranks_merged:
        rep.add(
            "rank-population",
            f"{len(all_ranks)} distinct ranks across groups but only "
            f"{merged.nranks_merged} ranks merged",
            detail=(len(all_ranks), merged.nranks_merged),
        )

    # Per-rank arity walk through the group view.
    for rank in sorted(all_ranks):
        _check_merged_rank(merged, rank, nranks, rep)
    return rep.violations


def _check_merged_rank(merged, rank, nranks, rep) -> None:
    def payload(vertex):
        return vertex.group_of(rank)

    def walk(vertex, e_body: int) -> None:
        for child in vertex.children:
            group = payload(child)
            if child.kind == LOOP:
                counts = group.counts if group is not None else ()
                n = len(counts) if counts is not None else 0
                if n != e_body:
                    rep.add(
                        "loop-arity",
                        f"loop gid={child.gid} rank {rank}: {n} activations "
                        f"recorded, parent body executed {e_body} times",
                        gid=child.gid, rank=rank, detail=(n, e_body),
                    )
                total = 0
                for c in counts or ():
                    if c < 0:
                        rep.add(
                            "loop-negative",
                            f"loop gid={child.gid} rank {rank}: negative "
                            f"iteration count {c}",
                            gid=child.gid, rank=rank, detail=(c,),
                        )
                    else:
                        total += c
                walk(child, total)
            elif child.kind == CALL:
                records = group.records if group is not None else []
                _check_records(
                    records or [], child.gid, rank, nranks, e_body, rep
                )
        for run in _branch_runs(vertex.children):
            taken: dict[int, int] = {}
            for path in run:
                group = payload(path)
                visits = group.visits if group is not None else ()
                _check_monotone(visits or (), "visits", path.gid, rank, rep)
                n_visits = 0
                for v in visits or ():
                    n_visits += 1
                    if not 0 <= v < e_body:
                        rep.add(
                            "visit-bounds",
                            f"branch gid={path.gid} rank {rank}: visit {v} "
                            f"outside [0, {e_body})",
                            gid=path.gid, rank=rank, detail=(v, e_body),
                        )
                    elif v in taken:
                        rep.add(
                            "visit-overlap",
                            f"branch gid={path.gid} rank {rank}: visit {v} "
                            f"already taken by sibling gid={taken[v]}",
                            gid=path.gid, rank=rank, detail=(v, taken[v]),
                        )
                    else:
                        taken[v] = path.gid
                walk(path, n_visits)

    walk(merged.root, 1)


# ---------------------------------------------------------------------------
# Observability.


def publish_verify_metrics(
    registry, *, checks: int = 0, violations: int = 0, findings: int = 0
) -> None:
    """Fold one verification pass into the active metrics registry."""
    if registry is None:
        return
    if checks:
        registry.counter_add("verify.checks", checks)
    if violations:
        registry.counter_add("verify.violations", violations)
    if findings:
        registry.counter_add("verify.wildcard_findings", findings)
