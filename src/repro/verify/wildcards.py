"""Nondeterminism audit of compressed wildcard receives.

A wildcard receive (``MPI_ANY_SOURCE``) records the source it *actually*
matched, so a compressed trace silently bakes one scheduling of a
nondeterministic program into what looks like a deterministic artifact.
This audit walks the **compressed** form of a merged trace — no
decompression — and flags the two observable footprints:

* **cross-group** — at one receive leaf, ranks split into merged groups
  whose resolved-source patterns differ.  A deterministic program
  produces one group (all ranks resolve the same relative source
  pattern); distinct patterns mean the match depended on arrival order.
* **iteration-order** — within one group, a single leaf holds two or
  more wildcard records whose occurrence ranges *interleave*: the same
  call site matched different sources on different iterations in a
  non-blocked pattern, i.e. the match order is iteration-dependent.

Findings are *observations*, not violations: a master/worker farm is
legitimately nondeterministic.  The audit makes that visible (and lets
CI pin workloads that must stay deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.static.cst import CALL

_WILDCARD_SLOT = 9


@dataclass(frozen=True)
class WildcardFinding:
    """One nondeterminism footprint at one receive leaf."""

    kind: str  # "cross-group" | "iteration-order"
    gid: int
    op: str
    ranks: tuple[int, ...]  # lowest rank of each involved group
    detail: str

    def format(self) -> str:
        return (
            f"{self.kind}: gid={self.gid} {self.op} "
            f"(groups led by ranks {list(self.ranks)}): {self.detail}"
        )


@dataclass
class WildcardAudit:
    findings: list[WildcardFinding] = field(default_factory=list)
    wildcard_leaves: int = 0  # leaves holding >=1 wildcard record
    wildcard_records: int = 0

    @property
    def deterministic(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "wildcard_leaves": self.wildcard_leaves,
            "wildcard_records": self.wildcard_records,
            "deterministic": self.deterministic,
            "findings": [f.format() for f in self.findings],
        }


def _wildcard_pattern(records):
    """A group's resolved-source footprint at one leaf: which encoded
    sources were matched at which occurrence indices.  Encoded (not
    decoded) peers compare across ranks: identical REL deltas mean every
    rank resolved the same *relative* source — the deterministic case."""
    pattern = []
    for record in records:
        key = record.key
        if key is not None and key[_WILDCARD_SLOT]:
            pattern.append((key[1], tuple(record.occurrences.terms)))
    pattern.sort()
    return tuple(pattern)


def _interleaved(records):
    """Wildcard records whose occurrence index ranges overlap — the
    same call site alternated between sources within one range of
    iterations.  Range overlap on sorted disjoint occurrence sets is
    exactly 'the merge-sorted sequence switches records mid-run'."""
    spans = []
    for record in records:
        key = record.key
        if key is None or not key[_WILDCARD_SLOT]:
            continue
        occ = record.occurrences
        if len(occ):
            first = occ.terms[0][0]
            s, c, d = occ.terms[-1]
            spans.append((first, s + (c - 1) * d, key[1]))
    spans.sort()
    overlapping = []
    for (lo_a, hi_a, peer_a), (lo_b, _hi_b, peer_b) in zip(spans, spans[1:]):
        if lo_b <= hi_a:
            overlapping.append((peer_a, peer_b))
    return overlapping


def audit_wildcards(merged) -> WildcardAudit:
    """Audit every receive leaf of a merged CTT (see module docstring)."""
    audit = WildcardAudit()
    for vertex in merged.vertices():
        if vertex.kind != CALL or not vertex.groups:
            continue
        patterns: dict[tuple, list[int]] = {}
        leaf_has_wildcards = False
        for group in vertex.sorted_groups():
            records = group.records or []
            n_wild = sum(
                1 for r in records
                if r.key is not None and r.key[_WILDCARD_SLOT]
            )
            if not n_wild:
                continue
            leaf_has_wildcards = True
            audit.wildcard_records += n_wild
            patterns.setdefault(_wildcard_pattern(records), []).append(
                group.ranks[0]
            )
            pairs = _interleaved(records)
            if pairs:
                audit.findings.append(WildcardFinding(
                    kind="iteration-order",
                    gid=vertex.gid,
                    op=vertex.op or "?",
                    ranks=(group.ranks[0],),
                    detail=(
                        f"{len(pairs)} overlapping source pair(s), e.g. "
                        f"{pairs[0][0]!r} interleaves with {pairs[0][1]!r} "
                        "— match order is iteration-dependent"
                    ),
                ))
        if leaf_has_wildcards:
            audit.wildcard_leaves += 1
        if len(patterns) > 1:
            leaders = tuple(sorted(
                lead for leads in patterns.values() for lead in leads
            ))
            audit.findings.append(WildcardFinding(
                kind="cross-group",
                gid=vertex.gid,
                op=vertex.op or "?",
                ranks=leaders,
                detail=(
                    f"{len(patterns)} distinct resolved-source patterns "
                    "across merged groups — the match depended on arrival "
                    "order"
                ),
            ))
    return audit
