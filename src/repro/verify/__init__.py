"""Trace integrity & self-verification (docs/INTERNALS.md §8).

Three layers, cheapest first:

* :mod:`repro.verify.invariants` — O(n) structural validators for CSTs,
  per-rank CTTs, and merged CTTs.  No decompression: every check walks
  the compressed form directly and reports
  :class:`~repro.verify.invariants.Violation`\\ s with gid/rank/sequence
  context.
* :mod:`repro.verify.differential` — cross-checks the pipeline's
  equivalence claims (fastpath vs reference compressor, serial vs
  parallel compression, fold vs tree vs parallel merge, replay before vs
  after merge) by diffing replayed event sequences at the first
  diverging event.
* :mod:`repro.verify.wildcards` — audits compressed wildcard receives
  for nondeterminism (resolved sources that differ across merged groups,
  iteration-dependent match orders) without decompressing.

The CLI front end is ``repro check`` (plus ``--selfcheck`` on ``trace``
and ``verify``); :mod:`repro.verify.faultmatrix` drives the seeded
corruption matrix CI runs to prove the checkers actually detect damage.
"""

from .differential import DifferentialReport, Divergence, differential_check
from .invariants import (
    Violation,
    check_cst,
    check_ctt,
    check_merged,
    publish_verify_metrics,
)
from .wildcards import WildcardFinding, audit_wildcards

__all__ = [
    "DifferentialReport",
    "Divergence",
    "Violation",
    "WildcardFinding",
    "audit_wildcards",
    "check_cst",
    "check_ctt",
    "check_merged",
    "differential_check",
    "publish_verify_metrics",
]
