"""Comparison methods: Gzip raw traces, ScalaTrace, ScalaTrace-2."""

from .postmortem import compress_postmortem, parse_rank_trace
from .rawtrace import RawTraceSink
from .scalatrace import (
    ScalaTraceCompressor,
    merge_all_queues,
    merged_bytes,
    expand_rank,
    event_signature,
)
from .scalatrace2 import (
    ScalaTrace2Compressor,
    merge_all_st2,
    expand_intra,
    expand_rank_st2,
)

__all__ = [
    "RawTraceSink",
    "compress_postmortem",
    "parse_rank_trace",
    "ScalaTraceCompressor",
    "merge_all_queues",
    "merged_bytes",
    "expand_rank",
    "event_signature",
    "ScalaTrace2Compressor",
    "merge_all_st2",
    "expand_intra",
    "expand_rank_st2",
]
