"""ScalaTrace-2 reimplementation (Wu & Mueller [18]).

ScalaTrace-2 improves on ScalaTrace in two ways this module models:

* **Elastic intra-process terms** — events that differ only in *data*
  parameters (message size, peer offset) no longer break RSD formation;
  the varying values are collected per elastic slot as stride-compressed
  value sequences.  This is what rescues SP-style codes whose message
  sizes vary across iterations.
* **Loop-agnostic inter-node merge** — instead of O(n²) alignment, ranks
  are bucketed by a whole-queue structural signature (O(n) per rank);
  within a bucket merging is positional.  When the number of distinct
  value-sequence variants at a slot exceeds ``variant_limit``, the values
  collapse into a histogram summary — this is the *lossy, probabilistic*
  aspect the paper notes ("only preserves partial communication
  information and may lose much information for better compression").

Losslessness contract: per-rank (intra) expansion is exact; after the
inter merge, expansion is exact only while no slot overflowed its variant
limit (``merged.lossy`` reports it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sequences import IntSequence
from repro.core.timing import TimeStats
from repro.mpisim.events import CommEvent
from repro.mpisim.pmpi import TraceSink

from .scalatrace import event_signature

# Elastic shape: signature with the two "data" fields (peer delta, nbytes)
# blanked out; they live in per-slot value sequences instead.
_ELASTIC_FIELDS = (1, 5)  # peer, nbytes positions in the signature tuple


def elastic_shape(sig: tuple) -> tuple:
    peer_mode = sig[1][0]
    return (
        sig[0], ("?", peer_mode), sig[2], sig[3], sig[4], "?",
        sig[6], sig[7], sig[8], sig[9], sig[10], sig[11],
    )


@dataclass
class ElasticEvent:
    """An event slot with possibly-varying peer delta and size."""

    shape: tuple
    peer_mode: str
    peers: IntSequence = field(default_factory=IntSequence)
    sizes: IntSequence = field(default_factory=IntSequence)
    duration: TimeStats = field(default_factory=TimeStats)
    pre_gap: TimeStats = field(default_factory=TimeStats)
    # Number of values still provisional (unresolved wildcard receives);
    # the matcher must not fold a slot whose values may still be patched.
    pending: int = 0

    @property
    def count(self) -> int:
        return len(self.peers)

    def matches(self, sig: tuple) -> bool:
        return elastic_shape(sig) == self.shape

    def add(self, sig: tuple, duration: float, gap: float) -> None:
        self.peers.append(sig[1][1])
        self.sizes.append(sig[5])
        self.duration.add(duration)
        self.pre_gap.add(gap)

    def approx_bytes(self) -> int:
        return (
            len(self.shape[0])
            + 6 * (len(self.shape) - 1)
            + self.peers.approx_bytes()
            + self.sizes.approx_bytes()
            + self.duration.approx_bytes()
            + self.pre_gap.approx_bytes()
        )

    def nth_sig(self, n: int) -> tuple:
        """Reconstruct the n-th concrete signature (replay)."""
        peers = self.peers.to_list()
        sizes = self.sizes.to_list()
        s = list(self.shape)
        s[1] = (self.peer_mode, peers[n])
        s[5] = sizes[n]
        return tuple(s)


@dataclass
class ElasticRSD:
    """A loop over elastic slots; iteration count per activation."""

    counts: IntSequence
    body: list["ETerm"]
    _shape: tuple | None = None

    @property
    def shape(self) -> tuple:
        # Cached: body *shapes* are immutable once built (only values and
        # counts mutate), and the matcher compares shapes per event.
        if self._shape is None:
            self._shape = ("R", tuple(t.shape for t in self.body))
        return self._shape

    def approx_bytes(self) -> int:
        return self.counts.approx_bytes() + sum(t.approx_bytes() for t in self.body)


ETerm = ElasticEvent | ElasticRSD


def _queue_shape(queue: list[ETerm]) -> tuple:
    return tuple(t.shape for t in queue)


class ScalaTrace2Compressor(TraceSink):
    """Intra-process phase of ScalaTrace-2."""

    wants_markers = False

    def __init__(self, max_window: int = 32, relative_ranks: bool = True) -> None:
        self.max_window = max_window
        self.relative_ranks = relative_ranks
        self._queues: dict[int, list[ETerm]] = {}
        self._pending: dict[tuple[int, int], tuple[int, ElasticEvent]] = {}
        self._last_end: dict[int, float] = {}

    def queue(self, rank: int) -> list[ETerm]:
        return self._queues.setdefault(rank, [])

    def ranks(self) -> list[int]:
        return sorted(self._queues)

    # ------------------------------------------------------------------

    def on_event(self, rank: int, ev: CommEvent) -> None:
        queue = self.queue(rank)
        gap = max(0.0, ev.time_start - self._last_end.get(rank, 0.0))
        self._last_end[rank] = max(
            self._last_end.get(rank, 0.0), ev.time_start + ev.duration
        )
        sig = event_signature(ev, rank, self.relative_ranks)
        if ev.op == "MPI_Irecv" and ev.wildcard and self.relative_ranks:
            # The resolved source will be stored relative, like every other
            # peer; give the provisional slot the final ('rel') shape now.
            sig = (sig[0], ("rel", sig[1][1])) + sig[2:]
        slot = ElasticEvent(shape=elastic_shape(sig), peer_mode=sig[1][0])
        slot.add(sig, ev.duration, gap)
        queue.append(slot)
        if ev.op == "MPI_Irecv" and ev.wildcard:
            slot.pending += 1
            self._pending[(rank, ev.req)] = (len(slot.peers) - 1, slot)
            return
        self._compress_tail(queue)

    def on_request_complete(self, rank, rid, source, nbytes, when):
        entry = self._pending.pop((rank, rid), None)
        if entry is None:
            return
        idx, slot = entry
        # Patch the provisional value in place (idx is 0 for a fresh slot).
        peers = slot.peers.to_list()
        sizes = slot.sizes.to_list()
        delta = source - rank if slot.peer_mode == "rel" else source
        peers[idx] = delta
        sizes[idx] = nbytes
        slot.peers = IntSequence.from_values(peers)
        slot.sizes = IntSequence.from_values(sizes)
        slot.pending -= 1
        self._compress_tail(self.queue(rank))

    # ------------------------------------------------------------------

    def _compress_tail(self, queue: list[ETerm]) -> None:
        changed = True
        while changed:
            changed = False
            n = len(queue)
            limit = min(self.max_window, n - 1)
            for k in range(1, limit + 1):
                # Case 1: preceding elastic RSD absorbs a matching tail.
                if n >= k + 1:
                    prev = queue[n - k - 1]
                    tail = queue[n - k :]
                    if (
                        isinstance(prev, ElasticRSD)
                        and len(prev.body) == k
                        and not any(getattr(t, "pending", 0) for t in tail)
                        and all(
                            p.shape == t.shape for p, t in zip(prev.body, tail)
                        )
                    ):
                        for p, t in zip(prev.body, tail):
                            _absorb(p, t)
                        self._bump_count(prev)
                        del queue[n - k :]
                        changed = True
                        break
                # Case 2: k-term tail repeats the k terms before it.
                if n >= 2 * k:
                    first = queue[n - 2 * k : n - k]
                    tail = queue[n - k :]
                    if not any(
                        getattr(t, "pending", 0) for t in first + tail
                    ) and all(a.shape == b.shape for a, b in zip(first, tail)):
                        for a, b in zip(first, tail):
                            _absorb(a, b)
                        rsd = ElasticRSD(
                            counts=IntSequence.from_values([2]), body=first
                        )
                        del queue[n - 2 * k :]
                        queue.append(rsd)
                        changed = True
                        break

    @staticmethod
    def _bump_count(rsd: ElasticRSD) -> None:
        """Increment the RSD's latest activation count by one."""
        values = rsd.counts.to_list()
        values[-1] += 1
        rsd.counts = IntSequence.from_values(values)

    # ------------------------------------------------------------------

    def rank_bytes(self, rank: int) -> int:
        return sum(t.approx_bytes() for t in self.queue(rank))

    def total_bytes(self) -> int:
        return sum(self.rank_bytes(r) for r in self._queues)

    def approx_memory(self, rank: int) -> int:
        return self.rank_bytes(rank) + 16 * len(self.queue(rank))


# ---------------------------------------------------------------------------
# Loop-agnostic inter-node merge.
# ---------------------------------------------------------------------------


@dataclass
class ST2Slot:
    """One merged queue slot: shape + per-rank-group value variants."""

    shape: tuple
    # Variants: (ranks, term). Collapses to a summary when over the limit.
    variants: list[tuple[list[int], ETerm]] = field(default_factory=list)
    summarized: bool = False

    def approx_bytes(self) -> int:
        if not self.variants:
            return 8
        total = 0
        for i, (ranks, term) in enumerate(self.variants):
            total += 2 + 4 * _runs(ranks)
            total += term.approx_bytes() if i == 0 else term.approx_bytes() // 2
        return total


def _runs(ranks: list[int]) -> int:
    if not ranks:
        return 0
    runs = 1
    stride = None
    for a, b in zip(ranks, ranks[1:]):
        d = b - a
        if stride is None:
            stride = d
        elif d != stride:
            runs += 1
            stride = None
    return runs


@dataclass
class ST2Merged:
    slots: list[ST2Slot]
    lossy: bool = False

    def approx_bytes(self) -> int:
        return sum(s.approx_bytes() for s in self.slots)


def _absorb(dst: ETerm, src: ETerm) -> None:
    """Fold ``src``'s values and timing into ``dst`` (same shape)."""
    if isinstance(dst, ElasticEvent):
        assert isinstance(src, ElasticEvent)
        for v in src.peers:
            dst.peers.append(v)
        for v in src.sizes:
            dst.sizes.append(v)
        dst.duration.merge(src.duration)
        dst.pre_gap.merge(src.pre_gap)
    else:
        assert isinstance(src, ElasticRSD)
        for v in src.counts:
            dst.counts.append(v)
        for a, b in zip(dst.body, src.body):
            _absorb(a, b)


def _values_equal(a: ETerm, b: ETerm) -> bool:
    if isinstance(a, ElasticEvent) and isinstance(b, ElasticEvent):
        return a.peers == b.peers and a.sizes == b.sizes
    if isinstance(a, ElasticRSD) and isinstance(b, ElasticRSD):
        return a.counts == b.counts and all(
            _values_equal(x, y) for x, y in zip(a.body, b.body)
        )
    return False


def _summarize(term: ETerm) -> ETerm:
    """Collapse value detail into a compact (lossy) representative."""
    if isinstance(term, ElasticEvent):
        out = ElasticEvent(shape=term.shape, peer_mode=term.peer_mode)
        peers = term.peers.to_list()
        sizes = term.sizes.to_list()
        # Keep only the distinct-value envelope: first occurrence of each.
        seen: set[tuple[int, int]] = set()
        for p, s in zip(peers, sizes):
            if (p, s) not in seen:
                seen.add((p, s))
                out.peers.append(p)
                out.sizes.append(s)
        out.duration = term.duration.copy()
        out.pre_gap = term.pre_gap.copy()
        return out
    return ElasticRSD(
        counts=IntSequence.from_values([max(term.counts.to_list() or [0])]),
        body=[_summarize(t) for t in term.body],
    )


def merge_all_st2(
    queues: dict[int, list[ETerm]], variant_limit: int = 8
) -> ST2Merged:
    """Loop-agnostic inter-node merge: bucket ranks by whole-queue shape,
    then merge positionally.  O(total terms), no alignment DP."""
    buckets: dict[tuple, list[int]] = {}
    for rank in sorted(queues):
        buckets.setdefault(_queue_shape(queues[rank]), []).append(rank)
    lossy = False
    # Slot streams are concatenated bucket-by-bucket; ranks in other buckets
    # simply do not participate in a slot (paper: missing call paths are
    # skipped per process).
    slots: list[ST2Slot] = []
    for shape_key, ranks in sorted(buckets.items(), key=lambda kv: kv[1][0]):
        for pos, term_shape in enumerate(shape_key):
            slot = ST2Slot(shape=term_shape)
            for rank in ranks:
                term = queues[rank][pos]
                placed = False
                for variant_ranks, variant_term in slot.variants:
                    if _values_equal(variant_term, term):
                        variant_ranks.append(rank)
                        _merge_times(variant_term, term)
                        placed = True
                        break
                if not placed:
                    slot.variants.append(([rank], term))
            if len(slot.variants) > variant_limit:
                # Probabilistic summary: one lossy representative.
                all_ranks = sorted(r for vr, _ in slot.variants for r in vr)
                rep = _summarize(slot.variants[0][1])
                for _, term in slot.variants[1:]:
                    s = _summarize(term)
                    _absorb_summary(rep, s)
                slot.variants = [(all_ranks, rep)]
                slot.summarized = True
                lossy = True
            slots.append(slot)
    return ST2Merged(slots=slots, lossy=lossy)


def _merge_times(dst: ETerm, src: ETerm) -> None:
    if isinstance(dst, ElasticEvent):
        dst.duration.merge(src.duration)
        dst.pre_gap.merge(src.pre_gap)
    else:
        for a, b in zip(dst.body, src.body):
            _merge_times(a, b)


def _absorb_summary(dst: ETerm, src: ETerm) -> None:
    if isinstance(dst, ElasticEvent):
        assert isinstance(src, ElasticEvent)
        seen = set(zip(dst.peers.to_list(), dst.sizes.to_list()))
        for p, s in zip(src.peers.to_list(), src.sizes.to_list()):
            if (p, s) not in seen:
                seen.add((p, s))
                dst.peers.append(p)
                dst.sizes.append(s)
        dst.duration.merge(src.duration)
        dst.pre_gap.merge(src.pre_gap)
    else:
        assert isinstance(src, ElasticRSD)
        m = max(list(dst.counts) + list(src.counts))
        dst.counts = IntSequence.from_values([m])
        for a, b in zip(dst.body, src.body):
            _absorb_summary(a, b)


# ---------------------------------------------------------------------------
# Expansion (replay) — exact while no slot was summarized.
# ---------------------------------------------------------------------------


def expand_intra(queue: list[ETerm]) -> list[tuple]:
    out: list[tuple] = []

    def walk(term: ETerm, pos: dict[int, int]) -> None:
        if isinstance(term, ElasticEvent):
            n = pos.get(id(term), 0)
            pos[id(term)] = n + 1
            out.append(term.nth_sig(n))
        else:
            key = id(term)
            acti = pos.get(key, 0)
            pos[key] = acti + 1
            counts = term.counts.to_list()
            count = counts[acti] if acti < len(counts) else 0
            for _ in range(count):
                for t in term.body:
                    walk(t, pos)

    positions: dict[int, int] = {}
    for term in queue:
        walk(term, positions)
    return out


def expand_rank_st2(merged: ST2Merged, rank: int) -> list[tuple]:
    """Reconstruct a rank's stream from the merged (possibly lossy) form."""
    terms: list[ETerm] = []
    for slot in merged.slots:
        for ranks, term in slot.variants:
            if rank in ranks:
                terms.append(term)
                break
    return expand_intra(terms)
