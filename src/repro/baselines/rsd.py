"""RSD / PRSD terms — the data structures of dynamic-only compression.

ScalaTrace (Noeth et al. [14]) represents compressed traces as queues of
*regular section descriptors*: an RSD is ``<count, body>`` where the body
is a sequence of events or nested RSDs (then called a power-RSD / PRSD).
``<100, <10, a, b>, c>``-style nesting captures loop nests discovered
bottom-up from the event stream itself.

Every term carries a structural signature (``sig``) — the body shape with
counts *excluded* — so that (a) the greedy intra-process matcher can
compare candidate windows in O(1) per term, and (b) inter-process merging
can align terms whose iteration counts differ per rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.timing import TimeStats

# An event's signature: the compression key (op + params, no time).
EventSig = tuple


@dataclass
class EventTerm:
    """A single (possibly repeated) traced event."""

    sig: EventSig
    duration: TimeStats = field(default_factory=TimeStats)
    pre_gap: TimeStats = field(default_factory=TimeStats)
    # Unresolved wildcard receive: the signature is provisional, so the
    # matcher must not fold this term yet (two pending receives with equal
    # provisional signatures may resolve to different sources).
    pending: bool = False

    @property
    def structure(self) -> tuple:
        return ("E", self.sig)

    def term_size(self) -> int:
        return 1

    def approx_bytes(self) -> int:
        op = self.sig[0]
        return (
            len(op)
            + 6 * (len(self.sig) - 1)
            + self.duration.approx_bytes()
            + self.pre_gap.approx_bytes()
        )


@dataclass
class RSD:
    """``count`` repetitions of ``body`` (events and/or nested RSDs)."""

    count: int
    body: list["Term"]

    @property
    def structure(self) -> tuple:
        # Counts excluded: two loops with different trip counts share shape.
        return ("R", tuple(t.structure for t in self.body))

    def term_size(self) -> int:
        return 1 + sum(t.term_size() for t in self.body)

    def approx_bytes(self) -> int:
        return 4 + sum(t.approx_bytes() for t in self.body)


Term = EventTerm | RSD


def term_equal(a: Term, b: Term) -> bool:
    """Structural equality *including* counts (intra-process matching)."""
    if isinstance(a, EventTerm) and isinstance(b, EventTerm):
        return a.sig == b.sig
    if isinstance(a, RSD) and isinstance(b, RSD):
        return (
            a.count == b.count
            and len(a.body) == len(b.body)
            and all(term_equal(x, y) for x, y in zip(a.body, b.body))
        )
    return False


def queue_bytes(queue: list[Term]) -> int:
    return sum(t.approx_bytes() for t in queue)


def expand(queue: list[Term]) -> list[EventSig]:
    """Decompress a term queue back into the flat event-signature stream."""
    out: list[EventSig] = []

    def walk(term: Term) -> None:
        if isinstance(term, EventTerm):
            out.append(term.sig)
        else:
            for _ in range(term.count):
                for t in term.body:
                    walk(t)

    for term in queue:
        walk(term)
    return out
