"""ScalaTrace reimplementation (Noeth et al. [14]) — the dynamic-only
baseline.

Intra-process: a greedy on-line compressor over a queue of terms.  After
each event is appended, the tail window is compared against the terms
before it; a repeat becomes an RSD, repeats of RSDs become PRSDs, and an
RSD followed by another copy of its body increments its count.  Every
arriving event pays a search over up to ``max_window`` candidate repeat
lengths, each an O(k) term comparison — the bottom-up pattern probing
whose cost CYPRESS's static structure eliminates.

Inter-process: pairwise merge by *sequence alignment* of term queues
(LCS over structural signatures, O(n²) per pair — the complexity the
paper cites for dynamic-only tools).  Terms aligned across ranks unify
their rank sets; counts that differ per rank are kept as per-group
variants, mirroring ScalaTrace's location-independent encoding.

The implementation is lossless end-to-end (``expand`` reproduces each
rank's exact event stream) — verified by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ranks import encode_peer
from repro.core.timing import TimeStats
from repro.mpisim.events import CommEvent
from repro.mpisim.pmpi import TraceSink

from .rsd import RSD, EventTerm, Term, queue_bytes, term_equal


def event_signature(ev: CommEvent, rank: int, relative: bool = True) -> tuple:
    """ScalaTrace's compression key: op + parameters, relative ranks, no
    time.  Requests are identified positionally (number of requests), as a
    handle-free tracer must."""
    return (
        ev.op,
        encode_peer(ev.peer, rank, relative),
        encode_peer(ev.peer2, rank, relative),
        ev.tag,
        ev.tag2,
        ev.nbytes,
        ev.nbytes2,
        ev.comm,
        ev.root,
        ev.wildcard,
        len(ev.reqs),
        ev.result_comm,
    )


def _merge_term_stats(dst: Term, src: Term) -> None:
    """Fold ``src``'s timing into ``dst`` (same structure, same counts)."""
    if isinstance(dst, EventTerm):
        dst.duration.merge(src.duration)
        dst.pre_gap.merge(src.pre_gap)
    else:
        for a, b in zip(dst.body, src.body):
            _merge_term_stats(a, b)


class ScalaTraceCompressor(TraceSink):
    """Intra-process phase of ScalaTrace."""

    wants_markers = False

    def __init__(self, max_window: int = 32, relative_ranks: bool = True) -> None:
        self.max_window = max_window
        self.relative_ranks = relative_ranks
        self._queues: dict[int, list[Term]] = {}
        self._pending_wildcard: dict[tuple[int, int], EventTerm] = {}
        self._last_end: dict[int, float] = {}

    # ------------------------------------------------------------------

    def queue(self, rank: int) -> list[Term]:
        return self._queues.setdefault(rank, [])

    def ranks(self) -> list[int]:
        return sorted(self._queues)

    def on_event(self, rank: int, ev: CommEvent) -> None:
        queue = self.queue(rank)
        gap = max(0.0, ev.time_start - self._last_end.get(rank, 0.0))
        self._last_end[rank] = max(
            self._last_end.get(rank, 0.0), ev.time_start + ev.duration
        )
        term = EventTerm(sig=event_signature(ev, rank, self.relative_ranks))
        term.duration.add(ev.duration)
        term.pre_gap.add(gap)
        queue.append(term)
        if ev.op == "MPI_Irecv" and ev.wildcard:
            # Like CYPRESS, delay compression until the source resolves —
            # ScalaTrace queues the event and patches it on completion.
            term.pending = True
            self._pending_wildcard[(rank, ev.req)] = term
            return
        self._compress_tail(queue)

    def on_request_complete(self, rank, rid, source, nbytes, when):
        term = self._pending_wildcard.pop((rank, rid), None)
        if term is None:
            return
        sig = list(term.sig)
        sig[1] = encode_peer(source, rank, self.relative_ranks)
        sig[5] = nbytes
        term.sig = tuple(sig)
        term.pending = False
        self._compress_tail(self.queue(rank))

    # ------------------------------------------------------------------

    @staticmethod
    def _window_foldable(terms: list[Term]) -> bool:
        """Terms with unresolved wildcard signatures must not fold."""
        return not any(getattr(t, "pending", False) for t in terms)

    def _compress_tail(self, queue: list[Term]) -> None:
        """Greedy repeated-suffix folding (the ScalaTrace inner loop)."""
        changed = True
        while changed:
            changed = False
            n = len(queue)
            limit = min(self.max_window, n - 1)
            for k in range(1, limit + 1):
                # Case 1: an RSD whose body equals the k-term tail absorbs it.
                if n >= k + 1:
                    prev = queue[n - k - 1]
                    tail = queue[n - k :]
                    if (
                        isinstance(prev, RSD)
                        and len(prev.body) == k
                        and self._window_foldable(tail)
                        and all(term_equal(a, b) for a, b in zip(prev.body, tail))
                    ):
                        for a, b in zip(prev.body, tail):
                            _merge_term_stats(a, b)
                        prev.count += 1
                        del queue[n - k :]
                        changed = True
                        break
                # Case 2: the k-term tail repeats the k terms before it.
                if n >= 2 * k:
                    first = queue[n - 2 * k : n - k]
                    tail = queue[n - k :]
                    if self._window_foldable(first) and self._window_foldable(
                        tail
                    ) and all(term_equal(a, b) for a, b in zip(first, tail)):
                        for a, b in zip(first, tail):
                            _merge_term_stats(a, b)
                        rsd = RSD(count=2, body=first)
                        del queue[n - 2 * k :]
                        queue.append(rsd)
                        changed = True
                        break
            # Any pending (unresolved wildcard) tail blocks compression;
            # handled implicitly because its signature is still provisional.

    # ------------------------------------------------------------------

    def rank_bytes(self, rank: int) -> int:
        return queue_bytes(self.queue(rank))

    def total_bytes(self) -> int:
        return sum(self.rank_bytes(r) for r in self._queues)

    def approx_memory(self, rank: int) -> int:
        """Working-set estimate: the queue plus matcher bookkeeping."""
        return self.rank_bytes(rank) + 16 * len(self.queue(rank))


# ---------------------------------------------------------------------------
# Inter-process merge (O(n^2) alignment per pair).
# ---------------------------------------------------------------------------


@dataclass
class MergedTerm:
    """One aligned slot of the merged queue."""

    structure: tuple
    variants: list[tuple[list[int], Term]] = field(default_factory=list)

    def add_variant(self, ranks: list[int], term: Term) -> None:
        for existing_ranks, existing in self.variants:
            if term_equal(existing, term):
                _merge_term_stats(existing, term)
                existing_ranks.extend(ranks)
                return
        self.variants.append((list(ranks), term))

    def ranks(self) -> list[int]:
        out: list[int] = []
        for ranks, _ in self.variants:
            out.extend(ranks)
        return sorted(out)

    def approx_bytes(self) -> int:
        total = 0
        for i, (ranks, term) in enumerate(self.variants):
            total += 2 + 4 * _count_runs(ranks)
            if i == 0:
                total += term.approx_bytes()
            else:
                # Additional variants share the structure; only counts and
                # timing blocks are stored again.
                total += 4 * _rsd_nodes(term) + 16
        return total


def _count_runs(ranks: list[int]) -> int:
    """Stride-run count of a sorted rank list (its compressed size)."""
    if not ranks:
        return 0
    runs = 1
    stride = None
    for a, b in zip(ranks, ranks[1:]):
        d = b - a
        if stride is None:
            stride = d
        elif d != stride:
            runs += 1
            stride = None
    return runs


def _rsd_nodes(term: Term) -> int:
    if isinstance(term, EventTerm):
        return 0
    return 1 + sum(_rsd_nodes(t) for t in term.body)


MergedQueue = list[MergedTerm]


def lift_queue(queue: list[Term], rank: int) -> MergedQueue:
    return [
        MergedTerm(structure=t.structure, variants=[([rank], t)]) for t in queue
    ]


def _align(sa: list[int], sb: list[int]) -> list[tuple[int | None, int | None]]:
    """LCS alignment of two hash sequences; returns ordered index pairs
    with ``None`` for gaps.  O(len(sa)·len(sb)) — deliberately."""
    n, m = len(sa), len(sb)
    a = np.asarray(sa, dtype=np.int64)
    b = np.asarray(sb, dtype=np.int64)
    dp = np.zeros((n + 1, m + 1), dtype=np.int32)
    for i in range(1, n + 1):
        match = (b == a[i - 1]).astype(np.int32)
        row_prev = dp[i - 1]
        row = dp[i]
        # dp[i][j] = max(dp[i-1][j], dp[i][j-1], dp[i-1][j-1] + match)
        diag = row_prev[:-1] + match
        best = 0
        for j in range(1, m + 1):
            best = max(diag[j - 1], row_prev[j], best)
            row[j] = best
    pairs: list[tuple[int | None, int | None]] = []
    i, j = n, m
    while i > 0 and j > 0:
        if sa[i - 1] == sb[j - 1] and dp[i][j] == dp[i - 1][j - 1] + 1:
            pairs.append((i - 1, j - 1))
            i -= 1
            j -= 1
        elif dp[i - 1][j] >= dp[i][j - 1]:
            pairs.append((i - 1, None))
            i -= 1
        else:
            pairs.append((None, j - 1))
            j -= 1
    while i > 0:
        pairs.append((i - 1, None))
        i -= 1
    while j > 0:
        pairs.append((None, j - 1))
        j -= 1
    pairs.reverse()
    return pairs


# Pairwise alignments above this many DP cells fall back to concatenation
# (lossless, no cross-rank sharing).  Real tools need a guard like this
# too: on parameter-divergent codes (SP) the merged queue grows with every
# rank and the quadratic DP would run for hours.  The overflow count is
# reported so benchmarks can state when the fallback fired.
DP_CELL_LIMIT = 16_000_000

overflowed_merges = 0  # module-level diagnostic counter


def merge_queues(qa: MergedQueue, qb: MergedQueue) -> MergedQueue:
    """Pairwise inter-process merge — the O(n²) step.

    ScalaTrace [14] aligns the two queues unconditionally; the whole-queue
    signature shortcut is ScalaTrace-2's contribution, so it is *not*
    taken here (that is precisely the inefficiency Fig. 18 measures).
    """
    global overflowed_merges
    sa = [hash(t.structure) for t in qa]
    sb = [hash(t.structure) for t in qb]
    if len(sa) * len(sb) > DP_CELL_LIMIT:
        overflowed_merges += 1
        return qa + qb  # lossless concatenation, no sharing
    out: MergedQueue = []
    for ia, ib in _align(sa, sb):
        if ia is not None and ib is not None:
            slot = qa[ia]
            for ranks, term in qb[ib].variants:
                slot.add_variant(ranks, term)
            out.append(slot)
        elif ia is not None:
            out.append(qa[ia])
        else:
            out.append(qb[ib])
    return out


def merge_all_queues(
    queues: dict[int, list[Term]], schedule: str = "tree"
) -> MergedQueue:
    """Merge every rank's compressed queue into one job-wide queue."""
    lifted = [lift_queue(q, rank) for rank, q in sorted(queues.items())]
    if not lifted:
        raise ValueError("no queues to merge")
    if schedule == "fold":
        acc = lifted[0]
        for q in lifted[1:]:
            acc = merge_queues(acc, q)
        return acc
    while len(lifted) > 1:
        nxt = []
        for i in range(0, len(lifted) - 1, 2):
            nxt.append(merge_queues(lifted[i], lifted[i + 1]))
        if len(lifted) % 2:
            nxt.append(lifted[-1])
        lifted = nxt
    return lifted[0]


def merged_bytes(queue: MergedQueue) -> int:
    return sum(t.approx_bytes() for t in queue)


def expand_rank(queue: MergedQueue, rank: int) -> list[tuple]:
    """Reconstruct one rank's event-signature stream from the merged queue
    (losslessness check)."""
    from .rsd import expand

    terms: list[Term] = []
    for slot in queue:
        for ranks, term in slot.variants:
            if rank in ranks:
                terms.append(term)
                break
    return expand(terms)
