"""Raw per-rank trace writer — the Gzip baseline (paper's OTF-style tool).

Records every event as one text line per rank, like a conventional trace
collector.  ``total_bytes()`` is the uncompressed volume; ``gzip_bytes()``
compresses each rank's stream independently (as OTF's zlib layer does) and
sums — there is no inter-process compression, so sizes grow linearly with
the number of ranks, exactly the behaviour Fig. 15 shows for Gzip.
"""

from __future__ import annotations

import gzip

from repro.mpisim.events import CommEvent, format_event
from repro.mpisim.pmpi import TraceSink


class RawTraceSink(TraceSink):
    """Accumulates plain-text traces per rank."""

    wants_markers = False

    def __init__(self) -> None:
        self._chunks: dict[int, list[bytes]] = {}
        self._nbytes: dict[int, int] = {}

    def on_event(self, rank: int, event: CommEvent) -> None:
        line = (format_event(event) + "\n").encode("ascii")
        self._chunks.setdefault(rank, []).append(line)
        self._nbytes[rank] = self._nbytes.get(rank, 0) + len(line)

    def on_request_complete(self, rank, rid, source, nbytes, when):
        # A raw tracer logs the completion as part of the wait record; the
        # post-hoc source is appended as its own line (what ITC/OTF do).
        line = f"REQ {rid} src={source} bytes={nbytes} t={when:.3f}\n".encode("ascii")
        self._chunks.setdefault(rank, []).append(line)
        self._nbytes[rank] = self._nbytes.get(rank, 0) + len(line)

    # ------------------------------------------------------------------

    def rank_bytes(self, rank: int) -> int:
        return self._nbytes.get(rank, 0)

    def total_bytes(self) -> int:
        return sum(self._nbytes.values())

    def rank_blob(self, rank: int) -> bytes:
        return b"".join(self._chunks.get(rank, []))

    def gzip_bytes(self) -> int:
        """Total size with per-rank gzip (the Gzip baseline of Fig. 15)."""
        return sum(
            len(gzip.compress(self.rank_blob(rank), compresslevel=6))
            for rank in self._chunks
        )

    def event_count(self) -> int:
        return sum(len(c) for c in self._chunks.values())
