"""Post-mortem compression: compress already-collected flat traces.

The paper contrasts CYPRESS's on-the-fly compression with post-mortem
approaches (Knüpfer's cCCG [29]), which require the full flat trace
first.  This module provides that mode for the dynamic baselines: parse
raw per-rank text traces (the :class:`~repro.baselines.rawtrace.RawTraceSink`
format) back into events and run them through ScalaTrace offline.

CYPRESS itself cannot run post-mortem from a flat trace alone — it needs
the CST and the structure markers, which is exactly the design trade the
paper makes (§I: compile-time help in exchange for needing the build
step).
"""

from __future__ import annotations

import re

from repro.mpisim.events import NO_PEER, CommEvent

from .scalatrace import ScalaTraceCompressor

_LINE = re.compile(
    r"^(?P<op>MPI_\w+) r(?P<rank>\d+) t=(?P<t>[\d.]+) d=(?P<d>[\d.]+)"
    r"(?P<rest>.*)$"
)
_FIELD = re.compile(r"(\w+)=([\-\d,]+)")


class TraceParseError(Exception):
    """A raw trace line did not match the expected format."""


_REQ = re.compile(r"^REQ (?P<rid>\d+) src=(?P<src>-?\d+) bytes=(?P<nb>\d+)")


def parse_req_line(line: str) -> tuple[int, int, int] | None:
    """Parse a request-completion bookkeeping line -> (rid, src, nbytes)."""
    m = _REQ.match(line.strip())
    if m is None:
        return None
    return int(m.group("rid")), int(m.group("src")), int(m.group("nb"))


def parse_line(line: str, seq: int) -> CommEvent | None:
    """Parse one raw-trace line; returns None for REQ bookkeeping lines."""
    line = line.strip()
    if not line or line.startswith("REQ"):
        return None
    m = _LINE.match(line)
    if m is None:
        raise TraceParseError(f"unparseable trace line: {line!r}")
    fields = dict(_FIELD.findall(m.group("rest")))
    reqs = ()
    if "reqs" in fields:
        reqs = tuple(int(x) for x in fields["reqs"].split(","))
    return CommEvent(
        op=m.group("op"),
        rank=int(m.group("rank")),
        seq=seq,
        peer=int(fields.get("peer", NO_PEER)),
        peer2=int(fields.get("peer2", NO_PEER)),
        tag=int(fields.get("tag", 0)),
        tag2=int(fields.get("tag2", 0)),
        nbytes=int(fields.get("bytes", 0)),
        nbytes2=int(fields.get("bytes2", 0)),
        root=int(fields.get("root", -1)),
        req=int(fields.get("req", -1)),
        reqs=reqs,
        wildcard="anysrc" in m.group("rest"),
        time_start=float(m.group("t")),
        duration=float(m.group("d")),
    )


def parse_rank_trace(text: str) -> tuple[list[CommEvent], dict[int, tuple[int, int]]]:
    """Parse one rank's flat trace into (events, request resolutions)."""
    events: list[CommEvent] = []
    resolutions: dict[int, tuple[int, int]] = {}
    for line in text.splitlines():
        req = parse_req_line(line)
        if req is not None:
            rid, src, nbytes = req
            resolutions[rid] = (src, nbytes)
            continue
        ev = parse_line(line, len(events))
        if ev is not None:
            events.append(ev)
    return events, resolutions


def compress_postmortem(
    rank_traces: dict[int, str], max_window: int = 32
) -> ScalaTraceCompressor:
    """Run ScalaTrace offline over parsed flat traces.

    Nonblocking wildcard receives are logged provisionally (``peer=-1``)
    with a later ``REQ`` bookkeeping line carrying the resolved source —
    the resolutions are replayed right after the event stream, exactly as
    the on-line compressor would have seen them at completion time.
    """
    comp = ScalaTraceCompressor(max_window=max_window)
    for rank, text in sorted(rank_traces.items()):
        events, resolutions = parse_rank_trace(text)
        for ev in events:
            comp.on_event(rank, ev)
            if ev.op == "MPI_Irecv" and ev.wildcard and ev.req in resolutions:
                src, nbytes = resolutions[ev.req]
                comp.on_request_complete(rank, ev.req, src, nbytes, 0.0)
    return comp
