"""Binary serialization of the baselines' merged traces.

Gives ScalaTrace and ScalaTrace-2 the same compact varint encoding the
CYPRESS writer uses (:mod:`repro.core.serialize`), so the trace-size
comparisons of Figs. 15/19 measure representation power, not encoder
quality.
"""

from __future__ import annotations

import gzip as _gzip

from repro.core.serialize import ByteWriter
from repro.core.sequences import IntSequence
from repro.core.timing import TimeStats

from .rsd import RSD, EventTerm, Term
from .scalatrace import MergedQueue
from .scalatrace2 import ElasticEvent, ElasticRSD, ETerm, ST2Merged


def _write_ranks(w: ByteWriter, ranks: list[int]) -> None:
    seq = IntSequence.from_values(sorted(ranks))
    w.u(len(seq.terms))
    for start, count, stride in seq.terms:
        w.z(start)
        w.u(count)
        w.z(stride)


def _write_seq(w: ByteWriter, seq: IntSequence) -> None:
    w.u(len(seq.terms))
    for start, count, stride in seq.terms:
        w.z(start)
        w.u(count)
        w.z(stride)


def _write_stats(w: ByteWriter, st: TimeStats) -> None:
    w.u(st.count)
    w.f(st.mean)
    w.f(st.m2)


def _write_sig(w: ByteWriter, sig: tuple, ops: dict[str, int]) -> None:
    w.u(ops.setdefault(sig[0], len(ops)))
    for enc in (sig[1], sig[2]):
        if isinstance(enc, tuple):
            w.u(0 if enc[0] == "abs" else (1 if enc[0] == "rel" else 2))
            w.z(enc[1] if isinstance(enc[1], int) else 0)
        else:
            w.u(2)
            w.z(0)
    for value in sig[3:]:
        if isinstance(value, bool):
            w.u(1 if value else 0)
        elif isinstance(value, int):
            w.z(value)
        elif isinstance(value, str):
            w.u(ops.setdefault(value, len(ops)))
        else:
            w.z(0)


def _write_term(w: ByteWriter, term: Term, ops: dict[str, int]) -> None:
    if isinstance(term, EventTerm):
        w.u(0)
        _write_sig(w, term.sig, ops)
        _write_stats(w, term.duration)
        _write_stats(w, term.pre_gap)
    else:
        w.u(1)
        w.u(term.count)
        w.u(len(term.body))
        for t in term.body:
            _write_term(w, t, ops)


def scalatrace_dumps(merged: MergedQueue, gzip: bool = False) -> bytes:
    w = ByteWriter()
    ops: dict[str, int] = {}
    body = ByteWriter()
    body.u(len(merged))
    for slot in merged:
        body.u(len(slot.variants))
        for ranks, term in slot.variants:
            _write_ranks(body, ranks)
            _write_term(body, term, ops)
    # op string table (built while writing, emitted first)
    w.u(len(ops))
    for text in ops:
        w.s(text)
    w.raw(body.bytes())
    data = w.bytes()
    return _gzip.compress(data, 6) if gzip else data


# ---------------------------------------------------------------------------


def _write_shape(w: ByteWriter, shape: tuple, ops: dict[str, int]) -> None:
    # Shapes are nested tuples of ints/strings; encode generically.
    if isinstance(shape, tuple):
        w.u(0)
        w.u(len(shape))
        for item in shape:
            _write_shape(w, item, ops)
    elif isinstance(shape, str):
        w.u(1)
        w.u(ops.setdefault(shape, len(ops)))
    elif isinstance(shape, bool):
        w.u(2)
        w.u(1 if shape else 0)
    elif isinstance(shape, int):
        w.u(3)
        w.z(shape)
    else:
        w.u(2)
        w.u(0)


def _write_eterm(w: ByteWriter, term: ETerm, ops: dict[str, int]) -> None:
    if isinstance(term, ElasticEvent):
        w.u(0)
        _write_shape(w, term.shape, ops)
        _write_seq(w, term.peers)
        _write_seq(w, term.sizes)
        _write_stats(w, term.duration)
        _write_stats(w, term.pre_gap)
    else:
        assert isinstance(term, ElasticRSD)
        w.u(1)
        _write_seq(w, term.counts)
        w.u(len(term.body))
        for t in term.body:
            _write_eterm(w, t, ops)


def scalatrace2_dumps(merged: ST2Merged, gzip: bool = False) -> bytes:
    w = ByteWriter()
    ops: dict[str, int] = {}
    body = ByteWriter()
    body.u(len(merged.slots))
    body.u(1 if merged.lossy else 0)
    for slot in merged.slots:
        body.u(len(slot.variants))
        for ranks, term in slot.variants:
            _write_ranks(body, ranks)
            _write_eterm(body, term, ops)
    w.u(len(ops))
    for text in ops:
        w.s(text)
    w.raw(body.bytes())
    data = w.bytes()
    return _gzip.compress(data, 6) if gzip else data
