"""Structural addressing of merged-CTT vertices.

Every query result that points at program structure does so through a
*vertex path* — the chain of control structures from the program root
down to a vertex, rendered like::

    loop#4/branch#7.0/MPI_Send@9

(`#` is followed by the vertex GID; branch segments also carry the
taken path index; leaf segments name the MPI op).  Paths are static
structure: the same for every rank and every merge schedule, cheap to
compute from the compressed form, and far more useful in a report than
a raw replayed-event index ("event 48237 differs" vs "the send inside
the halo-exchange loop differs").

:class:`TreeIndex` is the one-pass O(compressed-size) index the query
engine builds over a merged CTT: ``gid → vertex``, parent links, child
positions and depths.  Build it once and pass it to repeated queries to
amortize the walk.
"""

from __future__ import annotations

from repro.static.cst import BRANCH, CALL, LOOP


class QueryError(ValueError):
    """A query was asked about structure the merged tree does not have
    (unknown GID, non-leaf GID for a leaf query, inconsistent payload)."""


class TreeIndex:
    """gid-addressable view of a merged CTT (or a single-rank CTT —
    anything with ``.root`` whose vertices expose ``gid``/``kind``/
    ``children``)."""

    __slots__ = ("root", "by_gid", "parent_gid", "child_pos", "depth")

    def __init__(self, merged) -> None:
        self.root = merged.root
        self.by_gid: dict[int, object] = {}
        self.parent_gid: dict[int, int | None] = {}
        self.child_pos: dict[int, int] = {}
        self.depth: dict[int, int] = {}
        stack = [(merged.root, None, 0, 0)]
        while stack:
            vertex, parent_gid, pos, depth = stack.pop()
            self.by_gid[vertex.gid] = vertex
            self.parent_gid[vertex.gid] = parent_gid
            self.child_pos[vertex.gid] = pos
            self.depth[vertex.gid] = depth
            for i, child in enumerate(reversed(vertex.children)):
                stack.append(
                    (child, vertex.gid, len(vertex.children) - 1 - i,
                     depth + 1)
                )

    # -- lookups ---------------------------------------------------------

    def vertex(self, gid: int):
        try:
            return self.by_gid[gid]
        except KeyError:
            raise QueryError(f"no vertex with gid {gid} in this trace") from None

    def call_leaf(self, gid: int):
        vertex = self.vertex(gid)
        if vertex.kind != CALL:
            raise QueryError(
                f"gid {gid} is a {vertex.kind} vertex, not an MPI call leaf"
            )
        return vertex

    def parent(self, gid: int):
        pg = self.parent_gid[gid]
        return None if pg is None else self.by_gid[pg]

    def chain(self, gid: int) -> list:
        """Vertices from ``gid`` up to (and including) the root."""
        out = [self.vertex(gid)]
        pg = self.parent_gid[gid]
        while pg is not None:
            out.append(self.by_gid[pg])
            pg = self.parent_gid[pg]
        return out

    def lca_gid(self, gid_a: int, gid_b: int) -> int:
        """Lowest common ancestor of two vertices."""
        a, b = self.vertex(gid_a).gid, self.vertex(gid_b).gid
        while self.depth[a] > self.depth[b]:
            a = self.parent_gid[a]
        while self.depth[b] > self.depth[a]:
            b = self.parent_gid[b]
        while a != b:
            a = self.parent_gid[a]
            b = self.parent_gid[b]
        return a

    # -- rendering -------------------------------------------------------

    def path(self, gid: int) -> str:
        """Vertex path string, root (excluded) to ``gid``."""
        segments = []
        for vertex in reversed(self.chain(gid)):
            kind = vertex.kind
            if kind == LOOP:
                segments.append(f"loop#{vertex.gid}")
            elif kind == BRANCH:
                segments.append(f"branch#{vertex.gid}.{vertex.branch_path}")
            elif kind == CALL:
                segments.append(f"{vertex.op or vertex.name or '?'}@{vertex.gid}")
            # the virtual root contributes no segment
        return "/".join(segments) if segments else "<root>"


def vertex_path(merged, gid: int) -> str:
    """One-shot vertex path (builds a throwaway :class:`TreeIndex`;
    reuse an index for repeated lookups)."""
    return TreeIndex(merged).path(gid)
