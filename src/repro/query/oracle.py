"""Replay oracles: each query's slow, trivially-correct twin.

Every function in :mod:`repro.query.engine` has a ``*_via_replay``
counterpart here that computes the *identical* answer by decompressing
the merged trace into per-rank event lists and analyzing those — the
way a tool with no query engine would.  The twins exist to be compared:
the differential tests assert engine == oracle on every workload and
merge schedule, which pins the decompression-free implementations down
by construction.

Agreement convention
--------------------

Integer fields (messages, bytes, calls, counts, relations, GIDs) must
match **exactly**.  Float fields (times) are compared with a relative/
absolute tolerance of 1e-9: the engine computes ``mean × count`` per
record while the oracle sums ``mean`` once per replayed event, and IEEE
addition is not associative, so the two can differ in the last ulp.
:func:`agreement_errors` encodes the convention once; tests and the CLI
``--oracle`` flag both go through it.

Each oracle accepts the replayed events (``traces=`` / ``events=``) so
a test suite can decompress once and feed every oracle — replay is the
expensive part.
"""

from __future__ import annotations

import math

from repro.core.decompress import ReplayEvent, decompress_all, decompress_merged_rank

from .engine import (
    SEND_OPS,
    CriticalLeaf,
    OpProfile,
    OrderingResult,
    RankProfile,
    Traffic,
)
from .paths import TreeIndex

_TOL = 1e-9


# ---------------------------------------------------------------------------
# Oracles.


def traffic_via_replay(
    merged,
    group_by: str = "op",
    nprocs: int | None = None,
    traces: dict[int, list[ReplayEvent]] | None = None,
) -> dict:
    """Replay every rank and aggregate events one by one."""
    if group_by not in ("vertex", "op", "rank_pair"):
        raise ValueError(f"unknown traffic grouping {group_by!r}")
    if traces is None:
        traces = decompress_all(merged)
    if group_by == "rank_pair" and nprocs is None:
        nprocs = max(traces, default=-1) + 1
    out: dict = {}

    def bump(key, messages: int, nbytes: int) -> None:
        cell = out.get(key)
        out[key] = Traffic(
            messages=(cell.messages if cell else 0) + messages,
            nbytes=(cell.nbytes if cell else 0) + nbytes,
        )

    for rank, events in traces.items():
        for ev in events:
            if group_by == "rank_pair":
                if ev.op in SEND_OPS and 0 <= ev.peer < nprocs:
                    bump((rank, ev.peer), 1, ev.nbytes)
            elif group_by == "vertex":
                bump(ev.gid, 1, ev.nbytes + ev.nbytes2)
            else:
                bump(ev.op, 1, ev.nbytes + ev.nbytes2)
    return out


def ordering_via_replay(
    merged,
    gid_a: int,
    gid_b: int,
    rank: int,
    events: list[ReplayEvent] | None = None,
) -> OrderingResult:
    """Replay one rank and compare the event positions directly."""
    if events is None:
        events = decompress_merged_rank(merged, rank)
    pos_a = [i for i, ev in enumerate(events) if ev.gid == gid_a]
    pos_b = [i for i, ev in enumerate(events) if ev.gid == gid_b]
    if not pos_a and not pos_b:
        relation = "neither"
    elif not pos_b:
        relation = "only-a"
    elif not pos_a:
        relation = "only-b"
    elif pos_a[-1] < pos_b[0]:
        relation = "before"
    elif pos_b[-1] < pos_a[0]:
        relation = "after"
    else:
        relation = "interleaved"
    return OrderingResult(
        gid_a=gid_a, gid_b=gid_b, rank=rank, relation=relation,
        count_a=len(pos_a), count_b=len(pos_b),
    )


def rank_profile_via_replay(
    merged,
    rank: int,
    events: list[ReplayEvent] | None = None,
) -> RankProfile:
    """Replay one rank and fold its events into a per-op profile."""
    if events is None:
        events = decompress_merged_rank(merged, rank)
    profile = RankProfile(rank=rank)
    for ev in events:
        entry = profile.ops.get(ev.op)
        if entry is None:
            entry = profile.ops[ev.op] = OpProfile(op=ev.op)
        entry.calls += 1
        entry.nbytes += ev.nbytes + ev.nbytes2
        entry.time_us += ev.mean_duration
        entry.gap_us += ev.mean_gap
        profile.events += 1
        profile.comm_us += ev.mean_duration
        profile.gap_us += ev.mean_gap
    return profile


def critical_leaves_via_replay(
    merged,
    k: int = 10,
    traces: dict[int, list[ReplayEvent]] | None = None,
) -> list[CriticalLeaf]:
    """Replay every rank and rank leaves by summed event durations.

    Paths and depths are taken from the (static) tree structure — they
    have no dynamic content to differ on."""
    if traces is None:
        traces = decompress_all(merged)
    index = TreeIndex(merged)
    totals: dict[int, float] = {}
    calls: dict[int, int] = {}
    for events in traces.values():
        for ev in events:
            totals[ev.gid] = totals.get(ev.gid, 0.0) + ev.mean_duration
            calls[ev.gid] = calls.get(ev.gid, 0) + 1
    leaves = [
        CriticalLeaf(
            gid=gid,
            op=index.vertex(gid).op or index.vertex(gid).name or "?",
            depth=index.depth[gid],
            calls=calls[gid],
            total_us=totals[gid],
            path=index.path(gid),
        )
        for gid in totals
    ]
    leaves.sort(key=lambda c: (-c.total_us, c.gid))
    return leaves[:k]


# ---------------------------------------------------------------------------
# Agreement checking.


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_TOL, abs_tol=_TOL)


def agreement_errors(engine_result, oracle_result, label: str = "query") -> list[str]:
    """Structural comparison under the agreement convention (ints exact,
    floats within 1e-9).  Returns human-readable mismatch descriptions —
    empty means the results agree."""
    errors: list[str] = []

    def walk(a, b, where: str) -> None:
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b), key=repr):
                if key not in a:
                    errors.append(f"{where}[{key!r}]: missing from engine")
                elif key not in b:
                    errors.append(f"{where}[{key!r}]: missing from oracle")
                else:
                    walk(a[key], b[key], f"{where}[{key!r}]")
        elif isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
            if len(a) != len(b):
                errors.append(f"{where}: length {len(a)} != {len(b)}")
                return
            for i, (x, y) in enumerate(zip(a, b)):
                walk(x, y, f"{where}[{i}]")
        elif hasattr(a, "__dataclass_fields__") and hasattr(b, "__dataclass_fields__"):
            if type(a) is not type(b):
                errors.append(f"{where}: {type(a).__name__} != {type(b).__name__}")
                return
            for name in a.__dataclass_fields__:
                walk(getattr(a, name), getattr(b, name), f"{where}.{name}")
        elif isinstance(a, bool) or isinstance(b, bool):
            if a != b:
                errors.append(f"{where}: {a!r} != {b!r}")
        elif isinstance(a, float) or isinstance(b, float):
            if not _close(float(a), float(b)):
                errors.append(f"{where}: {a!r} !~ {b!r} (tol {_TOL})")
        else:
            if a != b:
                errors.append(f"{where}: {a!r} != {b!r}")

    walk(engine_result, oracle_result, label)
    return errors


def assert_agrees(engine_result, oracle_result, label: str = "query") -> None:
    """Raise ``AssertionError`` listing every mismatch (for tests and the
    CLI ``--oracle`` cross-check)."""
    errors = agreement_errors(engine_result, oracle_result, label)
    if errors:
        shown = "\n  ".join(errors[:20])
        more = f"\n  ... and {len(errors) - 20} more" if len(errors) > 20 else ""
        raise AssertionError(
            f"{label}: engine and replay oracle disagree:\n  {shown}{more}"
        )
