"""Decompression-free queries over merged CTTs (paper §VII-D).

The engine answers traffic, ordering, per-rank-profile and hotspot
questions straight from the compressed structure; :mod:`.oracle` holds
the replay-based twins the differential tests compare against.
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass

from .engine import (
    SEND_OPS,
    CriticalLeaf,
    OpProfile,
    OrderingResult,
    RankProfile,
    Traffic,
    critical_leaves,
    leaf_time,
    ordering,
    rank_count,
    rank_profile,
    traffic,
)
from .oracle import (
    agreement_errors,
    assert_agrees,
    critical_leaves_via_replay,
    ordering_via_replay,
    rank_profile_via_replay,
    traffic_via_replay,
)
from .paths import QueryError, TreeIndex, vertex_path

__all__ = [
    "SEND_OPS",
    "CriticalLeaf",
    "OpProfile",
    "OrderingResult",
    "QueryError",
    "RankProfile",
    "Traffic",
    "TreeIndex",
    "agreement_errors",
    "assert_agrees",
    "critical_leaves",
    "critical_leaves_via_replay",
    "leaf_time",
    "ordering",
    "ordering_via_replay",
    "rank_count",
    "rank_profile",
    "rank_profile_via_replay",
    "to_jsonable",
    "traffic",
    "traffic_via_replay",
    "vertex_path",
]


def to_jsonable(result):
    """Render any query result as plain JSON-serializable data.

    Tuple dict keys (the ``rank_pair`` traffic grouping) become
    ``"src->dst"`` strings; dataclasses become dicts."""
    if is_dataclass(result) and not isinstance(result, type):
        return {k: to_jsonable(v) for k, v in asdict(result).items()}
    if isinstance(result, dict):
        out = {}
        for key, value in result.items():
            if isinstance(key, tuple):
                key = "->".join(str(k) for k in key)
            out[str(key)] = to_jsonable(value)
        return out
    if isinstance(result, (list, tuple)):
        return [to_jsonable(v) for v in result]
    return result
