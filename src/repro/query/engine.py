"""Decompression-free queries over merged CTTs.

CYPRESS's payoff (paper §VII-D) is that analyses read the *compressed*
trace: the merged CTT already is a complete, queryable description of
every rank's behaviour — stride-compressed loop counts, branch visit
sets, rank-set groups and per-leaf records.  Every function here walks
those structures directly; none emits a single replayed event, so query
cost is proportional to the compressed size, not the trace length
("Data Race Detection on Compressed Traces" makes the same move for
happens-before analysis).

Queries:

* :func:`traffic` — byte/message aggregation by vertex, op, or
  (src, dst) rank pair (the communication matrix generalized);
* :func:`ordering` — does every event of one call site precede every
  event of another, for a given rank?  Answered from preorder position,
  loop-nesting intervals and visit counts;
* :func:`rank_profile` — one rank's per-op calls/bytes/time, folded
  from the groups the rank belongs to;
* :func:`critical_leaves` — the top-k time-weighted call sites with
  their structural paths (the hotspot view, without the tree render).

Every query has a replay-oracle twin in :mod:`repro.query.oracle` that
computes the same answer from ``decompress_all`` — slow, trivially
correct, and used by the differential test layer to pin these
implementations down.

Ordering semantics
------------------

``ordering(merged, a, b, rank)`` classifies the relative order of the
events rank ``rank`` emitted at leaves ``a`` and ``b``:

* ``"before"`` — every a-event precedes every b-event;
* ``"after"`` — the mirror image;
* ``"interleaved"`` — neither (the loop around them alternates);
* ``"only-a"`` / ``"only-b"`` / ``"neither"`` — one or both leaves
  emitted nothing for this rank.

The structural computation: a leaf fires exactly once per execution of
its parent's body (occurrence sets exactly cover the visit range), so
the set of *lowest-common-ancestor body executions* in which a leaf
fires is the image of ``{0..count-1}`` under the monotone maps induced
by the loop-count and branch-visit sequences on the path up to the LCA.
Min/max of that image — computed by O(terms) arithmetic on the stride
tuples, never by expansion — plus child order inside one body execution
decide the relation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.ranks import try_decode_peer
from repro.core.sequences import IntSequence
from repro.static.cst import BRANCH, CALL, LOOP

from .paths import QueryError, TreeIndex

#: Point-to-point send ops charged to a (src, dst) cell — the same set
#: :mod:`repro.analysis.patterns` uses for the communication matrix.
SEND_OPS = frozenset({"MPI_Send", "MPI_Isend", "MPI_Sendrecv"})

_NBYTES, _NBYTES2 = 5, 6  # record-key slots (see repro.core.records)


# ---------------------------------------------------------------------------
# Result types.


@dataclass(frozen=True)
class Traffic:
    """Aggregated communication volume for one grouping key."""

    messages: int = 0
    nbytes: int = 0


@dataclass(frozen=True)
class OrderingResult:
    gid_a: int
    gid_b: int
    rank: int
    relation: str  # before | after | interleaved | only-a | only-b | neither
    count_a: int
    count_b: int

    def format(self) -> str:
        rel = {
            "before": "every event of A precedes every event of B",
            "after": "every event of B precedes every event of A",
            "interleaved": "events of A and B interleave",
            "only-a": "only A emitted events",
            "only-b": "only B emitted events",
            "neither": "neither leaf emitted events",
        }[self.relation]
        return (
            f"rank {self.rank}: A=gid{self.gid_a} ({self.count_a} events) "
            f"vs B=gid{self.gid_b} ({self.count_b} events): {rel}"
        )


@dataclass
class OpProfile:
    op: str
    calls: int = 0
    nbytes: int = 0
    time_us: float = 0.0
    gap_us: float = 0.0


@dataclass
class RankProfile:
    rank: int
    events: int = 0
    comm_us: float = 0.0
    gap_us: float = 0.0
    ops: dict[str, OpProfile] = field(default_factory=dict)

    def format(self) -> str:
        lines = [
            f"rank {self.rank}: {self.events} events, "
            f"{self.comm_us / 1e3:.2f} ms comm, "
            f"{self.gap_us / 1e3:.2f} ms compute gaps",
            f"  {'op':16s} {'calls':>8s} {'bytes':>12s} {'time(ms)':>10s}",
        ]
        for op in sorted(self.ops, key=lambda o: -self.ops[o].time_us):
            p = self.ops[op]
            lines.append(
                f"  {op:16s} {p.calls:8d} {p.nbytes:12d} "
                f"{p.time_us / 1e3:10.2f}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class CriticalLeaf:
    gid: int
    op: str
    depth: int
    calls: int
    total_us: float
    path: str


# ---------------------------------------------------------------------------
# Shared helpers.


def rank_count(merged) -> int:
    """Highest member rank across all groups, plus one (0 for an empty
    tree) — the rank-space size queries validate decoded peers against
    when the caller does not pass ``nprocs`` explicitly."""
    highest = -1
    for vertex in merged.root.preorder():
        for group in vertex.groups.values():
            if group.ranks and group.ranks[-1] > highest:
                highest = group.ranks[-1]
    return highest + 1


def leaf_time(vertex) -> tuple[float, int]:
    """(total communication time, dynamic call count) of one merged
    leaf, summed over every rank of every group — the hotspot weight."""
    total = 0.0
    calls = 0
    for group in vertex.groups.values():
        records = group.records
        if not records:
            continue
        nmembers = len(group.ranks)
        for record in records:
            if record.key is None:
                continue
            total += record.duration.mean * record.duration.count
            calls += record.count * nmembers
    return total, calls


def _count_queries(registry, name: str, vertices: int = 0, records: int = 0):
    if registry is None:
        return
    registry.counter_add("query.calls")
    registry.counter_add(f"query.{name}.calls")
    if vertices:
        registry.counter_add("query.vertices", vertices)
    if records:
        registry.counter_add("query.records", records)


# ---------------------------------------------------------------------------
# traffic.


def traffic(
    merged,
    group_by: str = "op",
    nprocs: int | None = None,
) -> dict:
    """Aggregate message counts and payload bytes straight from the
    merged records.

    ``group_by``:

    * ``"vertex"`` — keys are leaf GIDs; every op counts; bytes are
      send+recv payload (``nbytes + nbytes2``);
    * ``"op"`` — same totals keyed by MPI op name;
    * ``"rank_pair"`` — keys are ``(src, dst)`` tuples; only the
      :data:`SEND_OPS` count, with send-side bytes — the communication
      matrix as a sparse dict.  A destination decoding outside
      ``[0, nprocs)`` cannot be charged to a cell and is counted in the
      ``query.out_of_range_peers`` counter (damaged trace).

    ``nprocs`` defaults to :func:`rank_count` of the tree.
    """
    if group_by not in ("vertex", "op", "rank_pair"):
        raise ValueError(f"unknown traffic grouping {group_by!r}")
    registry = obs.active()
    with obs.span("query.traffic"):
        out: dict = {}
        vertices = 0
        records_seen = 0
        dropped = 0
        if group_by == "rank_pair" and nprocs is None:
            nprocs = rank_count(merged)
        for vertex in merged.root.preorder():
            vertices += 1
            if vertex.kind != CALL or not vertex.groups:
                continue
            for group in vertex.groups.values():
                records = group.records
                if not records:
                    continue
                nmembers = len(group.ranks)
                for record in records:
                    key = record.key
                    if key is None or record.count == 0:
                        continue
                    records_seen += 1
                    count = record.count
                    if group_by == "rank_pair":
                        if key[0] not in SEND_OPS:
                            continue
                        nbytes = key[_NBYTES]
                        for rank in group.ranks:
                            dst, ok = try_decode_peer(key[1], rank, nprocs)
                            if not ok or not 0 <= dst < nprocs:
                                dropped += count
                                continue
                            cell = out.get((rank, dst))
                            out[(rank, dst)] = Traffic(
                                messages=(cell.messages if cell else 0) + count,
                                nbytes=(cell.nbytes if cell else 0)
                                + count * nbytes,
                            )
                        continue
                    gkey = vertex.gid if group_by == "vertex" else key[0]
                    messages = count * nmembers
                    nbytes = (key[_NBYTES] + key[_NBYTES2]) * messages
                    cell = out.get(gkey)
                    out[gkey] = Traffic(
                        messages=(cell.messages if cell else 0) + messages,
                        nbytes=(cell.nbytes if cell else 0) + nbytes,
                    )
        _count_queries(registry, "traffic", vertices, records_seen)
        if dropped and registry is not None:
            registry.counter_add("query.out_of_range_peers", dropped)
        return out


# ---------------------------------------------------------------------------
# ordering.


def _leaf_event_count(vertex, rank: int) -> int:
    """Events ``rank`` emitted at a merged leaf = total occurrences of
    its group's records (occurrence sets exactly cover the visit
    range)."""
    group = vertex.group_of(rank)
    if group is None or not group.records:
        return 0
    return sum(r.count for r in group.records)


def _activation_of(counts: IntSequence, j: int) -> int:
    """Which activation (position in ``counts``) contains body-execution
    ``j``?  Pure stride-tuple arithmetic: O(terms · log max-count)."""
    base = 0  # activations before the current term
    cum = 0  # body executions before the current term
    for start, count, stride in counts.terms:
        term_total = count * start + stride * (count * (count - 1) // 2)
        if j < cum + term_total:
            j2 = j - cum
            # prefix(i) = executions before activation i within the term;
            # nondecreasing, so binary-search the largest i with
            # prefix(i) <= j2.
            lo, hi = 0, count - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                prefix = mid * start + stride * (mid * (mid - 1) // 2)
                if prefix <= j2:
                    lo = mid
                else:
                    hi = mid - 1
            return base + lo
        cum += term_total
        base += count
    raise QueryError(
        f"body-execution index {j} outside the recorded iteration space "
        f"({cum} executions)"
    )


def _exec_interval(
    index: TreeIndex, leaf, lca_gid: int, rank: int, count: int
) -> tuple[int, int, int]:
    """Map a leaf's event range onto LCA-body-execution indices.

    Returns ``(first_exec, last_exec, top_child_pos)`` where the execs
    index executions of the LCA's body and ``top_child_pos`` is the
    child position (inside the LCA) of the subtree holding the leaf.
    """
    lo, hi = 0, count - 1  # indexes executions of the leaf's parent body
    vertex = leaf
    parent = index.parent(vertex.gid)
    while parent is not None and parent.gid != lca_gid:
        vertex = parent
        group = vertex.group_of(rank) if vertex.kind in (LOOP, BRANCH) else None
        if vertex.kind == LOOP:
            counts = group.counts if group is not None else None
            if counts is None:
                raise QueryError(
                    f"rank {rank} fired leaf gid {leaf.gid} but loop gid "
                    f"{vertex.gid} recorded no iterations for it"
                )
            lo = _activation_of(counts, lo)
            hi = _activation_of(counts, hi)
        elif vertex.kind == BRANCH:
            visits = group.visits if group is not None else None
            if visits is None:
                raise QueryError(
                    f"rank {rank} fired leaf gid {leaf.gid} but branch gid "
                    f"{vertex.gid} recorded no visits for it"
                )
            lo = visits.value_at(lo)
            hi = visits.value_at(hi)
        parent = index.parent(vertex.gid)
    if parent is None:
        raise QueryError(f"gid {lca_gid} is not an ancestor of {leaf.gid}")
    return lo, hi, index.child_pos[vertex.gid]


def ordering(
    merged,
    gid_a: int,
    gid_b: int,
    rank: int,
    index: TreeIndex | None = None,
) -> OrderingResult:
    """Happens-before between two call sites for one rank, answered
    from the compressed structure (see the module docstring for the
    exact semantics and the derivation)."""
    registry = obs.active()
    with obs.span("query.ordering"):
        idx = index if index is not None else TreeIndex(merged)
        leaf_a = idx.call_leaf(gid_a)
        leaf_b = idx.call_leaf(gid_b)
        count_a = _leaf_event_count(leaf_a, rank)
        count_b = _leaf_event_count(leaf_b, rank)
        _count_queries(registry, "ordering")

        def result(relation: str) -> OrderingResult:
            return OrderingResult(
                gid_a=gid_a, gid_b=gid_b, rank=rank, relation=relation,
                count_a=count_a, count_b=count_b,
            )

        if count_a == 0 and count_b == 0:
            return result("neither")
        if count_b == 0:
            return result("only-a")
        if count_a == 0:
            return result("only-b")
        if gid_a == gid_b:
            return result("interleaved")
        lca = idx.lca_gid(gid_a, gid_b)
        lo_a, hi_a, pos_a = _exec_interval(idx, leaf_a, lca, rank, count_a)
        lo_b, hi_b, pos_b = _exec_interval(idx, leaf_b, lca, rank, count_b)
        if hi_a < lo_b or (hi_a == lo_b and pos_a < pos_b):
            return result("before")
        if hi_b < lo_a or (hi_b == lo_a and pos_b < pos_a):
            return result("after")
        return result("interleaved")


# ---------------------------------------------------------------------------
# rank_profile.


def rank_profile(merged, rank: int) -> RankProfile:
    """One rank's per-op communication profile, folded from the groups
    it belongs to.  Timing is the group statistics the replay would
    carry (``mean × count``); calls and bytes are exact."""
    registry = obs.active()
    with obs.span("query.rank_profile"):
        profile = RankProfile(rank=rank)
        vertices = 0
        records_seen = 0
        for vertex in merged.root.preorder():
            vertices += 1
            if vertex.kind != CALL or not vertex.groups:
                continue
            group = vertex.group_of(rank)
            if group is None or not group.records:
                continue
            for record in group.records:
                key = record.key
                if key is None or record.count == 0:
                    continue
                records_seen += 1
                count = record.count
                entry = profile.ops.get(key[0])
                if entry is None:
                    entry = profile.ops[key[0]] = OpProfile(op=key[0])
                entry.calls += count
                entry.nbytes += (key[_NBYTES] + key[_NBYTES2]) * count
                time_us = record.duration.mean * count
                gap_us = record.pre_gap.mean * count
                entry.time_us += time_us
                entry.gap_us += gap_us
                profile.events += count
                profile.comm_us += time_us
                profile.gap_us += gap_us
        _count_queries(registry, "rank_profile", vertices, records_seen)
        return profile


# ---------------------------------------------------------------------------
# critical_leaves.


def critical_leaves(
    merged, k: int = 10, index: TreeIndex | None = None
) -> list[CriticalLeaf]:
    """The ``k`` most communication-time-expensive call sites, with
    their structural paths.  Ties break toward the lower GID."""
    registry = obs.active()
    with obs.span("query.critical_leaves"):
        idx = index if index is not None else TreeIndex(merged)
        leaves: list[CriticalLeaf] = []
        vertices = 0
        for vertex in merged.root.preorder():
            vertices += 1
            if vertex.kind != CALL or not vertex.groups:
                continue
            total_us, calls = leaf_time(vertex)
            if calls == 0:
                continue
            leaves.append(CriticalLeaf(
                gid=vertex.gid,
                op=vertex.op or vertex.name or "?",
                depth=idx.depth[vertex.gid],
                calls=calls,
                total_us=total_us,
                path=idx.path(vertex.gid),
            ))
        _count_queries(registry, "critical_leaves", vertices)
        leaves.sort(key=lambda c: (-c.total_us, c.gid))
        return leaves[:k]
