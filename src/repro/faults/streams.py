"""Deterministic corruption of captured marker/event streams.

Operates on the opcode-tuple streams :class:`~repro.mpisim.pmpi.
StreamCaptureSink` records — the representation the deferred compression
path (:func:`repro.core.intra.compress_streams`) consumes — so an
injected corruption exercises exactly the CST/stream-mismatch paths the
quarantine machinery must survive:

* ``opcode``      — insert a tuple with an unknown stream opcode;
* ``unknown-op``  — rewrite one event's MPI op to a name with no CST
  leaf (an unknown-GID dispatch failure);
* ``unbalanced``  — insert a loop-exit marker with no open loop.

Every kind is guaranteed to raise
:class:`~repro.core.errors.StreamMismatchError` when the stream is
compressed strictly.
"""

from __future__ import annotations

from dataclasses import replace as _replace

from repro.mpisim.pmpi import OP_EVENT, OP_LOOP_POP

from .plan import CORRUPT_KINDS, FaultPlan

#: Stream opcode no capture ever writes (pmpi opcodes are 0..9).
BOGUS_OPCODE = 99

#: MPI op name no CST can contain a leaf for.
BOGUS_OP = "MPI_Bogus"


def corrupt_stream(stream: list, kind: str, rng) -> list:
    """Return a corrupted copy of one rank's captured stream."""
    if kind == "mixed":
        kind = rng.choice(CORRUPT_KINDS)
    out = list(stream)
    if kind == "opcode":
        out.insert(rng.randrange(len(out) + 1), (BOGUS_OPCODE,))
    elif kind == "unbalanced":
        out.insert(rng.randrange(len(out) + 1), (OP_LOOP_POP, -1))
    elif kind == "unknown-op":
        events = [i for i, item in enumerate(out) if item[0] == OP_EVENT]
        if not events:
            # No event to rewrite — degrade to an opcode corruption so
            # the plan still injects *something* into the victim.
            out.insert(rng.randrange(len(out) + 1), (BOGUS_OPCODE,))
        else:
            i = rng.choice(events)
            out[i] = (OP_EVENT, _replace(out[i][1], op=BOGUS_OP))
    else:
        raise ValueError(f"unknown stream-corruption kind {kind!r}")
    return out


def corrupt_streams(
    streams: dict[int, list], plan: FaultPlan
) -> dict[int, list]:
    """Apply ``plan``'s stream corruption; victims absent from
    ``streams`` are ignored.  Returns a new dict (victim streams are
    copies; healthy streams are shared)."""
    if not plan.corrupt_ranks:
        return streams
    out = dict(streams)
    for rank in plan.corrupt_ranks:
        stream = out.get(rank)
        if stream is not None:
            out[rank] = corrupt_stream(
                stream, plan.corrupt_kind, plan.rng("stream", rank)
            )
    return out
