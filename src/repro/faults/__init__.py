"""Deterministic fault injection for the compression pipeline.

Production petascale runs lose ranks, workers, and file tails; this
package makes every one of those failures *reproducible* so the
resilience layer (rank quarantine, pool retries, crash-safe trace I/O —
docs/INTERNALS.md §7) is testable in CI instead of only in postmortems.

Everything is driven by a seeded :class:`FaultPlan`:

* :func:`corrupt_streams` mangles captured per-rank event streams
  (unknown ops, bogus opcodes, unbalanced markers);
* :class:`WorkerFault` entries kill, hang, or fail specific pool tasks
  on specific attempts (executed worker-side by
  :func:`apply_worker_fault` via :mod:`repro.core.respool`);
* :func:`truncate` / :func:`bitflip` / :func:`corrupt_bytes` damage
  serialized trace bytes the way a crash mid-write or bit rot would;
* :func:`corrupt_merged` damages a *merged trace's payload* in ways the
  invariant checker (:mod:`repro.verify.invariants`) must detect — the
  negative tests of ``repro check --fault-matrix``.

Same seed → byte-identical faults, every run.
"""

from .data import bitflip, corrupt_bytes, truncate
from .payload import PAYLOAD_KINDS, corrupt_merged
from .plan import (
    ACTION_HANG,
    ACTION_KILL,
    ACTION_RAISE,
    CORRUPT_KINDS,
    NO_FAULTS,
    STAGE_INTER,
    STAGE_INTRA,
    FaultPlan,
    WorkerFault,
)
from .streams import BOGUS_OP, BOGUS_OPCODE, corrupt_stream, corrupt_streams
from .workers import InjectedWorkerError, apply_worker_fault

__all__ = [
    "ACTION_HANG",
    "ACTION_KILL",
    "ACTION_RAISE",
    "BOGUS_OP",
    "BOGUS_OPCODE",
    "CORRUPT_KINDS",
    "FaultPlan",
    "InjectedWorkerError",
    "NO_FAULTS",
    "PAYLOAD_KINDS",
    "STAGE_INTER",
    "STAGE_INTRA",
    "WorkerFault",
    "apply_worker_fault",
    "bitflip",
    "corrupt_bytes",
    "corrupt_merged",
    "corrupt_stream",
    "corrupt_streams",
    "truncate",
]
