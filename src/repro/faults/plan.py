"""Seeded fault plans — the deterministic driver of every injection.

A :class:`FaultPlan` is an immutable description of *which* faults to
inject *where*: corrupt these rank streams, kill/hang/fail these pool
tasks, truncate or bit-flip the saved trace bytes.  All randomness is
derived from ``seed`` through :meth:`FaultPlan.rng`, so a plan replayed
with the same seed injects byte-identical faults — every failure mode
the resilience layer handles is reproducible in CI.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field, replace


#: Worker-fault actions (see :mod:`repro.faults.workers`).
ACTION_RAISE = "raise"
ACTION_KILL = "kill"
ACTION_HANG = "hang"
ACTIONS = (ACTION_RAISE, ACTION_KILL, ACTION_HANG)

#: Pool stages faults can target.
STAGE_INTRA = "intra"  # compress_streams shard workers
STAGE_INTER = "inter"  # merge_all reduction workers

#: Stream-corruption kinds (see :mod:`repro.faults.streams`).
CORRUPT_KINDS = ("opcode", "unknown-op", "unbalanced")


@dataclass(frozen=True)
class WorkerFault:
    """Kill/hang/fail one pool task on its first ``attempts`` tries.

    ``task`` indexes the task (shard/chunk) within the ``stage`` pool
    run; the fault fires while ``attempt < attempts``, so retries beyond
    that succeed — which is exactly what lets tests drive the retry
    machinery deterministically.
    """

    stage: str  # STAGE_INTRA or STAGE_INTER
    task: int
    action: str  # ACTION_RAISE / ACTION_KILL / ACTION_HANG
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown worker-fault action {self.action!r}")
        if self.stage not in (STAGE_INTRA, STAGE_INTER):
            raise ValueError(f"unknown worker-fault stage {self.stage!r}")


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic set of faults to inject into a pipeline run."""

    seed: int = 0
    #: Ranks whose captured streams get corrupted (``corrupt_kind``).
    corrupt_ranks: tuple[int, ...] = ()
    #: 'opcode' | 'unknown-op' | 'unbalanced' | 'mixed' (seeded pick).
    corrupt_kind: str = "mixed"
    #: Pool tasks to kill/hang/fail (first attempt(s) only by default).
    worker_faults: tuple[WorkerFault, ...] = ()
    #: How long an injected 'hang' sleeps — the per-task timeout must be
    #: below this for the hang to be recoverable.
    hang_seconds: float = 60.0
    #: Truncate saved trace bytes at this fraction of the file (0..1).
    truncate_fraction: float | None = None
    #: Number of single-bit flips to apply to saved trace bytes.
    bitflips: int = 0

    # ------------------------------------------------------------------

    def rng(self, *salt) -> random.Random:
        """A :class:`random.Random` derived from ``seed`` plus ``salt``
        — distinct streams per (rank, stage, purpose) that never depend
        on injection order."""
        tag = zlib.crc32(repr(salt).encode("utf-8"))
        return random.Random((self.seed << 32) ^ tag)

    def worker_fault(self, stage: str, task: int, attempt: int) -> str | None:
        """The action to inject for ``task`` of ``stage`` on this
        ``attempt`` (0-based), or ``None``."""
        for fault in self.worker_faults:
            if (
                fault.stage == stage
                and fault.task == task
                and attempt < fault.attempts
            ):
                return fault.action
        return None

    def wants_stage(self, stage: str) -> bool:
        return any(f.stage == stage for f in self.worker_faults)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


#: A plan that injects nothing — handy default for plumbing.
NO_FAULTS = FaultPlan()
