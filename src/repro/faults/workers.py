"""Worker-side fault execution.

:func:`apply_worker_fault` runs *inside a pool worker process* right
before the real task body (the resilient executor threads the action
through — see :mod:`repro.core.respool`), reproducing the three ways a
production worker dies:

* ``raise`` — an unhandled exception (the task fails, the worker lives);
* ``kill``  — ``SIGKILL`` to the worker's own pid (a node OOM-kill or
  preemption: no traceback, no exit handler, the parent only sees the
  pipe close);
* ``hang``  — sleep well past any reasonable deadline (a livelocked or
  D-state worker: only a per-task timeout can recover).
"""

from __future__ import annotations

import os
import signal
import time

from .plan import ACTION_HANG, ACTION_KILL, ACTION_RAISE


class InjectedWorkerError(RuntimeError):
    """The unhandled exception an ``action='raise'`` fault throws."""


def apply_worker_fault(action: str | None, hang_seconds: float = 60.0) -> None:
    """Execute one injected fault; returns normally when ``action`` is
    ``None``."""
    if action is None:
        return
    if action == ACTION_RAISE:
        raise InjectedWorkerError("injected worker failure")
    if action == ACTION_KILL:
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable")  # pragma: no cover
    if action == ACTION_HANG:
        time.sleep(hang_seconds)
        return
    raise ValueError(f"unknown worker-fault action {action!r}")
