"""Deterministic corruption of *merged-trace payloads*.

:mod:`repro.faults.streams` damages the capture before compression (and
is caught by quarantine); the kinds here damage a **merged CTT** after
the pipeline finished — the domain of the invariant checker
(:mod:`repro.verify.invariants`).  Each kind breaks exactly one
documented invariant, so the fault matrix can prove the checker detects
every class of damage:

==================  =====================================================
kind                invariant broken (expected violation codes)
==================  =====================================================
``occ-overlap``     two records claim one occurrence index
``occ-hole``        occurrence union no longer ``{0..N-1}``
``rank-overlap``    one rank appears in two groups at a vertex
``rank-range``      a group contains a rank outside ``[0, nranks)``
``signature-stale`` payload mutated without re-interning its signature
``loop-negative``   a negative loop iteration count
``peer-range``      a REL peer delta decoding outside the rank range
``visits-regress``  a branch visit sequence that is not monotone
==================  =====================================================

Same seed → the same victim vertex and the same damage, every run.
"""

from __future__ import annotations

from repro.core.ranks import REL
from repro.core.sequences import IntSequence
from repro.static.cst import BRANCH, CALL, LOOP

PAYLOAD_KINDS = (
    "occ-overlap",
    "occ-hole",
    "rank-overlap",
    "rank-range",
    "signature-stale",
    "loop-negative",
    "peer-range",
    "visits-regress",
)


def _groups_of_kind(merged, kind):
    """Deterministic pre-order list of (vertex, group) candidates."""
    out = []
    for vertex in merged.vertices():
        if vertex.kind != kind:
            continue
        for group in vertex.sorted_groups():
            out.append((vertex, group))
    return out


def _pick(candidates, rng, kind):
    if not candidates:
        raise ValueError(
            f"no candidate site for payload corruption kind {kind!r} "
            "(tree too small or wrong shape)"
        )
    return candidates[rng.randrange(len(candidates))]


def corrupt_merged(merged, kind: str, rng, nranks: int | None = None) -> str:
    """Apply one payload corruption in place; returns a description of
    what was damaged.  Raises :class:`ValueError` when the tree has no
    site the kind applies to."""
    if kind == "occ-overlap":
        sites = [
            (v, g, r)
            for v, g in _groups_of_kind(merged, CALL)
            for r in (g.records or [])
            if r.key is not None and len(r.occurrences) >= 2
        ]
        vertex, _group, record = _pick(sites, rng, kind)
        values = record.occurrences.to_list()
        values[-1] = values[0]  # duplicate the first index, lose the last
        record.occurrences = IntSequence.from_values(sorted(values))
        return f"gid={vertex.gid}: occurrence {values[0]} now claimed twice"
    if kind == "occ-hole":
        sites = [
            (v, g, r)
            for v, g in _groups_of_kind(merged, CALL)
            for r in (g.records or [])
            if r.key is not None and len(r.occurrences) >= 1
        ]
        vertex, _group, record = _pick(sites, rng, kind)
        values = record.occurrences.to_list()
        dropped = values.pop(rng.randrange(len(values)))
        record.occurrences = IntSequence.from_values(values)
        return f"gid={vertex.gid}: occurrence {dropped} dropped"
    if kind == "rank-overlap":
        sites = [
            v for v in merged.vertices() if len(v.groups) >= 2
        ]
        if sites:
            vertex = sites[rng.randrange(len(sites))]
            groups = vertex.sorted_groups()
            stolen = groups[0].ranks[0]
            groups[1].ranks = sorted(set(groups[1].ranks) | {stolen})
            groups[1]._rank_seq = None
            vertex._by_rank = None
            return f"gid={vertex.gid}: rank {stolen} copied into a 2nd group"
        # Degenerate tree (one group everywhere): duplicate a member
        # instead — breaks the strictly-ascending rank-list invariant.
        vertex, group = _pick(
            [s for s in _groups_of_kind(merged, CALL)], rng, kind
        )
        group.ranks = group.ranks + [group.ranks[-1]]
        group._rank_seq = None
        vertex._by_rank = None
        return f"gid={vertex.gid}: rank {group.ranks[-1]} duplicated in-group"
    if kind == "rank-range":
        vertex, group = _pick(
            [s for v in merged.vertices() for s in
             [(v, g) for g in v.sorted_groups()]], rng, kind,
        )
        bogus = (nranks if nranks is not None else merged.nranks_merged) + 7
        group.ranks = group.ranks + [bogus]
        group._rank_seq = None
        vertex._by_rank = None
        return f"gid={vertex.gid}: bogus rank {bogus} appended to a group"
    if kind == "signature-stale":
        sites = [
            (v, g) for v, g in _groups_of_kind(merged, LOOP)
            if g.counts is not None and len(g.counts)
        ]
        vertex, group = _pick(sites, rng, kind)
        values = group.counts.to_list()
        values[rng.randrange(len(values))] += 1
        group.counts = IntSequence.from_values(values)  # signature NOT re-interned
        return f"gid={vertex.gid}: loop counts mutated under a stale signature"
    if kind == "loop-negative":
        sites = [
            (v, g) for v, g in _groups_of_kind(merged, LOOP)
            if g.counts is not None and len(g.counts)
        ]
        vertex, group = _pick(sites, rng, kind)
        values = group.counts.to_list()
        values[rng.randrange(len(values))] = -3
        group.counts = IntSequence.from_values(values)
        return f"gid={vertex.gid}: loop count set to -3"
    if kind == "peer-range":
        sites = [
            (v, g, r)
            for v, g in _groups_of_kind(merged, CALL)
            for r in (g.records or [])
            if r.key is not None and r.key[1][0] == REL
        ]
        vertex, group, record = _pick(sites, rng, kind)
        span = nranks if nranks is not None else merged.nranks_merged
        key = list(record.key)
        key[1] = (REL, span + 5)
        record.key = tuple(key)
        return f"gid={vertex.gid}: REL peer delta set to {span + 5}"
    if kind == "visits-regress":
        sites = [
            (v, g) for v, g in _groups_of_kind(merged, BRANCH)
            if g.visits is not None and len(g.visits) >= 2
        ]
        vertex, group = _pick(sites, rng, kind)
        values = group.visits.to_list()
        values[-1] = values[0]  # repeat the first visit at the end
        group.visits = IntSequence.from_values(values)
        return f"gid={vertex.gid}: visit sequence regresses to {values[0]}"
    raise ValueError(f"unknown payload-corruption kind {kind!r}")
