"""Deterministic corruption of serialized trace bytes.

Models the two storage failures the crash-safe container (serialize v5,
docs/INTERNALS.md §7) must detect: a write cut short mid-file
(:func:`truncate`) and at-rest bit rot (:func:`bitflip`).
"""

from __future__ import annotations

from .plan import FaultPlan


def truncate(data: bytes, fraction: float | None = None, rng=None) -> bytes:
    """Cut ``data`` short.  ``fraction`` in (0, 1) fixes the cut point;
    otherwise a seeded ``rng`` picks a random offset that always removes
    at least one byte."""
    if len(data) <= 1:
        return b""
    if fraction is not None:
        cut = max(0, min(len(data) - 1, int(len(data) * fraction)))
    else:
        cut = rng.randrange(len(data))
    return data[:cut]


def bitflip(data: bytes, rng, flips: int = 1) -> bytes:
    """Flip ``flips`` single bits at seeded positions."""
    out = bytearray(data)
    for _ in range(flips):
        pos = rng.randrange(len(out))
        out[pos] ^= 1 << rng.randrange(8)
    return bytes(out)


def corrupt_bytes(data: bytes, plan: FaultPlan) -> bytes:
    """Apply ``plan``'s byte-level faults (truncation first, then
    flips)."""
    if plan.truncate_fraction is not None:
        data = truncate(data, fraction=plan.truncate_fraction)
    if plan.bitflips and data:
        data = bitflip(data, plan.rng("bytes"), flips=plan.bitflips)
    return data
