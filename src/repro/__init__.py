"""CYPRESS reproduction: static+dynamic MPI communication trace compression.

Reproduces Zhai et al., "CYPRESS: Combining Static and Dynamic Analysis
for Top-Down Communication Trace Compression", SC 2014.

Quickstart::

    from repro import run_cypress, get_workload

    w = get_workload("leslie3d")
    run = run_cypress(w.source, nprocs=32, defines=w.defines(32, 1.0))
    print(run.trace_bytes(), "bytes compressed")
    events = run.replay(rank=0)           # exact original sequence
"""

from repro.core import (
    CypressConfig,
    CypressRun,
    IntraProcessCompressor,
    MergedCTT,
    decompress_all,
    decompress_merged_rank,
    decompress_rank,
    merge_all,
    run_cypress,
)
from repro.driver import compile_minimpi, run_compiled, run_source
from repro.mpisim import NetworkModel, RecordingSink, Runtime
from repro.replay import LogGPParams, SimMPI, fit_loggp, predict
from repro.workloads import get as get_workload

__version__ = "1.0.0"

__all__ = [
    "CypressConfig",
    "CypressRun",
    "IntraProcessCompressor",
    "MergedCTT",
    "decompress_all",
    "decompress_merged_rank",
    "decompress_rank",
    "merge_all",
    "run_cypress",
    "compile_minimpi",
    "run_compiled",
    "run_source",
    "NetworkModel",
    "RecordingSink",
    "Runtime",
    "LogGPParams",
    "SimMPI",
    "fit_loggp",
    "predict",
    "get_workload",
    "__version__",
]
