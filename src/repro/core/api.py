"""High-level CYPRESS pipeline: compile → trace → compress → merge → save.

The one-call entry points the examples and benchmarks use::

    run = run_cypress(source, nprocs=64, defines={"steps": 20})
    merged = run.merge()
    nbytes = run.save("trace.cyp", gzip=True)
    events = run.replay(rank=0)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.driver import run_compiled
from repro.mpisim.netmodel import NetworkModel
from repro.mpisim.pmpi import MultiSink, TimingSink, TraceSink
from repro.mpisim.runtime import RunResult
from repro.static.instrument import CompiledProgram, compile_minimpi

from . import serialize
from .decompress import ReplayEvent, decompress_merged_rank, decompress_rank
from .inter import MergedCTT, merge_all
from .intra import CypressConfig, IntraProcessCompressor


@dataclass
class CypressRun:
    """Everything produced by one traced execution."""

    compiled: CompiledProgram
    nprocs: int
    compressor: IntraProcessCompressor
    run_result: RunResult
    intra_seconds: float | None = None  # compression CPU time (if measured)
    _merged: MergedCTT | None = field(default=None, repr=False)

    def merge(
        self, schedule: str = "tree", workers: int | str | None = None
    ) -> MergedCTT:
        """Inter-process merge (cached).  ``workers`` > 1 (or ``"auto"``)
        runs the reduction tree on a process pool for large rank counts."""
        if self._merged is None:
            ctts = [self.compressor.ctt(r) for r in range(self.nprocs)]
            self._merged = merge_all(ctts, schedule=schedule, workers=workers)
        return self._merged

    def trace_bytes(self, gzip: bool = False) -> int:
        return len(serialize.dumps(self.merge(), gzip=gzip))

    def save(self, path: str, gzip: bool = False) -> int:
        return serialize.save(self.merge(), path, gzip=gzip)

    def replay(self, rank: int, merged: bool = True) -> list[ReplayEvent]:
        if merged:
            return decompress_merged_rank(self.merge(), rank)
        return decompress_rank(self.compressor.ctt(rank))


def run_cypress(
    source: str | CompiledProgram,
    nprocs: int,
    defines: dict[str, int] | None = None,
    config: CypressConfig | None = None,
    measure_overhead: bool = False,
    extra_sinks: list[TraceSink] | None = None,
    network: NetworkModel | None = None,
) -> CypressRun:
    """Compile (if needed) and execute a MiniMPI program with the CYPRESS
    tracer attached; returns the per-rank compressed traces.

    ``measure_overhead=True`` wraps the compressor in a
    :class:`~repro.mpisim.pmpi.TimingSink` so ``intra_seconds`` reports the
    CPU time spent compressing (Fig. 16's numerator).
    """
    compiled = (
        source if isinstance(source, CompiledProgram) else compile_minimpi(source)
    )
    if compiled.static is None:
        raise ValueError("program must be compiled with cypress=True")
    compressor = IntraProcessCompressor(compiled.cst, config=config)
    sink: TraceSink = compressor
    timing: TimingSink | None = None
    if measure_overhead:
        timing = TimingSink(compressor)
        sink = timing
    if extra_sinks:
        sink = MultiSink([sink, *extra_sinks])
    result = run_compiled(
        compiled, nprocs, defines=defines, tracer=sink, network=network
    )
    return CypressRun(
        compiled=compiled,
        nprocs=nprocs,
        compressor=compressor,
        run_result=result,
        intra_seconds=timing.elapsed if timing is not None else None,
    )
