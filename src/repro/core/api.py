"""High-level CYPRESS pipeline: compile → trace → compress → merge → save.

The one-call entry points the examples and benchmarks use::

    run = run_cypress(source, nprocs=64, defines={"steps": 20})
    merged = run.merge()
    nbytes = run.save("trace.cyp", gzip=True)
    events = run.replay(rank=0)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import time

from repro import obs
from repro.driver import run_compiled
from repro.mpisim.netmodel import NetworkModel
from repro.mpisim.pmpi import MultiSink, StreamCaptureSink, TimingSink, TraceSink
from repro.mpisim.runtime import RunResult
from repro.static.instrument import CompiledProgram, compile_minimpi

from . import serialize
from .decompress import ReplayEvent, decompress_merged_rank, decompress_rank
from .errors import MergeError
from .inter import MergedCTT, merge_all
from .intra import CypressConfig, IntraProcessCompressor, compress_streams
from .quarantine import QuarantineReport


@dataclass
class CypressRun:
    """Everything produced by one traced execution."""

    compiled: CompiledProgram
    nprocs: int
    compressor: IntraProcessCompressor
    run_result: RunResult
    intra_seconds: float | None = None  # compression CPU time (if measured)
    # Captured marker/event streams when the run used deferred
    # compression (``compress_workers=``); lets ``compress()`` redo the
    # compression with a different worker count.
    capture: StreamCaptureSink | None = field(default=None, repr=False)
    _merged: MergedCTT | None = field(default=None, repr=False)

    @property
    def quarantine(self) -> QuarantineReport:
        """Ranks excluded from compression (docs/INTERNALS.md §7).
        Empty on a healthy run."""
        return self.compressor.quarantine

    def compress(
        self,
        workers: int | str | None = None,
        *,
        strict: bool = False,
        retries: int = 1,
        task_timeout: float | None = None,
        fault_plan=None,
        transport: str = "auto",
        session=None,
    ) -> IntraProcessCompressor:
        """(Re-)compress the captured streams, optionally sharding ranks
        over ``workers`` processes — byte-identical to serial on every
        ``transport`` (``"shm"``, ``"pickle"``, or ``"auto"``).  Only
        available when the run traced with ``compress_workers=`` (the
        capture is kept); replaces ``compressor`` and drops any cached
        merge.

        Repeated calls are cheap on the shm transport: they reuse the
        process-wide warm pool for this CST (or an explicit
        ``session=`` :class:`~repro.core.intra.ShmCompressSession`), so
        only the first call pays fork + ring setup."""
        if self.capture is None:
            raise ValueError(
                "no captured streams: run with compress_workers= to defer "
                "compression"
            )
        self.compressor = compress_streams(
            self.compiled.cst,
            self.capture.streams,
            config=self.compressor.config,
            workers=workers,
            strict=strict,
            retries=retries,
            task_timeout=task_timeout,
            fault_plan=fault_plan,
            transport=transport,
            session=session,
            nranks=self.nprocs,
        )
        self._merged = None
        return self.compressor

    def merge(
        self,
        schedule: str = "tree",
        workers: int | str | None = None,
        *,
        retries: int = 1,
        task_timeout: float | None = None,
    ) -> MergedCTT:
        """Inter-process merge (cached).  ``workers`` > 1 (or ``"auto"``)
        runs the reduction tree on a process pool for large rank counts.
        Quarantined ranks are left out — the merge covers the healthy
        survivors (their bytes are unaffected by the victims).

        Under a memory budget the compressor has already folded completed
        ranks into a partial merge; finishing that merge is the only
        valid path (folded ranks no longer have a per-rank CTT), and its
        bytes are identical to the unbudgeted ``merge_all``."""
        if self._merged is None and self.compressor.has_partial_merge():
            self._merged = self.compressor.merged(nranks=self.nprocs)
        if self._merged is None:
            bad = self.quarantine.rank_set()
            ctts = [
                self.compressor.ctt(r)
                for r in range(self.nprocs)
                if r not in bad
            ]
            if not ctts:
                raise MergeError(
                    "every rank was quarantined — nothing to merge "
                    f"({self.quarantine.summary()})"
                )
            self._merged = merge_all(
                ctts, schedule=schedule, workers=workers,
                retries=retries, task_timeout=task_timeout,
                nranks=self.nprocs,
            )
        return self._merged

    def trace_bytes(self, gzip: bool = False) -> int:
        return len(serialize.dumps(self.merge(), gzip=gzip))

    def save(self, path: str, gzip: bool = False) -> int:
        return serialize.save(self.merge(), path, gzip=gzip)

    def replay(self, rank: int, merged: bool = True) -> list[ReplayEvent]:
        """Reconstruct ``rank``'s event sequence.  A quarantined rank has
        no compressed form, so it replays from its retained raw capture
        instead (exact events, recorded rather than aggregated timing)."""
        item = self.quarantine.get(rank)
        if item is not None:
            if item.raw_stream is None:
                raise MergeError(
                    f"rank {rank} was quarantined ({item.error}) and its "
                    "raw stream was not retained"
                )
            return _replay_raw(item.raw_events())
        if merged:
            return decompress_merged_rank(self.merge(), rank)
        return decompress_rank(self.compressor.ctt(rank))


def _replay_raw(events) -> list[ReplayEvent]:
    """Raw-capture fallback replay for quarantined ranks: each traced
    CommEvent maps 1:1 to a ReplayEvent (its own duration and gap stand
    in for the group statistics a compressed replay would carry)."""
    out: list[ReplayEvent] = []
    prev_end = 0.0
    for ev in events:
        out.append(
            ReplayEvent(
                op=ev.op, peer=ev.peer, peer2=ev.peer2,
                tag=ev.tag, tag2=ev.tag2,
                nbytes=ev.nbytes, nbytes2=ev.nbytes2,
                comm=ev.comm, root=ev.root, wildcard=ev.wildcard,
                req_gids=tuple(ev.req_gids),
                mean_duration=ev.duration,
                mean_gap=max(0.0, ev.time_start - prev_end),
                result_comm=ev.result_comm,
            )
        )
        prev_end = ev.time_start + ev.duration
    return out


def run_cypress(
    source: str | CompiledProgram,
    nprocs: int,
    defines: dict[str, int] | None = None,
    config: CypressConfig | None = None,
    measure_overhead: bool = False,
    extra_sinks: list[TraceSink] | None = None,
    network: NetworkModel | None = None,
    compress_workers: int | str | None = None,
    *,
    strict: bool = False,
    retries: int = 1,
    task_timeout: float | None = None,
    fault_plan=None,
    transport: str = "auto",
    session=None,
) -> CypressRun:
    """Compile (if needed) and execute a MiniMPI program with the CYPRESS
    tracer attached; returns the per-rank compressed traces.

    ``measure_overhead=True`` wraps the compressor in a
    :class:`~repro.mpisim.pmpi.TimingSink` so ``intra_seconds`` reports the
    CPU time spent compressing (Fig. 16's numerator).

    ``compress_workers`` switches to *deferred* compression: the run is
    traced into a :class:`~repro.mpisim.pmpi.StreamCaptureSink` and the
    captured per-rank streams are compressed afterwards, sharded over
    that many worker processes (``"auto"`` = all cores).  The result is
    byte-identical to inline compression; with ``measure_overhead`` the
    deferred compression wall time is reported as ``intra_seconds``.
    ``transport`` picks the parallel hand-off (``"shm"`` ring buffers /
    ``"pickle"`` fork+pipe / ``"auto"``); see
    :func:`~repro.core.intra.compress_streams`.  On the shm transport
    the compression runs on a warm pool reused across calls in this
    process (``session=`` supplies an explicit
    :class:`~repro.core.intra.ShmCompressSession` instead).

    Fault tolerance (docs/INTERNALS.md §7): in the default lenient mode
    (``strict=False``) a rank whose captured stream mismatches the CST
    is quarantined instead of aborting the run — inspect
    ``run.quarantine``.  ``retries``/``task_timeout`` govern worker-pool
    recovery for sharded compression.  ``fault_plan`` injects seeded
    faults (stream corruption and worker kill/hang/raise) for tests and
    the CI fault-smoke job; stream corruption needs captured streams, so
    a plan with ``corrupt_ranks`` forces deferred compression even when
    ``compress_workers`` is unset.
    """
    if fault_plan is not None and fault_plan.corrupt_ranks and (
        compress_workers is None
    ):
        compress_workers = 1  # corruption applies to captured streams
    registry = obs.active()
    compiled = (
        source if isinstance(source, CompiledProgram) else compile_minimpi(source)
    )
    if compiled.static is None:
        raise ValueError("program must be compiled with cypress=True")
    capture: StreamCaptureSink | None = None
    timing: TimingSink | None = None
    if compress_workers is not None:
        capture = StreamCaptureSink()
        sink: TraceSink = capture
    else:
        compressor = IntraProcessCompressor(compiled.cst, config=config)
        sink = compressor
        if measure_overhead or registry is not None:
            # With observability on, the inline compression time becomes
            # the "intra.compress" stage attribution; TimingSink's
            # per-callback clock reads are part of the metrics-on cost
            # of *live* tracing (deferred ingestion stays untouched —
            # the bench overhead guard measures that path).
            timing = TimingSink(compressor)
            sink = timing
    if extra_sinks:
        sink = MultiSink([sink, *extra_sinks])
    t_run = time.perf_counter()
    with obs.span("trace.run"):
        result = run_compiled(
            compiled, nprocs, defines=defines, tracer=sink, network=network
        )
    run_seconds = time.perf_counter() - t_run
    intra_seconds = (
        timing.elapsed if timing is not None and measure_overhead else None
    )
    if capture is not None:
        streams = capture.streams
        if fault_plan is not None and fault_plan.corrupt_ranks:
            from repro.faults import corrupt_streams

            streams = corrupt_streams(streams, fault_plan)
        t0 = time.perf_counter()
        with obs.span("intra.compress"):
            compressor = compress_streams(
                compiled.cst, streams, config=config,
                workers=compress_workers,
                strict=strict,
                retries=retries,
                task_timeout=task_timeout,
                fault_plan=fault_plan,
                transport=transport,
                session=session,
                nranks=nprocs,
            )
        if measure_overhead:
            intra_seconds = time.perf_counter() - t0
    if registry is not None:
        if timing is not None:
            registry.attribute_span("intra.compress", timing.elapsed)
        compressor.publish_metrics(registry)
        registry.counter_add("trace.total_events", result.total_events)
        if run_seconds > 0:
            registry.gauge_set(
                "trace.events_per_s", result.total_events / run_seconds
            )
    return CypressRun(
        compiled=compiled,
        nprocs=nprocs,
        compressor=compressor,
        run_result=result,
        intra_seconds=intra_seconds,
        capture=capture,
    )
