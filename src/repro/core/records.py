"""Compressed communication records stored at CTT leaf vertices.

A :class:`CompressedRecord` is one distinct parameter set observed at a
leaf, together with

* the set of *occurrence indices* (which visits of this leaf used these
  parameters) as a stride-compressed :class:`IntSequence`;
* timing statistics for the call duration; and
* timing statistics for the *pre-gap* — the computation time between the
  end of the previous MPI event on the rank and the start of this one.
  The pre-gap is what the SIM-MPI replay engine uses as the sequential
  computation time between communication operations (paper §V).

The record key contains every parameter except time (paper §IV-A), with
peers in relative encoding and raw request handles replaced by the GIDs of
the vertices that created them (paper Fig. 12).

Records are ``__slots__`` classes: one is touched per MPI event on the
tracer's hot path, and ``add_occurrence`` inlines the Welford update for
the default mean/std timing mode so the common repeated-event case costs
one occurrence append plus a handful of float ops — no per-event method
dispatch into :class:`TimeStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .sequences import IntSequence
from .timing import MEANSTD, TimeStats

# key layout: (op, peer_enc, peer2_enc, tag, tag2, nbytes, nbytes2,
#              comm, root, wildcard, req_gids, result_comm)
RecordKey = tuple


@dataclass(slots=True)
class CompressedRecord:
    key: RecordKey
    occurrences: IntSequence = field(default_factory=IntSequence)
    duration: TimeStats = None  # type: ignore[assignment]
    pre_gap: TimeStats = None  # type: ignore[assignment]
    pending: bool = False  # wildcard receive awaiting source resolution

    def __post_init__(self) -> None:
        if self.duration is None:
            self.duration = TimeStats(mode=MEANSTD)
        if self.pre_gap is None:
            self.pre_gap = TimeStats(mode=MEANSTD)

    @property
    def count(self) -> int:
        return len(self.occurrences)

    @property
    def op(self) -> str:
        return self.key[0]

    def add_occurrence(self, index: int, duration_us: float, gap_us: float) -> None:
        # Inlined IntSequence.append fast cases (extend / absorb the last
        # stride term) — occurrence indices are near-monotone, so these
        # cover almost every event; the repair path falls back to
        # append(), which implements the identical semantics.
        occ = self.occurrences
        terms = occ.terms
        if terms:
            start, count, stride = terms[-1]
            if count == 1:
                terms[-1] = (start, 2, index - start)
                occ.length += 1
            elif index == start + count * stride:
                terms[-1] = (start, count + 1, stride)
                occ.length += 1
            else:
                occ.append(index)
        else:
            occ.append(index)
        # Inlined TimeStats.add for the meanstd mode (the default):
        # identical float operations in identical order, without two
        # method calls per event.  Histogram mode falls back to add().
        stats = self.duration
        if stats.bins is None:
            stats.count = n = stats.count + 1
            delta = duration_us - stats.mean
            stats.mean += delta / n
            stats.m2 += delta * (duration_us - stats.mean)
            if duration_us < stats.minimum:
                stats.minimum = duration_us
            if duration_us > stats.maximum:
                stats.maximum = duration_us
        else:
            stats.add(duration_us)
        stats = self.pre_gap
        if stats.bins is None:
            stats.count = n = stats.count + 1
            delta = gap_us - stats.mean
            stats.mean += delta / n
            stats.m2 += delta * (gap_us - stats.mean)
            if gap_us < stats.minimum:
                stats.minimum = gap_us
            if gap_us > stats.maximum:
                stats.maximum = gap_us
        else:
            stats.add(gap_us)

    def add_occurrences(self, start_visit: int, durations, gaps) -> None:
        """Fold a run of ``len(durations)`` consecutive occurrences
        (visit indices ``start_visit, start_visit+1, ...``) in one call.

        Bit-identical to calling :meth:`add_occurrence` once per element
        in order: occurrence, duration and pre-gap state are disjoint, so
        committing them as three blocks cannot reorder any float op
        within a stats object, and each block replays the exact per-event
        recurrence.  The occurrence block collapses to O(1) once the last
        stride term reaches the steady stride-1 state; the timing blocks
        run the same sequential Welford updates on hoisted locals."""
        n = len(durations)
        if n == 0:
            return
        if len(gaps) != n:
            raise ValueError("durations and gaps length mismatch")
        occ = self.occurrences
        terms = occ.terms
        index = start_visit
        end = start_visit + n
        # Per-index steps until the trailing term is a stride-1 run that
        # the next consecutive index extends; then the remaining indices
        # all take the `index == start + count * stride` branch and the
        # whole tail is one term rewrite.
        while index < end:
            if terms:
                start, count, stride = terms[-1]
                if count == 1:
                    terms[-1] = (start, 2, index - start)
                    occ.length += 1
                elif index == start + count * stride:
                    if stride == 1:
                        left = end - index
                        terms[-1] = (start, count + left, 1)
                        occ.length += left
                        index = end
                        break
                    terms[-1] = (start, count + 1, stride)
                    occ.length += 1
                else:
                    occ.append(index)
            else:
                occ.append(index)
            index += 1
        stats = self.duration
        if stats.bins is None:
            cnt = stats.count
            mean = stats.mean
            m2 = stats.m2
            minimum = stats.minimum
            maximum = stats.maximum
            for x in durations:
                cnt += 1
                delta = x - mean
                mean += delta / cnt
                m2 += delta * (x - mean)
                if x < minimum:
                    minimum = x
                if x > maximum:
                    maximum = x
            stats.count = cnt
            stats.mean = mean
            stats.m2 = m2
            stats.minimum = minimum
            stats.maximum = maximum
        else:
            for x in durations:
                stats.add(x)
        stats = self.pre_gap
        if stats.bins is None:
            cnt = stats.count
            mean = stats.mean
            m2 = stats.m2
            minimum = stats.minimum
            maximum = stats.maximum
            for g in gaps:
                cnt += 1
                delta = g - mean
                mean += delta / cnt
                m2 += delta * (g - mean)
                if g < minimum:
                    minimum = g
                if g > maximum:
                    maximum = g
            stats.count = cnt
            stats.mean = mean
            stats.m2 = m2
            stats.minimum = minimum
            stats.maximum = maximum
        else:
            for g in gaps:
                stats.add(g)

    def merge_from(self, other: "CompressedRecord") -> None:
        """Fold another record with the same key into this one (intra-rank
        deferred-wildcard resolution path).  Occurrence indices are merged
        in sorted order — a late-resolving wildcard may carry an *earlier*
        visit index than occurrences already merged, and replay cursors
        require monotone sequences."""
        assert self.key == other.key
        mine = self.occurrences.to_list()
        theirs = other.occurrences.to_list()
        if not mine or not theirs or mine[-1] < theirs[0]:
            self.occurrences.extend(theirs)
        else:
            merged = sorted(mine + theirs)
            self.occurrences = IntSequence.from_values(merged)
        self.duration.merge(other.duration)
        self.pre_gap.merge(other.pre_gap)

    def payload_equal(self, other: "CompressedRecord") -> bool:
        """Equality ignoring timing — the inter-process grouping test."""
        return self.key == other.key and self.occurrences == other.occurrences

    def copy(self) -> "CompressedRecord":
        rec = CompressedRecord(
            key=self.key,
            occurrences=IntSequence(terms=list(self.occurrences.terms),
                                    length=self.occurrences.length),
            duration=self.duration.copy(),
            pre_gap=self.pre_gap.copy(),
            pending=self.pending,
        )
        return rec

    def approx_bytes(self) -> int:
        # Serialized estimate (container bytes):
        # op string + numeric params + sequences + two stat blocks
        key_bytes = len(self.key[0]) + 6 * (len(self.key) - 1)
        gid_bytes = 4 * len(self.key[10]) if len(self.key) > 10 else 0
        return (
            key_bytes
            + gid_bytes
            + self.occurrences.approx_bytes()
            + self.duration.approx_bytes()
            + self.pre_gap.approx_bytes()
        )

    def live_bytes(self) -> int:
        """Estimated live in-RAM footprint: the record, key tuple, and
        stats as boxed CPython objects rather than packed varints.  The
        key tuple is shared with the leaf's ``record_index``, so it is
        charged once, here."""
        # record object + key tuple (12 slots + op string + gid tuple)
        # + two TimeStats + occurrence terms as boxed 3-tuples
        return (
            200
            + 8 * len(self.key)
            + 3 * self.occurrences.approx_bytes()
            + 2 * 144
        )


def make_key(
    op: str,
    peer_enc,
    peer2_enc,
    tag: int,
    tag2: int,
    nbytes: int,
    nbytes2: int,
    comm: int,
    root: int,
    wildcard: bool,
    req_gids: tuple[int, ...],
    result_comm: int = -1,
) -> RecordKey:
    return (
        op, peer_enc, peer2_enc, tag, tag2, nbytes, nbytes2,
        comm, root, wildcard, req_gids, result_comm,
    )
