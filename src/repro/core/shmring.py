"""Single-producer / single-consumer byte ring over shared memory.

The parallel transport gives every pool worker one :class:`ShmRing`:
the parent writes packed stream bytes in, the worker reads them out.
The ring is a plain byte stream — framing lives one layer up (the job
grammar in :mod:`repro.core.respool`) — so the only invariants are the
classic SPSC ones:

* ``head`` (bytes ever written) is advanced only by the writer, *after*
  the payload bytes are in place;
* ``tail`` (bytes ever read) is advanced only by the reader, *after*
  the bytes are copied out;
* both are monotonically increasing ``uint64`` counters, so
  ``head - tail`` is the number of unread bytes and ``capacity -
  (head - tail)`` the free space — no modular ambiguity between full
  and empty.

Each counter lives alone in its own 64-byte header slot (no false
sharing), followed by a writer-closed flag.  Physical positions are
``counter % capacity``; a write or read that crosses the end of the
buffer is two ``memoryview`` copies.

Blocking calls poll with a short sleep — the consumers here move
megabyte-scale payloads, so sub-millisecond wakeup latency is noise,
and a pure-userspace wait keeps the ring free of cross-process locks
(one fewer thing a dying worker can leave in a bad state).

Backpressure falls out of the sizes: a full ring makes ``write`` block
(or ``try_write`` return 0), so a slow worker stalls only its own
feed; an empty ring makes ``read_exact`` block until the parent
catches up.

Processes share the ring by **fork inheritance**: the parent creates
the :class:`~multiprocessing.shared_memory.SharedMemory` segment and
forked children use the inherited object directly — no attach-by-name,
so only the parent is registered for cleanup and ``close()`` +
``unlink()`` in the parent is the entire lifecycle.
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory

_U64 = struct.Struct("<Q")

_HEAD_OFF = 0  # writer-owned: total bytes written
_TAIL_OFF = 64  # reader-owned: total bytes read
_CLOSED_OFF = 128  # writer-owned: 1 after close_write()
HEADER_SIZE = 192

#: Poll interval for blocking waits (seconds).
_POLL = 0.0002

#: After ``_IDLE_AFTER`` seconds with no data, a blocking read backs its
#: poll interval off exponentially up to this ceiling.  Keeps a parked
#: warm-pool worker near-free (≤200 wakeups/s instead of 5000) while
#: active transfers — whose stalls last well under ``_IDLE_AFTER`` —
#: always poll at full rate.
_POLL_IDLE_MAX = 0.005
_IDLE_AFTER = 0.05


class RingClosed(Exception):
    """The writer closed the ring and fewer bytes than requested remain."""


class RingTimeout(Exception):
    """A blocking ring operation exceeded its timeout."""


class ShmRing:
    """One SPSC byte ring in a shared-memory segment."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._shm = shared_memory.SharedMemory(
            create=True, size=HEADER_SIZE + capacity
        )
        self._buf = self._shm.buf
        self._data = self._buf[HEADER_SIZE:HEADER_SIZE + capacity]
        _U64.pack_into(self._buf, _HEAD_OFF, 0)
        _U64.pack_into(self._buf, _TAIL_OFF, 0)
        _U64.pack_into(self._buf, _CLOSED_OFF, 0)

    # -- counters --------------------------------------------------------

    @property
    def head(self) -> int:
        return _U64.unpack_from(self._buf, _HEAD_OFF)[0]

    @property
    def tail(self) -> int:
        return _U64.unpack_from(self._buf, _TAIL_OFF)[0]

    @property
    def closed(self) -> bool:
        return self._buf[_CLOSED_OFF] != 0

    def pending(self) -> int:
        """Unread bytes currently in the ring."""
        return self.head - self.tail

    def free(self) -> int:
        """Writable bytes currently available."""
        return self.capacity - (self.head - self.tail)

    # -- writer side -----------------------------------------------------

    def try_write(self, data, offset: int = 0) -> int:
        """Copy as much of ``data[offset:]`` as fits; return bytes
        written (possibly 0).  Never blocks."""
        head = self.head
        free = self.capacity - (head - self.tail)
        n = min(free, len(data) - offset)
        if n <= 0:
            return 0
        src = memoryview(data)[offset:offset + n]
        pos = head % self.capacity
        first = min(n, self.capacity - pos)
        self._data[pos:pos + first] = src[:first]
        if first < n:
            self._data[:n - first] = src[first:]
        # Publish after the payload is in place (SPSC ordering).
        _U64.pack_into(self._buf, _HEAD_OFF, head + n)
        return n

    def write(self, data, timeout: float | None = None) -> None:
        """Write all of ``data``, blocking while the ring is full."""
        offset = 0
        deadline = time.monotonic() + timeout if timeout is not None else None
        while offset < len(data):
            wrote = self.try_write(data, offset)
            if wrote:
                offset += wrote
                continue
            if deadline is not None and time.monotonic() > deadline:
                raise RingTimeout(
                    f"ring write stalled ({len(data) - offset} bytes left)"
                )
            time.sleep(_POLL)

    def close_write(self) -> None:
        """Signal EOF: readers draining past ``head`` get RingClosed."""
        self._buf[_CLOSED_OFF] = 1

    # -- reader side -----------------------------------------------------

    def read_exact(self, n: int, timeout: float | None = None) -> bytes:
        """Read exactly ``n`` bytes, blocking until they arrive.

        Drains incrementally, consuming whatever is available each pass,
        so ``n`` may exceed the ring capacity — a payload bigger than the
        ring streams through it in pieces while the writer refills.
        (Waiting for all ``n`` bytes to be resident at once would
        deadlock against a blocked writer the moment a payload outgrew
        the ring.)

        Raises :class:`RingClosed` when the writer closed the ring with
        fewer than ``n`` bytes remaining, :class:`RingTimeout` on
        deadline."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        out = bytearray(n)
        got = 0
        delay = _POLL
        idle = 0.0
        while got < n:
            tail = self.tail
            avail = self.head - tail
            if avail == 0:
                if self.closed and self.head == tail:
                    raise RingClosed(
                        f"ring closed with {got} of {n} bytes read"
                    )
                if deadline is not None and time.monotonic() > deadline:
                    raise RingTimeout(
                        f"ring read stalled ({n - got} bytes wanted)"
                    )
                time.sleep(delay)
                idle += delay
                if idle >= _IDLE_AFTER:
                    delay = min(delay * 2, _POLL_IDLE_MAX)
                continue
            delay = _POLL
            idle = 0.0
            take = min(avail, n - got)
            pos = tail % self.capacity
            first = min(take, self.capacity - pos)
            out[got:got + first] = self._data[pos:pos + first]
            if first < take:
                out[got + first:got + take] = self._data[:take - first]
            # Free the space before looking for more (SPSC ordering).
            _U64.pack_into(self._buf, _TAIL_OFF, tail + take)
            got += take
        return bytes(out)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping (child-side teardown)."""
        self._data.release()
        self._buf = None
        self._data = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (parent-side, after close())."""
        self._shm.unlink()
