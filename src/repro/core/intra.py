"""Intra-process trace compression (paper §IV-A).

This is CYPRESS's on-the-fly compressor: a :class:`~repro.mpisim.pmpi.TraceSink`
that maintains, per rank, a CTT mirroring the static CST plus a cursor —
"the pointer *p* always points to the CTT vertex that is currently being
executed".  Structural markers move the cursor; each MPI event is compared
only against the last record(s) at its own leaf vertex (O(1) per event,
the paper's headline intra-process advantage).

Cursor mechanics
----------------

The cursor is a stack of frames (loop activations, branch-path entries).
Child lookup is *ordered with wrap-around*: every vertex keeps a search
position that advances left-to-right as its children execute and resets at
each loop iteration — this disambiguates multiple inlined copies of the
same function under one parent (same ``ast_id`` twice among siblings).

Structures that were pruned from this inlined copy (they contain no MPI
calls here, but the same source-level structure survived in another copy,
so markers are still emitted) push *null frames*: the markers are consumed
and ignored, and by the pruning invariant no MPI event can occur inside.

Recursion (pseudo loops, paper Fig. 8): re-entering an active pseudo-loop
frame starts a new iteration — frames pushed above it since the last entry
are saved aside and restored when the recursive call returns, linearising
the recursion tree into the approximate loop the paper describes.

Wildcard receives (paper §IV-A "Non-Deterministic Events"): a nonblocking
``MPI_Irecv(ANY_SOURCE)`` is cached as a *pending* record; compression is
delayed until the request completes and the actual source is known.

The fast path
-------------

The per-event budget is O(1), and the implementation spends it carefully
(docs/INTERNALS.md §5):

* cursor moves use the CTT's precomputed monomorphic dispatch tables
  (:meth:`CTTVertex.find_loop_child` / ``find_call_child`` /
  ``find_group``) — no closure allocation, no generic sibling scan;
* record keys are *interned* per leaf: the leaf caches the last event's
  parameter fields together with the key (and, for the default unbounded
  window, the record) they produced, so a repeated event — the
  overwhelmingly common case inside a loop — skips ``make_key``, both
  ``encode_peer`` calls and the ``record_index`` hash of a 12-tuple
  entirely and lands directly in ``CompressedRecord.add_occurrence``;
* batched entry points (:meth:`IntraProcessCompressor.on_events`,
  :meth:`IntraProcessCompressor.ingest_stream`) hoist the per-rank state
  and bound methods out of the event loop.

``CypressConfig(fastpath=False)`` disables the dispatch tables and the
key-interning cache, forcing the pre-optimization reference path (generic
predicate scan + fresh key per event); tests assert both paths produce
byte-identical serialized traces.

Parallel compression: per-rank states are fully independent, so captured
marker/event streams (:class:`~repro.mpisim.pmpi.StreamCaptureSink`) can
be compressed by :func:`compress_streams` on a multiprocessing pool —
rank shards compress concurrently, mirroring the inter-process merge
workers, with output guaranteed byte-identical to serial compression.
"""

from __future__ import annotations

import atexit
import os
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from itertools import islice

from repro import obs

from repro.mpisim.events import CommEvent
from repro.mpisim.pmpi import (
    OP_BRANCH_ENTER,
    OP_BRANCH_EXIT,
    OP_EVENT,
    OP_FINALIZE,
    OP_LOOP_ITER,
    OP_LOOP_POP,
    OP_LOOP_PUSH,
    OP_RECURSE_ENTER,
    OP_RECURSE_EXIT,
    OP_REQ_COMPLETE,
    TraceSink,
)
from repro.static.cst import CALL, LOOP, CSTNode

from . import packed
from .budget import (
    BudgetCounters,
    SpillStore,
    decode_rank_state,
    encode_rank_state,
)
from .ctt import CTT, CTTVertex
from .errors import MergeError, StreamMismatchError
from .quarantine import QuarantinedRank, QuarantineReport
from .ranks import encode_peer
from .records import CompressedRecord, make_key
from .respool import (
    DEFAULT_RING_CAPACITY,
    ShmPool,
    ShmPoolError,
    fork_available,
    run_tasks,
)
from .timing import MEANSTD, TimeStats

#: Backwards-compatible alias — the dynamic module's historical name for
#: a CST/stream mismatch.  New code catches
#: :class:`~repro.core.errors.StreamMismatchError` (or its
#: :class:`~repro.core.errors.CypressError` base).
CompressionError = StreamMismatchError


@dataclass(frozen=True)
class CypressConfig:
    """Tunables of the dynamic module (ablation switches).

    ``window`` controls leaf-record matching.  ``None`` (default) merges a
    new event into *any* existing record with the same key — exact because
    records carry stride-compressed occurrence-index sequences, and the
    right choice for parameter patterns that cycle (MG's per-level message
    sizes).  An integer reproduces the paper's bounded scan: the paper's
    own implementation compares only against the last record
    (``window=1``, §IV-A) and mentions larger sliding windows as the
    cost/effectiveness trade-off — the ablation bench sweeps this.

    ``fastpath=False`` disables the monomorphic dispatch tables and the
    per-leaf key-interning cache, running the generic reference path
    instead (same output bytes, used by the equivalence tests and the
    ingestion benchmarks).

    ``memory_budget_bytes`` arms the bounded-memory streaming mode
    (docs/INTERNALS.md §15): the compressor keeps its total live
    footprint (:meth:`IntraProcessCompressor.total_live_bytes`) under
    the budget by folding completed ranks into a partial merged tree and
    spilling cold rank states to crash-safe containers under
    ``spill_dir`` (a private temp dir when None).  Budgeted output is
    byte-identical to the unbudgeted pipeline; budgeted compression runs
    the serial path (eager sharded merging would reassociate the
    schedule-invariant stats fold).
    """

    window: int | None = None  # None = unbounded keyed merge
    timing_mode: str = MEANSTD  # 'meanstd' or 'hist'
    relative_ranks: bool = True  # relative peer encoding (paper §IV-B)
    fastpath: bool = True  # monomorphic dispatch + key interning
    memory_budget_bytes: int | None = None  # None = unbounded (no budget)
    spill_dir: str | None = None  # spill-container home (budget mode)


# Cursor frames are plain three-slot lists ``[kind, vertex, iters]`` —
# one is allocated per loop/branch entry on the hot path, and a list
# literal costs a fraction of a dataclass ``__init__`` call.  ``vertex``
# is None for null frames (structure pruned from this inlined copy).
_LOOP = 0
_BRANCH = 1
_F_KIND, _F_VERTEX, _F_ITERS = range(3)

# ---------------------------------------------------------------------------
# Iteration-replay plans (ingest_runs).
#
# A plan captures one fully-resolved loop-body iteration of a packed
# stream: the body's codes/marker byte spans (matched with two memcmps
# before any replay) plus one *slot* per item recording the resolution
# the generic walk computed — which CTT vertex dispatched, which record
# committed, which frames pushed/popped.  Replaying a slot re-applies
# exactly the state transitions of the generic walk without any lookup,
# and because slots carry the full cursor state, a replay can bail at
# any event slot (head bytes differ, request GIDs differ) and hand the
# failing item back to the generic walk with everything before it
# already committed.
#
# Slot tuples (index 0 is the kind):
#   (0, head, parent, sp, leaf, record)                 plain event
#   (1, head, parent, sp, leaf, record)                 nonblocking event
#   (2, head, parent, sp, leaf, record, nreqs, gids)    request-consuming
#   (3,)                                                loop iter
#   (4,)                                                branch exit
#   (5, parent, sp, child)                              loop push
#   (6, parent, sp, group, path_vertex)                 branch enter
#   (7,)                                                loop pop
#
# ``head`` is the record's leading bytes [0, EVENT_PARAMS_END) — op
# index plus the param window — so a head match proves the event
# re-resolves and re-keys identically.

_PLAN_CAP = 4  # plans kept per loop vertex (MRU)
_PLAN_FAIL_CAP = 8  # aborted recordings before plans are disabled
_PLAN_MAX_SLOTS = 4096  # recording size cap (items per body)
_PLAN_MAX_BATCH_EVENTS = 4096  # events committed per columnar batch

_M_ITER_SLOT = (3,)
_M_BEXIT_SLOT = (4,)
_M_POP_SLOT = (7,)
_M_NULL_BENTER_SLOT = (6, None, -1, None, None)

_MISSING = object()  # overlay sentinel: request untouched by this batch body


class _RunPlan:
    """One recorded loop-body iteration of a packed stream."""

    __slots__ = (
        "codes", "markers", "rep_codes", "rep_markers",
        "n_items", "n_events", "n_markers",
        "slots", "heads", "groups", "req_fx", "merged_of",
    )

    def __init__(self, codes: bytes, markers: bytes, slots: list, ast_id: int):
        self.codes = codes
        self.markers = markers
        # The byte pattern of "one more iteration of this body": the
        # loop-iter separator followed by the body again.  Counting
        # ``startswith`` matches of these spans finds how many upcoming
        # iterations a columnar batch may commit at once.
        self.rep_codes = bytes((OP_LOOP_ITER,)) + codes
        self.rep_markers = packed.MARKER_STRUCT.pack(ast_id, 0) + markers
        self.slots = slots
        self.n_items = len(slots)
        self.merged_of = None
        n_events = 0
        n_markers = 0
        heads: list[bytes] = []
        req_fx: list[tuple] = []
        by_leaf: dict = {}
        columnar = True
        for s in slots:
            k = s[0]
            if k <= 2:
                j = n_events
                n_events += 1
                heads.append(s[1])
                leaf = s[4]
                record = s[5]
                entry = by_leaf.get(leaf)
                if entry is None:
                    by_leaf[leaf] = (record, leaf, [j])
                elif entry[0] is record:
                    entry[2].append(j)
                else:
                    # The leaf commits to more than one record inside a
                    # body: its occurrence indices interleave across
                    # records, so the consecutive-visit bulk commit does
                    # not apply — single-body replay only.
                    columnar = False
                if k == 1:
                    req_fx.append((1, j, leaf))
                elif k == 2:
                    req_fx.append((2, j, s[6], s[7]))
            else:
                n_markers += 1
        self.n_events = n_events
        self.n_markers = n_markers
        self.heads = heads
        self.groups = (
            [(e[0], e[1], tuple(e[2])) for e in by_leaf.values()]
            if columnar and n_events
            else None
        )
        self.req_fx = req_fx or None


def _merge_plans(first: _RunPlan, second: _RunPlan, ast_id: int) -> _RunPlan:
    """Fuse two plans that alternate (A,B,A,B,... bodies — e.g. a branch
    taking different paths on even/odd iterations) into one period-2
    super-plan, which the columnar batch path can then repeat-match."""
    codes = first.codes + bytes((OP_LOOP_ITER,)) + second.codes
    markers = (
        first.markers
        + packed.MARKER_STRUCT.pack(ast_id, 0)
        + second.markers
    )
    plan = _RunPlan(
        codes, markers, first.slots + [_M_ITER_SLOT] + second.slots, ast_id
    )
    plan.merged_of = (first, second)
    return plan


@dataclass(slots=True)
class _RankState:
    ctt: CTT
    rank: int = 0
    stack: list[list] = field(default_factory=list)
    recursion_saved: list[list[list] | None] = field(default_factory=list)
    req_gid: dict[int, int] = field(default_factory=dict)
    # rid -> (leaf, record, event, index of record in leaf.records); the
    # stored index lets resolution find the record in O(1) instead of a
    # backward identity scan, and is kept current when a resolved record
    # merges away (see _request_complete).
    pending: dict[int, tuple[CTTVertex, CompressedRecord, CommEvent, int]] = field(
        default_factory=dict
    )
    last_event_end: float = 0.0

    def top_vertex(self) -> CTTVertex | None:
        if not self.stack:
            return self.ctt.root
        return self.stack[-1][_F_VERTEX]


def _state_live_bytes(st: _RankState) -> int:
    """Live footprint of one rank: the CTT plus the state-level maps the
    tree-level estimate cannot see (frame stack, recursion save-slots,
    request table, pending-wildcard entries — each pending entry pins a
    record, an event object and a frame tuple)."""
    total = st.ctt.live_bytes() + 96
    total += 88 * len(st.stack)
    for saved in st.recursion_saved:
        total += 32 + (88 * len(saved) if saved else 0)
    total += 120 * len(st.req_gid)
    total += 400 * len(st.pending)
    return total


class IntraProcessCompressor(TraceSink):
    """CYPRESS dynamic module, intra-process phase."""

    wants_markers = True

    def __init__(self, cst: CSTNode, config: CypressConfig | None = None) -> None:
        self.cst = cst
        self.config = config or CypressConfig()
        self._states: dict[int, _RankState] = {}
        # Ranks excluded by lenient stream compression (populated only
        # by compress_streams; empty for inline tracing).
        self.quarantine = QuarantineReport()
        # Hoisted config fields (the config is frozen) — one attribute
        # load instead of two on every event.
        self._window = self.config.window
        self._window_unbounded = self.config.window is None
        self._relative = self.config.relative_ranks
        self._timing_mode = self.config.timing_mode
        self._fastpath = self.config.fastpath
        # Monomorphic event ingestion: pick the variant once, so the hot
        # path carries no per-event mode branch.
        self._ingest = self._ingest_fast if self._fastpath else self._ingest_ref
        # Observability counters (docs/INTERNALS.md §6).  Always
        # maintained: each one is incremented only on a path that already
        # misses a cache (or defers a wildcard), so the fast path carries
        # no metrics cost, and totals to rate them against are derived
        # from CTT state (leaf_visits) in metrics_counters().
        self.m_mono_miss = 0  # dispatch-cache misses (dict/scan fallback)
        self.m_key_build = 0  # fresh record keys built (key-cache misses)
        self.m_stream_fallback = 0  # inline stream loop -> generic handler
        self.m_wildcard_deferred = 0  # wildcard receives queued pending
        self.m_wildcard_max_depth = 0  # peak pending-queue depth
        self.m_run_collapsed = 0  # events committed via adjacent-run bulk
        self.m_plan_replays = 0  # loop-body iteration-plan replays
        self.m_plan_bodies = 0  # loop bodies consumed by plan replays
        # Bounded-memory streaming mode (docs/INTERNALS.md §15).
        self._budget = self.config.memory_budget_bytes
        self.budget_counters = (
            BudgetCounters() if self._budget is not None else None
        )
        self._spill: SpillStore | None = None
        self._spilled: set[int] = set()  # ranks currently on disk
        self._partial = None  # incrementally-folded MergedCTT
        self._folded: set[int] = set()  # ranks absorbed into _partial
        self._sealed: set[int] = set()  # stream ended, fold-eligible
        self._fold_enabled = False
        self._fold_nranks: int | None = None
        self._fold_domain: list[int] | None = None
        self._fold_skip: set[int] = set()  # quarantined (never folds)
        self._touch_clock = 0
        self._touch: dict[int, int] = {}  # rank -> LRU stamp
        self._event_tick = 0
        # Event/record totals of folded+spilled ranks, so the derived
        # metrics stay exact after their CTT state leaves memory.
        self._archived_events = 0
        self._archived_records = 0

    # ------------------------------------------------------------------

    def state(self, rank: int) -> _RankState:
        st = self._states.get(rank)
        if st is None:
            if rank in self._folded:
                raise CompressionError(
                    f"rank {rank} was folded into the partial merged tree "
                    "(memory budget mode); per-rank state is gone — use "
                    "merged() / merged replay instead"
                )
            if rank in self._spilled:
                return self._reload_rank(rank)
            st = _RankState(ctt=CTT(self.cst, rank), rank=rank)
            self._states[rank] = st
        return st

    def ranks(self) -> list[int]:
        return sorted({*self._states, *self._spilled, *self._folded})

    def ctt(self, rank: int) -> CTT:
        return self.state(rank).ctt

    def approx_bytes(self, rank: int) -> int:
        """Per-rank *serialized* size estimate of the compressed trace —
        container bytes, not live memory (see :meth:`live_bytes` for the
        in-RAM footprint the budget mode tracks)."""
        return self.state(rank).ctt.serialized_bytes()

    def serialized_bytes(self, rank: int) -> int:
        """Alias of :meth:`approx_bytes` under its precise name."""
        return self.state(rank).ctt.serialized_bytes()

    def live_bytes(self, rank: int) -> int:
        """Estimated live in-RAM footprint of one rank's compression
        state: the CTT (transient caches included) plus the rank-state
        overheads (frame stack, pending wildcards, request table).
        Reloads the rank if it was spilled."""
        return _state_live_bytes(self.state(rank))

    def total_bytes(self) -> int:
        return sum(self.approx_bytes(r) for r in self._states)

    def total_live_bytes(self) -> int:
        """Live footprint of every in-memory rank (spilled ranks cost
        nothing — that is the point; they are not reloaded here)."""
        return sum(_state_live_bytes(st) for st in self._states.values())

    # ------------------------------------------------------------------
    # Observability (docs/INTERNALS.md §6).

    def metrics_counters(self) -> dict[str, int]:
        """Snapshot of the intra-process counters.  Totals are derived
        from CTT state rather than sampled on the hot path: every
        dispatched event increments exactly one leaf's ``leaf_visits``,
        so cache *hits* are ``events - misses`` at zero per-event cost."""
        events = self._archived_events
        records = self._archived_records
        for st in self._states.values():
            for v in st.ctt.vertices():
                events += v.leaf_visits
                if v.records is not None:
                    records += len(v.records)
        return {
            "intra.events": events,
            "intra.records": records,
            "intra.ranks": (
                len(self._states) + len(self._spilled) + len(self._folded)
            ),
            "intra.mono_cache_miss": self.m_mono_miss,
            "intra.key_builds": self.m_key_build,
            "intra.stream_fallback": self.m_stream_fallback,
            "intra.wildcard_deferred": self.m_wildcard_deferred,
            "intra.wildcard_max_depth": self.m_wildcard_max_depth,
            "intra.run_collapsed_events": self.m_run_collapsed,
            "intra.plan_replays": self.m_plan_replays,
            "intra.plan_replayed_bodies": self.m_plan_bodies,
        }

    def absorb_metrics_counters(self, counters: dict[str, int]) -> None:
        """Fold a worker shard's counter snapshot into this compressor
        (only the slow-path counters — the derived totals recompute from
        the absorbed CTTs)."""
        self.m_mono_miss += counters.get("intra.mono_cache_miss", 0)
        self.m_key_build += counters.get("intra.key_builds", 0)
        self.m_stream_fallback += counters.get("intra.stream_fallback", 0)
        self.m_run_collapsed += counters.get("intra.run_collapsed_events", 0)
        self.m_plan_replays += counters.get("intra.plan_replays", 0)
        self.m_plan_bodies += counters.get("intra.plan_replayed_bodies", 0)
        self.m_wildcard_deferred += counters.get("intra.wildcard_deferred", 0)
        depth = counters.get("intra.wildcard_max_depth", 0)
        if depth > self.m_wildcard_max_depth:
            self.m_wildcard_max_depth = depth

    def publish_metrics(self, registry) -> None:
        """Push counters plus derived hit-rate gauges into ``registry``."""
        counters = self.metrics_counters()
        events = counters["intra.events"]
        for name, value in counters.items():
            if name == "intra.wildcard_max_depth":
                registry.gauge_max(name, value)
            else:
                registry.counter_add(name, value)
        if events:
            registry.gauge_set(
                "intra.mono_cache_hit_rate",
                1.0 - counters["intra.mono_cache_miss"] / events,
            )
            registry.gauge_set(
                "intra.key_cache_hit_rate",
                1.0 - counters["intra.key_builds"] / events,
            )
        bc = self.budget_counters
        if bc is not None:
            for name, value in bc.as_metrics().items():
                if name in ("budget.live_bytes", "budget.peak_live_bytes"):
                    registry.gauge_max(name, value)
                else:
                    registry.counter_add(name, value)

    # ------------------------------------------------------------------
    # Bounded-memory streaming mode (docs/INTERNALS.md §15): incremental
    # fold of completed ranks into a partial merged tree + LRU spill of
    # cold rank states to crash-safe containers.  Off unless
    # ``config.memory_budget_bytes`` is set (or a caller arms the fold
    # explicitly); every method here is a no-op on the default path.

    def _ensure_spill(self) -> SpillStore:
        if self._spill is None:
            self._spill = SpillStore(self.config.spill_dir)
        return self._spill

    def _touch_rank(self, rank: int) -> None:
        self._touch_clock += 1
        self._touch[rank] = self._touch_clock

    def _archive_rank_counts(self, ctt: CTT, sign: int) -> None:
        """Move a rank's derived metric totals between the live tree and
        the archived tally as the tree leaves (+1) or re-enters (-1)
        memory, keeping ``metrics_counters`` exact throughout."""
        events = 0
        records = 0
        for v in ctt.vertices():
            events += v.leaf_visits
            if v.records is not None:
                records += len(v.records)
        self._archived_events += sign * events
        self._archived_records += sign * records

    def _reload_rank(self, rank: int) -> _RankState:
        """Bring a spilled rank back: decode the snapshot, discard the
        container, re-enter the live accounting.  The reloaded state is
        cursor-exact; only the warm-up caches (dispatch, key interning,
        run plans) start cold — same output bytes, slower first batch."""
        payload = self._ensure_spill().load(rank)
        st = decode_rank_state(
            payload,
            lambda r: _RankState(ctt=CTT(self.cst, r), rank=r),
            rebuild_index=self._window_unbounded,
        )
        self._states[rank] = st
        self._spilled.discard(rank)
        self._spill.discard(rank)
        self._archive_rank_counts(st.ctt, -1)
        bc = self.budget_counters
        if bc is not None:
            bc.reloads += 1
            bc.reload_bytes += len(payload)
        self._touch_rank(rank)
        return st

    def _spill_rank(self, rank: int) -> bool:
        """Evict one cold rank to disk.  Refused (returns False) when
        the rank holds unresolved wildcard receives — their pending
        records pin live event objects the resolution path needs."""
        st = self._states.get(rank)
        if st is None or st.pending:
            return False
        payload = encode_rank_state(st)
        nbytes = self._ensure_spill().spill(rank, payload)
        self._archive_rank_counts(st.ctt, +1)
        del self._states[rank]
        self._spilled.add(rank)
        bc = self.budget_counters
        if bc is not None:
            bc.spills += 1
            bc.spill_bytes += nbytes
        return True

    def _enforce_budget(self, active_rank: int | None = None) -> None:
        """Bring the live footprint back under the budget by spilling
        the coldest evictable ranks (never the one currently ingesting).
        Called from the batched entry points and the periodic event
        tick; one call is O(live tree), so the cadence is per batch, not
        per event."""
        budget = self._budget
        if budget is None:
            return
        bc = self.budget_counters
        total = self.total_live_bytes()
        if total > bc.peak_live_bytes:
            bc.peak_live_bytes = total
        if total > budget:
            touch = self._touch
            order = sorted(
                (r for r in self._states if r != active_rank),
                key=lambda r: touch.get(r, 0),
            )
            for rank in order:
                if total <= budget:
                    break
                st = self._states.get(rank)
                if st is None or st.pending:
                    continue
                freed = _state_live_bytes(st)
                if self._spill_rank(rank):
                    total -= freed
        bc.live_bytes = total

    def _budget_prologue(self, rank: int) -> None:
        """Per-batch budget bookkeeping: stamp the rank hot and make
        room for its growth by evicting colder ranks first."""
        self._touch_rank(rank)
        self._enforce_budget(rank)

    # -- incremental fold ----------------------------------------------

    def enable_incremental_fold(
        self,
        nranks: int | None = None,
        domain=None,
    ) -> None:
        """Arm the streaming merge: sealed ranks fold into a partial
        :class:`~repro.core.inter.MergedCTT` as soon as every preceding
        rank is folded (or permanently excluded), releasing their
        per-rank state while ingest continues.

        ``nranks`` is forwarded to the merge's damaged-delta repair
        (must match what an unbudgeted ``merge_all(..., nranks=...)``
        would get, or bytes diverge on *damaged* traces).  ``domain`` is
        the full rank set expected to stream; without it, folding
        happens only at :meth:`merged` time.
        """
        self._fold_enabled = True
        if nranks is not None:
            self._fold_nranks = nranks
        if domain is not None:
            self._fold_domain = sorted(domain)

    def seal_rank(self, rank: int) -> None:
        """Mark one rank's stream complete: its CTT is final and
        eligible for incremental folding.  No-op unless the fold is
        armed."""
        if not self._fold_enabled or rank in self._fold_skip:
            return
        bc = self.budget_counters
        if bc is not None:
            # Sample the high-water mark before the fold releases the
            # sealed rank — this is the peak the soak gate tracks.
            total = self.total_live_bytes()
            bc.live_bytes = total
            if total > bc.peak_live_bytes:
                bc.peak_live_bytes = total
        self._sealed.add(rank)
        self._try_fold()
        self._enforce_budget()

    def has_partial_merge(self) -> bool:
        """Whether any rank has been folded — callers must then use
        :meth:`merged` instead of per-rank ``ctt()`` + ``merge_all``."""
        return self._partial is not None or bool(
            self._fold_enabled and (self._sealed or self._folded)
        )

    def _try_fold(self) -> None:
        """Fold every fold-eligible rank, in ascending rank order.  A
        rank is eligible when sealed and every lower rank in the domain
        is already folded or permanently excluded — the ordering that
        makes the incremental fold byte-identical to ``merge_all``
        (see :meth:`~repro.core.inter.MergedCTT.fold_rank`)."""
        domain = self._fold_domain
        if domain is None:
            return
        for rank in domain:
            if rank in self._folded or rank in self._fold_skip:
                continue
            if rank not in self._sealed:
                break  # ascending-order barrier
            self._fold_rank(rank)

    def _fold_rank(self, rank: int) -> None:
        st = self.state(rank)  # reloads a spilled rank
        if st.pending:
            raise CompressionError(
                f"rank {rank}: cannot fold with {len(st.pending)} "
                "unresolved wildcard receive(s)"
            )
        from .inter import MergedCTT

        ctt = st.ctt
        self._archive_rank_counts(ctt, +1)
        if self._partial is None:
            self._partial = MergedCTT.from_rank(
                ctt, nranks=self._fold_nranks
            ).finalize()
        else:
            self._partial.fold_rank(ctt, nranks=self._fold_nranks)
        del self._states[rank]
        self._folded.add(rank)
        self._sealed.discard(rank)
        self._touch.pop(rank, None)
        bc = self.budget_counters
        if bc is not None:
            bc.folds += 1

    def merged(self, nranks: int | None = None, ranks=None):
        """Finalize the incremental fold and return the job-wide merged
        tree — byte-identical to ``merge_all([ctt(r) for r in ranks],
        nranks=...)`` on the unbudgeted pipeline.

        ``ranks`` restricts the merge (the server passes its healthy,
        non-quarantined set); default is every rank seen.  Remaining
        live or spilled ranks fold now, ascending."""
        if nranks is not None:
            self._fold_nranks = nranks
        self._fold_enabled = True
        if ranks is None:
            quarantined = {q.rank for q in self.quarantine}
            ranks = [r for r in self.ranks() if r not in quarantined]
        ranks = sorted(ranks)
        stray = self._folded.difference(ranks)
        if stray:
            raise MergeError(
                f"rank(s) {sorted(stray)} were already folded but are "
                "excluded from the requested merge — a fold cannot be "
                "undone"
            )
        for rank in ranks:
            if rank not in self._folded:
                self._fold_rank(rank)
        if self._partial is None:
            raise MergeError("no ranks to merge")
        self._enforce_budget()
        return self._partial

    def discard_rank(self, rank: int) -> None:
        """Drop every trace of a rank (quarantine path): live state,
        spill container, fold bookkeeping.  Folding of later ranks is
        unblocked by marking the rank permanently excluded."""
        st = self._states.pop(rank, None)
        if st is None and rank in self._spilled:
            # Its archived totals were added at spill time; the rank is
            # leaving for good, so take them back out.
            payload = None
            try:
                payload = self._ensure_spill().load(rank)
            except Exception:
                pass
            if payload is not None:
                reloaded = decode_rank_state(
                    payload,
                    lambda r: _RankState(ctt=CTT(self.cst, r), rank=r),
                    rebuild_index=False,
                )
                self._archive_rank_counts(reloaded.ctt, -1)
        if rank in self._spilled:
            self._spilled.discard(rank)
            self._ensure_spill().discard(rank)
        self._sealed.discard(rank)
        self._touch.pop(rank, None)
        if self._fold_enabled:
            self._fold_skip.add(rank)
            self._try_fold()

    def close_spill(self) -> None:
        """Delete every spill container (end of job)."""
        if self._spill is not None:
            self._spill.close()
            self._spill = None
            self._spilled.clear()

    # ------------------------------------------------------------------
    # Structural markers.  Public callbacks resolve the rank state once
    # and delegate to the _-prefixed internals the batched entry points
    # drive directly.

    def on_loop_push(self, rank: int, ast_id: int) -> None:
        self._loop_push(self.state(rank), ast_id)

    def _loop_push(self, st: _RankState, ast_id: int) -> list:
        stack = st.stack
        cur = stack[-1][_F_VERTEX] if stack else st.ctt.root
        frame = [_LOOP, None, 0]
        if cur is not None:
            if self._fastpath:
                found = cur.find_loop_child(ast_id, cur.search_pos)
            else:
                hit = cur.find_child(
                    lambda c: c.kind == LOOP and c.ast_id == ast_id, cur.search_pos
                )
                found = (hit[1], hit[0]) if hit is not None else None
            if found is not None:
                idx, child = found
                cur.search_pos = idx + 1
                child.search_pos = 0
                frame[_F_VERTEX] = child
        stack.append(frame)
        return frame

    def on_loop_iter(self, rank: int, ast_id: int) -> None:
        self._loop_iter(self.state(rank), ast_id)

    def _loop_iter(self, st: _RankState, ast_id: int) -> None:
        stack = st.stack
        if not stack or stack[-1][_F_KIND] != _LOOP:
            raise CompressionError(
                f"rank {st.rank}: loop iteration marker {ast_id} "
                "with no open loop"
            )
        frame = stack[-1]
        frame[_F_ITERS] += 1
        vertex = frame[_F_VERTEX]
        if vertex is not None:
            vertex.search_pos = 0

    def on_loop_pop(self, rank: int, ast_id: int) -> None:
        self._loop_pop(self.state(rank), ast_id)

    def _loop_pop(self, st: _RankState, ast_id: int) -> None:
        stack = st.stack
        if not stack or stack[-1][_F_KIND] != _LOOP:
            raise CompressionError(
                f"rank {st.rank}: loop exit marker {ast_id} with no open loop"
            )
        frame = stack.pop()
        vertex = frame[_F_VERTEX]
        if vertex is not None:
            vertex.loop_counts.append(frame[_F_ITERS])

    def on_branch_enter(self, rank: int, ast_id: int, path: int) -> None:
        self._branch_enter(self.state(rank), ast_id, path)

    def _branch_enter(self, st: _RankState, ast_id: int, path: int) -> None:
        stack = st.stack
        cur = stack[-1][_F_VERTEX] if stack else st.ctt.root
        frame = [_BRANCH, None, 0]
        if cur is not None:
            group = cur.find_group(ast_id, cur.search_pos)
            if group is not None:
                cur.search_pos = group.last_index + 1
                visit = group.visit_counter
                group.visit_counter = visit + 1
                path_vertex = group.paths.get(path)
                if path_vertex is not None:
                    # Inlined IntSequence.append fast cases (extend /
                    # absorb the last stride term) — identical semantics,
                    # the repair path falls back to append().
                    seq = path_vertex.visits
                    terms = seq.terms
                    if terms:
                        s0, c0, d0 = terms[-1]
                        if c0 == 1:
                            terms[-1] = (s0, 2, visit - s0)
                            seq.length += 1
                        elif visit == s0 + c0 * d0:
                            terms[-1] = (s0, c0 + 1, d0)
                            seq.length += 1
                        else:
                            seq.append(visit)
                    else:
                        seq.append(visit)
                    path_vertex.search_pos = 0
                    frame[_F_VERTEX] = path_vertex
        stack.append(frame)

    def on_branch_exit(self, rank: int, ast_id: int) -> None:
        self._branch_exit(self.state(rank), ast_id)

    def _branch_exit(self, st: _RankState, ast_id: int) -> None:
        stack = st.stack
        if not stack or stack[-1][_F_KIND] != _BRANCH:
            raise CompressionError(
                f"rank {st.rank}: branch exit marker {ast_id} "
                "with no open branch"
            )
        stack.pop()

    def on_recurse_enter(self, rank: int, ast_id: int) -> None:
        self._recurse_enter(self.state(rank), ast_id)

    def _recurse_enter(self, st: _RankState, ast_id: int) -> None:
        # Find an active pseudo-loop frame for this function.
        for i in range(len(st.stack) - 1, -1, -1):
            frame = st.stack[i]
            vertex = frame[_F_VERTEX]
            if (
                frame[_F_KIND] == _LOOP
                and vertex is not None
                and vertex.ast_id == ast_id
            ):
                # New iteration of the approximate loop: set aside the
                # frames opened since, restore them when this call returns.
                st.recursion_saved.append(st.stack[i + 1 :])
                del st.stack[i + 1 :]
                frame[_F_ITERS] += 1
                vertex.search_pos = 0
                return
        # Outermost entry: behaves like loop push + first iteration.
        frame = self._loop_push(st, ast_id)
        frame[_F_ITERS] = 1
        st.recursion_saved.append(None)

    def on_recurse_exit(self, rank: int, ast_id: int) -> None:
        self._recurse_exit(self.state(rank), ast_id)

    def _recurse_exit(self, st: _RankState, ast_id: int) -> None:
        if not st.recursion_saved:
            raise CompressionError(
                f"rank {st.rank}: recursion exit marker {ast_id} without entry"
            )
        saved = st.recursion_saved.pop()
        if saved is None:
            self._loop_pop(st, ast_id)
        else:
            st.stack.extend(saved)

    # ------------------------------------------------------------------
    # Communication events.

    def on_event(self, rank: int, ev: CommEvent) -> None:
        self._ingest(self.state(rank), ev)
        if self._budget is not None:
            # Inline-tracing budget tick: enforcement is O(live tree),
            # so it runs every 4096 events, not per event.
            self._event_tick += 1
            if not self._event_tick & 4095:
                self._budget_prologue(rank)

    def on_events(self, rank: int, events) -> None:
        """Batched ingestion: resolve the rank state and the ingest
        binding once for a run of consecutive events."""
        if self._budget is not None:
            self._budget_prologue(rank)
        st = self.state(rank)
        ingest = self._ingest
        for ev in events:
            ingest(st, ev)

    def _ingest_fast(self, st: _RankState, ev: CommEvent) -> None:
        """Fast-path event ingestion: monomorphic leaf dispatch plus the
        per-leaf key-interning cache.  ``self._ingest`` binds to this
        variant when ``config.fastpath`` (the default)."""
        stack = st.stack
        cur = stack[-1][_F_VERTEX] if stack else st.ctt.root
        if cur is None:
            raise CompressionError(
                f"rank {st.rank}: event {ev.op} inside a pruned structure"
            )
        op = ev.op
        if cur.mono_op is op:
            # Single-candidate dispatch cache hit: wrap-around over one
            # candidate always yields it, independent of search_pos.
            idx, leaf = cur.mono_pair
        else:
            self.m_mono_miss += 1
            lst = cur.call_children_by_op.get(op)
            if lst is None:
                raise CompressionError(
                    f"rank {st.rank}: no CST leaf for {op} under vertex "
                    f"gid={cur.gid} ({cur.kind})"
                )
            if len(lst) == 1:
                found = lst[0]
                cur.mono_op = op
                cur.mono_pair = found
            else:
                found = cur.find_call_child(op, cur.search_pos)
            idx, leaf = found
        cur.search_pos = idx + 1
        visit = leaf.leaf_visits
        leaf.leaf_visits = visit + 1

        if leaf.op_nonblocking:
            st.req_gid[ev.req] = leaf.gid
        reqs = ev.reqs
        if reqs:
            req_gids = self._consume_reqs(st, reqs)
        else:
            req_gids = ()

        start = ev.time_start
        last_end = st.last_event_end
        gap = start - last_end
        if gap < 0.0:
            gap = 0.0
        duration = ev.duration
        end = start + duration
        if end > last_end:
            st.last_event_end = end

        if ev.wildcard and op == "MPI_Irecv":
            self._ingest_pending(st, leaf, ev, visit, duration, gap)
            return

        # Key interning: if every key-relevant parameter matches the
        # leaf's last event, reuse the cached key — and for the
        # unbounded window, the cached record, skipping make_key, both
        # encode_peer calls and the record_index hash of a 12-tuple
        # entirely.  One tuple build plus one C-level tuple equality.
        # (``op`` needs no comparison: the leaf was dispatched by op.)
        params = (
            ev.peer,
            ev.nbytes,
            ev.tag,
            req_gids,
            ev.peer2,
            ev.tag2,
            ev.nbytes2,
            ev.comm,
            ev.root,
            ev.wildcard,
            ev.result_comm,
        )
        if params == leaf.last_params:
            record = leaf.last_record
            if record is not None:
                record.add_occurrence(visit, duration, gap)
                return
            key = leaf.last_key
        else:
            self.m_key_build += 1
            key = self._event_key(ev, st.rank, req_gids)
            leaf.last_params = params
            leaf.last_key = key
            leaf.last_record = None
            # The packed-window byte cache proves equality against the
            # *current* ``last_params`` tuple; params changed, so drop it.
            leaf.last_params_raw = None
        record = self._add_record(leaf, key, visit, duration, gap)
        if self._window_unbounded:
            # Valid only for the unbounded keyed merge: record_index
            # maps this key to this record permanently (entries are
            # never replaced), so the cache can shortcut to it.
            leaf.last_record = record

    def _ingest_ref(self, st: _RankState, ev: CommEvent) -> None:
        """Pre-optimization reference path (``config.fastpath=False``):
        generic predicate scan over the children, fresh key per event.
        Kept as the byte-identity oracle for the fast path."""
        stack = st.stack
        cur = stack[-1][_F_VERTEX] if stack else st.ctt.root
        rank = st.rank
        if cur is None:
            raise CompressionError(
                f"rank {rank}: event {ev.op} inside a pruned structure"
            )
        op = ev.op
        hit = cur.find_child(
            lambda c: c.kind == CALL and c.op == op, cur.search_pos
        )
        if hit is None:
            raise CompressionError(
                f"rank {rank}: no CST leaf for {op} under vertex "
                f"gid={cur.gid} ({cur.kind})"
            )
        leaf, idx = hit
        cur.search_pos = idx + 1
        visit = leaf.leaf_visits
        leaf.leaf_visits = visit + 1

        if leaf.op_nonblocking:
            st.req_gid[ev.req] = leaf.gid
        reqs = ev.reqs
        req_gids = self._consume_reqs(st, reqs) if reqs else ()

        start = ev.time_start
        gap = start - st.last_event_end
        if gap < 0.0:
            gap = 0.0
        duration = ev.duration
        end = start + duration
        if end > st.last_event_end:
            st.last_event_end = end

        if ev.wildcard and op == "MPI_Irecv":
            self._ingest_pending(st, leaf, ev, visit, duration, gap)
            return

        self.m_key_build += 1
        key = self._event_key(ev, rank, req_gids)
        self._add_record(leaf, key, visit, duration, gap)

    @staticmethod
    def _consume_reqs(st: _RankState, reqs) -> tuple[int, ...]:
        """Resolve consumed request ids to creator GIDs and evict them —
        the table stays bounded by the number of in-flight requests, and
        a runtime that reuses a request id never resolves it to the
        stale creator GID."""
        table = st.req_gid
        req_gids = tuple(table.get(r, -1) for r in reqs)
        for r in reqs:
            table.pop(r, None)
        return req_gids

    def _ingest_pending(
        self,
        st: _RankState,
        leaf: CTTVertex,
        ev: CommEvent,
        visit: int,
        duration: float,
        gap: float,
    ) -> None:
        """Wildcard receive: delay compression until the source is known
        (paper §IV-A)."""
        record = CompressedRecord(key=None, pending=True)
        record.add_occurrence(visit, duration, gap)
        st.pending[ev.req] = (leaf, record, ev, len(leaf.records))
        leaf.records.append(record)
        self.m_wildcard_deferred += 1
        depth = len(st.pending)
        if depth > self.m_wildcard_max_depth:
            self.m_wildcard_max_depth = depth

    def _event_key(
        self,
        ev: CommEvent,
        rank: int,
        req_gids: tuple[int, ...],
        peer: int | None = None,
        nbytes: int | None = None,
    ):
        """The single source of truth for record keys.  ``peer``/``nbytes``
        override the event's values when a wildcard receive resolves — the
        resolved path must produce exactly the key shape of the eager path
        (including ``result_comm``), or completed wildcards would merge
        under keys that can never match non-deferred records."""
        relative = self._relative
        return make_key(
            op=ev.op,
            peer_enc=encode_peer(ev.peer if peer is None else peer, rank, relative),
            peer2_enc=encode_peer(ev.peer2, rank, relative),
            tag=ev.tag,
            tag2=ev.tag2,
            nbytes=ev.nbytes if nbytes is None else nbytes,
            nbytes2=ev.nbytes2,
            comm=ev.comm,
            root=ev.root,
            wildcard=ev.wildcard,
            req_gids=req_gids,
            result_comm=ev.result_comm,
        )

    def _add_record(
        self,
        leaf: CTTVertex,
        key,
        visit: int,
        duration: float,
        gap: float,
    ) -> CompressedRecord:
        records = leaf.records
        window = self._window
        if window is None:
            candidate = leaf.record_index.get(key)
            if candidate is not None:
                candidate.add_occurrence(visit, duration, gap)
                return candidate
        else:
            for back in range(1, min(window, len(records)) + 1):
                candidate = records[-back]
                if candidate.pending:
                    continue
                if candidate.key == key:
                    candidate.add_occurrence(visit, duration, gap)
                    return candidate
        record = CompressedRecord(
            key=key,
            duration=TimeStats(mode=self._timing_mode),
            pre_gap=TimeStats(mode=self._timing_mode),
        )
        record.add_occurrence(visit, duration, gap)
        records.append(record)
        if window is None:
            leaf.record_index[key] = record
        return record

    def on_request_complete(
        self, rank: int, rid: int, source: int, nbytes: int, when: float
    ) -> None:
        self._request_complete(self.state(rank), rid, source, nbytes, when)

    def _request_complete(
        self, st: _RankState, rid: int, source: int, nbytes: int, when: float
    ) -> None:
        entry = st.pending.pop(rid, None)
        if entry is None:
            return
        leaf, record, ev, pos = entry
        record.key = self._event_key(
            ev, st.rank, req_gids=(), peer=source, nbytes=nbytes
        )
        record.pending = False
        window = self._window
        if window is None:
            other = leaf.record_index.get(record.key)
            if other is not None and other is not record:
                other.merge_from(record)
                del leaf.records[pos]
                self._shift_pending(st, leaf, pos)
            else:
                leaf.record_index[record.key] = record
            return
        # Bounded backward scan (the paper-faithful variant).
        lo = max(0, pos - window)
        for i in range(pos - 1, lo - 1, -1):
            other = leaf.records[i]
            if other.pending:
                continue
            if other.key == record.key:
                other.merge_from(record)
                del leaf.records[pos]
                self._shift_pending(st, leaf, pos)
                return

    @staticmethod
    def _shift_pending(st: _RankState, leaf: CTTVertex, removed_pos: int) -> None:
        """A resolved record merged away and was deleted from
        ``leaf.records[removed_pos]`` — keep the stored indices of the
        remaining pending records at that leaf accurate.  O(#pending),
        bounded by the number of in-flight wildcard receives."""
        pending = st.pending
        if not pending:
            return
        for key_rid, entry in pending.items():
            if entry[0] is leaf and entry[3] > removed_pos:
                pending[key_rid] = (entry[0], entry[1], entry[2], entry[3] - 1)

    def on_finalize(self, rank: int) -> None:
        st = self.state(rank)
        if st.pending:
            raise CompressionError(
                f"rank {rank}: {len(st.pending)} wildcard receive(s) never completed"
            )

    # ------------------------------------------------------------------
    # Batched stream ingestion (capture/replay and the parallel executor).

    def ingest_stream(self, rank: int, stream) -> None:
        """Compress one rank's captured marker/event stream (the opcode
        tuples :class:`~repro.mpisim.pmpi.StreamCaptureSink` records) in
        one call.  Equivalent to replaying the individual callbacks, with
        the rank state and all handler bindings hoisted out of the loop —
        this is the entry point the parallel compression workers and the
        ingestion benchmarks use."""
        if self._budget is not None:
            self._budget_prologue(rank)
        st = self.state(rank)
        ingest = self._ingest
        loop_push = self._loop_push
        loop_iter = self._loop_iter
        loop_pop = self._loop_pop
        branch_enter = self._branch_enter
        branch_exit = self._branch_exit
        recurse_enter = self._recurse_enter
        recurse_exit = self._recurse_exit
        request_complete = self._request_complete
        if self._fastpath:
            # The dominant opcodes (event, branch enter/exit, loop iter)
            # are handled inline: the common case of each runs without a
            # method call, and anything unusual falls back to the shared
            # handler *before* any state has been mutated — so inline and
            # fallback compose to exactly the handler's semantics.
            # ``stack`` and ``root`` can be hoisted: both are mutated only
            # in place, never rebound.
            stack = st.stack
            root = st.ctt.root
            for item in stream:
                code = item[0]
                if code == OP_EVENT:
                    ev = item[1]
                    cur = stack[-1][1] if stack else root
                    if cur is not None and cur.mono_op is ev.op:
                        # Single-candidate dispatch cache (see
                        # _ingest_fast): wrap-around over one candidate
                        # always yields it, independent of search_pos.
                        found = cur.mono_pair
                    elif cur is not None:
                        lst = cur.call_children_by_op.get(ev.op)
                        if lst is None:
                            found = None
                        elif len(lst) == 1:
                            found = lst[0]
                            cur.mono_op = ev.op
                            cur.mono_pair = found
                        else:
                            found = cur.find_call_child(ev.op, cur.search_pos)
                    else:
                        found = None
                    if found is not None:
                        idx, leaf = found
                        record = leaf.last_record
                        if (
                            record is not None
                            and not leaf.op_nonblocking
                            and not ev.reqs
                            and (
                                ev.peer,
                                ev.nbytes,
                                ev.tag,
                                (),
                                ev.peer2,
                                ev.tag2,
                                ev.nbytes2,
                                ev.comm,
                                ev.root,
                                ev.wildcard,
                                ev.result_comm,
                            )
                            == leaf.last_params
                        ):
                            # Cache hit on a plain event: commit the
                            # cursor move and the occurrence inline
                            # (same float ops as add_occurrence).
                            cur.search_pos = idx + 1
                            visit = leaf.leaf_visits
                            leaf.leaf_visits = visit + 1
                            start = ev.time_start
                            last_end = st.last_event_end
                            gap = start - last_end
                            if gap < 0.0:
                                gap = 0.0
                            duration = ev.duration
                            end = start + duration
                            if end > last_end:
                                st.last_event_end = end
                            occ = record.occurrences
                            terms = occ.terms
                            if terms:
                                s0, c0, d0 = terms[-1]
                                if c0 == 1:
                                    terms[-1] = (s0, 2, visit - s0)
                                    occ.length += 1
                                elif visit == s0 + c0 * d0:
                                    terms[-1] = (s0, c0 + 1, d0)
                                    occ.length += 1
                                else:
                                    occ.append(visit)
                            else:
                                occ.append(visit)
                            stats = record.duration
                            if stats.bins is None:
                                stats.count = n = stats.count + 1
                                delta = duration - stats.mean
                                stats.mean += delta / n
                                stats.m2 += delta * (duration - stats.mean)
                                if duration < stats.minimum:
                                    stats.minimum = duration
                                if duration > stats.maximum:
                                    stats.maximum = duration
                            else:
                                stats.add(duration)
                            stats = record.pre_gap
                            if stats.bins is None:
                                stats.count = n = stats.count + 1
                                delta = gap - stats.mean
                                stats.mean += delta / n
                                stats.m2 += delta * (gap - stats.mean)
                                if gap < stats.minimum:
                                    stats.minimum = gap
                                if gap > stats.maximum:
                                    stats.maximum = gap
                            else:
                                stats.add(gap)
                            continue
                    self.m_stream_fallback += 1
                    ingest(st, ev)
                elif code == OP_BRANCH_ENTER:
                    # Inlined _branch_enter (identical semantics; the
                    # shared handler stays the reference).
                    cur = stack[-1][1] if stack else root
                    if cur is None:
                        stack.append([_BRANCH, None, 0])
                        continue
                    lst = cur.group_by_ast_id.get(item[1])
                    if lst is None:
                        stack.append([_BRANCH, None, 0])
                        continue
                    group = None
                    sp = cur.search_pos
                    for g in lst:
                        if g.first_index >= sp:
                            group = g
                            break
                    if group is None:
                        group = lst[0]
                    cur.search_pos = group.last_index + 1
                    visit = group.visit_counter
                    group.visit_counter = visit + 1
                    path_vertex = group.paths.get(item[2])
                    if path_vertex is None:
                        stack.append([_BRANCH, None, 0])
                        continue
                    seq = path_vertex.visits
                    terms = seq.terms
                    if terms:
                        s0, c0, d0 = terms[-1]
                        if c0 == 1:
                            terms[-1] = (s0, 2, visit - s0)
                            seq.length += 1
                        elif visit == s0 + c0 * d0:
                            terms[-1] = (s0, c0 + 1, d0)
                            seq.length += 1
                        else:
                            seq.append(visit)
                    else:
                        seq.append(visit)
                    path_vertex.search_pos = 0
                    stack.append([_BRANCH, path_vertex, 0])
                elif code == OP_BRANCH_EXIT:
                    if stack and stack[-1][0] == _BRANCH:
                        stack.pop()
                    else:
                        branch_exit(st, item[1])
                elif code == OP_LOOP_ITER:
                    if stack:
                        frame = stack[-1]
                        if frame[0] == _LOOP:
                            frame[2] += 1
                            vertex = frame[1]
                            if vertex is not None:
                                vertex.search_pos = 0
                            continue
                    loop_iter(st, item[1])
                elif code == OP_LOOP_PUSH:
                    loop_push(st, item[1])
                elif code == OP_LOOP_POP:
                    loop_pop(st, item[1])
                elif code == OP_REQ_COMPLETE:
                    request_complete(st, item[1], item[2], item[3], item[4])
                elif code == OP_RECURSE_ENTER:
                    recurse_enter(st, item[1])
                elif code == OP_RECURSE_EXIT:
                    recurse_exit(st, item[1])
                elif code == OP_FINALIZE:
                    self.on_finalize(rank)
                else:  # pragma: no cover - capture writes only known opcodes
                    raise CompressionError(f"unknown stream opcode {code!r}")
            return
        for item in stream:
            code = item[0]
            if code == OP_EVENT:
                ingest(st, item[1])
            elif code == OP_BRANCH_ENTER:
                branch_enter(st, item[1], item[2])
            elif code == OP_BRANCH_EXIT:
                branch_exit(st, item[1])
            elif code == OP_LOOP_ITER:
                loop_iter(st, item[1])
            elif code == OP_LOOP_PUSH:
                loop_push(st, item[1])
            elif code == OP_LOOP_POP:
                loop_pop(st, item[1])
            elif code == OP_REQ_COMPLETE:
                request_complete(st, item[1], item[2], item[3], item[4])
            elif code == OP_RECURSE_ENTER:
                recurse_enter(st, item[1])
            elif code == OP_RECURSE_EXIT:
                recurse_exit(st, item[1])
            elif code == OP_FINALIZE:
                self.on_finalize(rank)
            else:  # pragma: no cover - capture writes only known opcodes
                raise CompressionError(f"unknown stream opcode {code!r}")

    def ingest_packed(self, rank: int, source) -> None:
        """Compress one rank's *packed* stream (:mod:`repro.core.packed`)
        without materializing :class:`CommEvent` objects on the hot path.

        Marker and req-complete columns are batch-decoded with
        ``struct.iter_unpack`` (C speed); the event column stays raw.
        The weave walks the codes column, and for each event the
        key-interning cache is tested by comparing the record's *param
        window* bytes against the window that was last verified (by a
        full decode) to equal ``leaf.last_params`` — equal bytes against
        the same tuple object prove params equality, so the dominant
        cache-hit case never decodes the record beyond its two timing
        doubles.  A window miss decodes the record once, revalidates
        against the tuple (recaching the window on success), and only a
        genuine params change materializes a ``CommEvent`` and falls
        back to the shared handler — so inline and fallback compose to
        the handlers' semantics and the output is byte-identical to the
        list-stream path (the differential harness enforces this).

        With ``fastpath=False`` the blob is decoded to the capture-list
        form and replayed through the reference path instead.
        """
        cols = packed.columns_of(source)
        if not self._fastpath:
            self.ingest_stream(rank, packed.decode_stream(cols))
            return
        if self._budget is not None:
            self._budget_prologue(rank)
        st = self.state(rank)
        ingest = self._ingest
        loop_push = self._loop_push
        loop_iter = self._loop_iter
        loop_pop = self._loop_pop
        branch_exit = self._branch_exit
        recurse_enter = self._recurse_enter
        recurse_exit = self._recurse_exit
        request_complete = self._request_complete
        event_from_fields = packed.event_from_fields
        ops = cols.ops
        arena = cols.arena
        stack = st.stack
        root = st.ctt.root
        ebuf = bytes(cols.events)
        esize = packed.EVENT_STRUCT.size
        eunpack = packed.EVENT_STRUCT.unpack_from
        etimes = packed.EVENT_TIMES.unpack_from
        pw_off = packed.EVENT_PARAMS_OFF
        pw_end = packed.EVENT_PARAMS_END
        t_off = packed.EVENT_TIMES_OFF
        # Marker and req-complete records decode lazily: the dominant
        # structural codes (loop iter, branch exit with a live frame)
        # never read their marker at all, so ``mi``/``ri`` advance over
        # raw bytes and only a consumer unpacks its record.
        mbuf = bytes(cols.markers)
        rbuf = bytes(cols.reqc)
        munpack = packed.MARKER_STRUCT.unpack_from
        runpack = packed.REQC_STRUCT.unpack_from
        msize = packed.MARKER_STRUCT.size
        rsize = packed.REQC_STRUCT.size
        ei = mi = ri = 0
        for code in cols.codes:
            if code == OP_EVENT:
                off = ei * esize
                ei += 1
                op = ops[ebuf[off] | (ebuf[off + 1] << 8)]
                cur = stack[-1][1] if stack else root
                if cur is not None and cur.mono_op is op:
                    found = cur.mono_pair
                elif cur is not None:
                    lst = cur.call_children_by_op.get(op)
                    if lst is None:
                        found = None
                    elif len(lst) == 1:
                        found = lst[0]
                        cur.mono_op = op
                        cur.mono_pair = found
                    else:
                        found = cur.find_call_child(op, cur.search_pos)
                else:
                    found = None
                f = None
                hit = False
                if found is not None:
                    idx, leaf = found
                    record = leaf.last_record
                    if record is not None and not leaf.op_nonblocking:
                        # ``startswith`` with an offset is an allocation-
                        # free memcmp of the record's param window
                        # against the cached one.
                        raw = leaf.last_params_raw
                        if (
                            raw is not None
                            and leaf.last_params_raw_key is leaf.last_params
                            and ebuf.startswith(raw, off + pw_off)
                        ):
                            hit = True
                        else:
                            # Window miss: decode once and revalidate
                            # against the tuple the handlers maintain
                            # (field indices: see packed.EVENT_STRUCT).
                            f = eunpack(ebuf, off)
                            if not f[11] and (
                                f[1], f[2], f[3], (), f[4], f[5], f[6],
                                f[7], f[8], f[10] != 0, f[9],
                            ) == leaf.last_params:
                                hit = True
                                leaf.last_params_raw = (
                                    ebuf[off + pw_off:off + pw_end]
                                )
                                leaf.last_params_raw_key = leaf.last_params
                if hit:
                    if f is None:
                        start, duration = etimes(ebuf, off + t_off)
                    else:
                        start = f[12]
                        duration = f[13]
                    # Cache hit: identical commit sequence to
                    # ingest_stream's inline body.
                    cur.search_pos = idx + 1
                    visit = leaf.leaf_visits
                    leaf.leaf_visits = visit + 1
                    last_end = st.last_event_end
                    gap = start - last_end
                    if gap < 0.0:
                        gap = 0.0
                    end = start + duration
                    if end > last_end:
                        st.last_event_end = end
                    occ = record.occurrences
                    terms = occ.terms
                    if terms:
                        s0, c0, d0 = terms[-1]
                        if c0 == 1:
                            terms[-1] = (s0, 2, visit - s0)
                            occ.length += 1
                        elif visit == s0 + c0 * d0:
                            terms[-1] = (s0, c0 + 1, d0)
                            occ.length += 1
                        else:
                            occ.append(visit)
                    else:
                        occ.append(visit)
                    stats = record.duration
                    if stats.bins is None:
                        stats.count = n = stats.count + 1
                        delta = duration - stats.mean
                        stats.mean += delta / n
                        stats.m2 += delta * (duration - stats.mean)
                        if duration < stats.minimum:
                            stats.minimum = duration
                        if duration > stats.maximum:
                            stats.maximum = duration
                    else:
                        stats.add(duration)
                    stats = record.pre_gap
                    if stats.bins is None:
                        stats.count = n = stats.count + 1
                        delta = gap - stats.mean
                        stats.mean += delta / n
                        stats.m2 += delta * (gap - stats.mean)
                        if gap < stats.minimum:
                            stats.minimum = gap
                        if gap > stats.maximum:
                            stats.maximum = gap
                    else:
                        stats.add(gap)
                    continue
                self.m_stream_fallback += 1
                if f is None:
                    f = eunpack(ebuf, off)
                ingest(st, event_from_fields(f, ops, arena))
            elif code == OP_BRANCH_ENTER:
                ast_id, path = munpack(mbuf, mi * msize)
                mi += 1
                # Inlined _branch_enter (identical to ingest_stream).
                cur = stack[-1][1] if stack else root
                if cur is None:
                    stack.append([_BRANCH, None, 0])
                    continue
                lst = cur.group_by_ast_id.get(ast_id)
                if lst is None:
                    stack.append([_BRANCH, None, 0])
                    continue
                group = None
                sp = cur.search_pos
                for g in lst:
                    if g.first_index >= sp:
                        group = g
                        break
                if group is None:
                    group = lst[0]
                cur.search_pos = group.last_index + 1
                visit = group.visit_counter
                group.visit_counter = visit + 1
                path_vertex = group.paths.get(path)
                if path_vertex is None:
                    stack.append([_BRANCH, None, 0])
                    continue
                seq = path_vertex.visits
                terms = seq.terms
                if terms:
                    s0, c0, d0 = terms[-1]
                    if c0 == 1:
                        terms[-1] = (s0, 2, visit - s0)
                        seq.length += 1
                    elif visit == s0 + c0 * d0:
                        terms[-1] = (s0, c0 + 1, d0)
                        seq.length += 1
                    else:
                        seq.append(visit)
                else:
                    seq.append(visit)
                path_vertex.search_pos = 0
                stack.append([_BRANCH, path_vertex, 0])
            elif code == OP_BRANCH_EXIT:
                mi += 1
                if stack and stack[-1][0] == _BRANCH:
                    stack.pop()
                else:
                    branch_exit(st, munpack(mbuf, (mi - 1) * msize)[0])
            elif code == OP_LOOP_ITER:
                mi += 1
                if stack:
                    frame = stack[-1]
                    if frame[0] == _LOOP:
                        frame[2] += 1
                        vertex = frame[1]
                        if vertex is not None:
                            vertex.search_pos = 0
                        continue
                loop_iter(st, munpack(mbuf, (mi - 1) * msize)[0])
            elif code == OP_LOOP_PUSH:
                loop_push(st, munpack(mbuf, mi * msize)[0])
                mi += 1
            elif code == OP_LOOP_POP:
                loop_pop(st, munpack(mbuf, mi * msize)[0])
                mi += 1
            elif code == OP_REQ_COMPLETE:
                r = runpack(rbuf, ri * rsize)
                ri += 1
                request_complete(st, r[0], r[1], r[2], r[3])
            elif code == OP_RECURSE_ENTER:
                recurse_enter(st, munpack(mbuf, mi * msize)[0])
                mi += 1
            elif code == OP_RECURSE_EXIT:
                recurse_exit(st, munpack(mbuf, mi * msize)[0])
                mi += 1
            elif code == OP_FINALIZE:
                mi += 1
                self.on_finalize(rank)
            else:  # pragma: no cover - encoder writes only known codes
                raise CompressionError(f"unknown stream opcode {code!r}")

    def ingest_runs(self, rank: int, source) -> None:
        """Run-collapsed packed-stream ingestion (docs/INTERNALS.md §12).

        Builds on :meth:`ingest_packed`'s raw-window cache-hit weave and
        adds three run-granular layers, each byte-identical to the
        per-event path (the differential harness enforces this):

        * **adjacent-run collapse** — when consecutive stream items are
          events with byte-equal heads (op + param window, the property
          the encoder's run descriptors detect), the whole run commits
          with one dispatch: the timing doubles decode in a tight loop
          and fold through :meth:`CompressedRecord.add_occurrences`,
          which replays the exact sequential Welford recurrence on
          hoisted locals;
        * **iteration-replay plans** — the first repeated iteration of a
          loop body records the body's byte spans plus one *slot* per
          item capturing how the generic walk resolved it; later
          iterations match the body with two ``memcmp``s and replay the
          slots with no dispatch, no key interning and no marker decode;
        * **columnar batches** — when the upcoming stream repeats the
          same body N times (matched by repeating the plan's
          iter+body byte pattern), all N bodies commit at once: heads
          validate first, then each record's duration/gap samples are
          gathered in stream order and folded in one bulk call.

        Inline nonblocking and request-consuming events are handled on
        the hit path here (unlike :meth:`ingest_packed`): a nonblocking
        hit registers its request GID from the cold field, and a
        request-consuming hit probes the request table *without popping*
        and only consumes on a confirmed match — a mismatch falls back
        before any state changes.

        Plans require the unbounded window (record identity is permanent
        there) and split conservatively: wildcard fallbacks, request
        completions, recursion markers and ``FINALIZE`` abort recording,
        and replay bails to the generic walk at the first divergent
        event.  With ``fastpath=False`` the blob is decoded and replayed
        through the reference path instead.
        """
        cols = packed.columns_of(source)
        if not self._fastpath:
            self.ingest_stream(rank, packed.decode_stream(cols))
            return
        if self._budget is not None:
            self._budget_prologue(rank)
        st = self.state(rank)
        ingest = self._ingest
        loop_push = self._loop_push
        loop_iter = self._loop_iter
        loop_pop = self._loop_pop
        branch_exit = self._branch_exit
        recurse_enter = self._recurse_enter
        recurse_exit = self._recurse_exit
        request_complete = self._request_complete
        event_from_fields = packed.event_from_fields
        ops = cols.ops
        arena = cols.arena
        stack = st.stack
        root = st.ctt.root
        # Zero-copy events access when the source offers it (a bytes
        # blob, or the encoder's live buffer): ``e0`` rebases every
        # event offset into the shared buffer, skipping a full-section
        # copy per rank.
        ebuf = cols.events_buf
        e0 = cols.events_off
        if ebuf is None:
            ebuf = bytes(cols.events)
            e0 = 0
        esize = packed.EVENT_STRUCT.size
        eunpack = packed.EVENT_STRUCT.unpack_from
        etimes = packed.EVENT_TIMES.unpack_from
        pw_off = packed.EVENT_PARAMS_OFF
        hlen = packed.EVENT_PARAMS_END
        t_off = packed.EVENT_TIMES_OFF
        rq_off = packed.EVENT_REQ_OFF
        rq_ptr_off = packed.EVENT_REQS_PTR_OFF
        req_at = packed.EVENT_REQ.unpack_from
        reqs_ptr_at = packed.EVENT_REQS_PTR.unpack_from
        mbuf = bytes(cols.markers)
        rbuf = bytes(cols.reqc)
        munpack = packed.MARKER_STRUCT.unpack_from
        runpack = packed.REQC_STRUCT.unpack_from
        msize = packed.MARKER_STRUCT.size
        rsize = packed.REQC_STRUCT.size
        codes_b = cols.codes
        n_codes = len(codes_b)
        plans_on = self._window_unbounded
        # Recording state: at most one body records at a time; plans are
        # keyed off the loop vertex of the innermost recording frame.
        rec: list | None = None
        rec_vertex = None
        rec_frame = None
        rec_depth = 0
        rec_ci0 = 0
        rec_mi0 = 0
        last_hit: dict = {}  # vertex -> (plan, prev plan, alternation streak)

        def rec_abort() -> None:
            nonlocal rec
            rec = None
            v = rec_vertex
            v.run_plan_fails += 1
            if v.run_plan_fails >= _PLAN_FAIL_CAP:
                v.run_plans = False

        def rec_add(slot) -> None:
            rec.append(slot)
            if len(rec) > _PLAN_MAX_SLOTS:
                rec_abort()

        def rec_finalize(ci_end: int, m_end: int) -> None:
            nonlocal rec
            plan = _RunPlan(
                codes_b[rec_ci0:ci_end],
                mbuf[rec_mi0 * msize:m_end],
                rec,
                rec_vertex.ast_id,
            )
            if plan.n_events and plan.n_items == len(plan.codes):
                plans0 = rec_vertex.run_plans
                if plans0:
                    plans0.insert(0, plan)
                    del plans0[_PLAN_CAP:]
                else:
                    rec_vertex.run_plans = [plan]
                rec = None
            else:
                rec_abort()

        ei = mi = ri = 0
        it = iter(codes_b)
        for code in it:
            if code == OP_EVENT:
                off = e0 + ei * esize
                ei += 1
                op = ops[ebuf[off] | (ebuf[off + 1] << 8)]
                cur = stack[-1][1] if stack else root
                if cur is not None and cur.mono_op is op:
                    found = cur.mono_pair
                elif cur is not None:
                    lst = cur.call_children_by_op.get(op)
                    if lst is None:
                        found = None
                    elif len(lst) == 1:
                        found = lst[0]
                        cur.mono_op = op
                        cur.mono_pair = found
                    else:
                        found = cur.find_call_child(op, cur.search_pos)
                else:
                    found = None
                f = None
                hit = False
                reqs = None
                exp = ()
                if found is not None:
                    idx, leaf = found
                    record = leaf.last_record
                    if record is not None:
                        raw = leaf.last_params_raw
                        if raw is not None and ebuf.startswith(raw, off + pw_off):
                            hit = True
                        else:
                            # Window miss: decode once, revalidate
                            # against the tuple the handlers maintain.
                            # Events carrying requests probe the table
                            # without popping — only a hit may consume.
                            f = eunpack(ebuf, off)
                            rl = f[11]
                            if rl:
                                table = st.req_gid
                                rs = arena[f[17]:f[17] + rl]
                                gids = tuple([table.get(r, -1) for r in rs])
                            else:
                                rs = None
                                gids = ()
                            if (
                                f[1], f[2], f[3], gids, f[4], f[5], f[6],
                                f[7], f[8], f[10] != 0, f[9],
                            ) == leaf.last_params:
                                hit = True
                                reqs = rs
                                leaf.last_params_raw = (
                                    ebuf[off + pw_off:off + hlen]
                                )
                                leaf.last_params_raw_key = leaf.last_params
                    if hit:
                        exp = leaf.last_params[3]
                        if exp:
                            table = st.req_gid
                            if reqs is None:
                                ro = reqs_ptr_at(ebuf, off + rq_ptr_off)[0]
                                reqs = arena[ro:ro + len(exp)]
                                gids = tuple(
                                    [table.get(r, -1) for r in reqs]
                                )
                                if gids != exp:
                                    hit = False
                            if hit:
                                for r in reqs:
                                    table.pop(r, None)
                        if hit and leaf.op_nonblocking:
                            st.req_gid[req_at(ebuf, off + rq_off)[0]] = (
                                leaf.gid
                            )
                if hit:
                    if f is None:
                        start, duration = etimes(ebuf, off + t_off)
                    else:
                        start = f[12]
                        duration = f[13]
                    cur.search_pos = idx + 1
                    visit = leaf.leaf_visits
                    leaf.leaf_visits = visit + 1
                    last_end = st.last_event_end
                    gap = start - last_end
                    if gap < 0.0:
                        gap = 0.0
                    end = start + duration
                    if end > last_end:
                        st.last_event_end = end
                    occ = record.occurrences
                    terms = occ.terms
                    if terms:
                        s0, c0, d0 = terms[-1]
                        if c0 == 1:
                            terms[-1] = (s0, 2, visit - s0)
                            occ.length += 1
                        elif visit == s0 + c0 * d0:
                            terms[-1] = (s0, c0 + 1, d0)
                            occ.length += 1
                        else:
                            occ.append(visit)
                    else:
                        occ.append(visit)
                    stats = record.duration
                    if stats.bins is None:
                        stats.count = n = stats.count + 1
                        delta = duration - stats.mean
                        stats.mean += delta / n
                        stats.m2 += delta * (duration - stats.mean)
                        if duration < stats.minimum:
                            stats.minimum = duration
                        if duration > stats.maximum:
                            stats.maximum = duration
                    else:
                        stats.add(duration)
                    stats = record.pre_gap
                    if stats.bins is None:
                        stats.count = n = stats.count + 1
                        delta = gap - stats.mean
                        stats.mean += delta / n
                        stats.m2 += delta * (gap - stats.mean)
                        if gap < stats.minimum:
                            stats.minimum = gap
                        if gap > stats.maximum:
                            stats.maximum = gap
                    else:
                        stats.add(gap)
                    if rec is not None:
                        head = ebuf[off:off + hlen]
                        if exp:
                            rec_add(
                                (2, head, cur, idx + 1, leaf, record,
                                 len(exp), exp)
                            )
                        elif leaf.op_nonblocking:
                            rec_add((1, head, cur, idx + 1, leaf, record))
                        else:
                            rec_add((0, head, cur, idx + 1, leaf, record))
                    elif (
                        plans_on
                        and not exp
                        and cur.mono_op is op
                        and not leaf.op_nonblocking
                    ):
                        # Adjacent-run collapse: byte-equal heads on
                        # consecutive event items re-resolve to the same
                        # leaf (monomorphic dispatch) and the same record
                        # (unbounded window), so the rest of the run
                        # commits without re-dispatching.
                        ci2 = ei + mi + ri
                        off2 = off + esize
                        if (
                            ci2 < n_codes
                            and codes_b[ci2] == OP_EVENT
                            and ebuf[off2:off2 + hlen] == ebuf[off:off + hlen]
                        ):
                            head = ebuf[off:off + hlen]
                            durs: list[float] = []
                            gaps: list[float] = []
                            dapp = durs.append
                            gapp = gaps.append
                            last_end = st.last_event_end
                            while True:
                                s2, d2 = etimes(ebuf, off2 + t_off)
                                g2 = s2 - last_end
                                if g2 < 0.0:
                                    g2 = 0.0
                                dapp(d2)
                                gapp(g2)
                                e2 = s2 + d2
                                if e2 > last_end:
                                    last_end = e2
                                ci2 += 1
                                off2 += esize
                                if (
                                    ci2 >= n_codes
                                    or codes_b[ci2] != OP_EVENT
                                    or ebuf[off2:off2 + hlen] != head
                                ):
                                    break
                            st.last_event_end = last_end
                            cnt = len(durs)
                            v0 = leaf.leaf_visits
                            record.add_occurrences(v0, durs, gaps)
                            leaf.leaf_visits = v0 + cnt
                            self.m_run_collapsed += cnt
                            ei += cnt
                            deque(islice(it, cnt), maxlen=0)
                    continue
                if rec is not None:
                    rec_abort()
                self.m_stream_fallback += 1
                if f is None:
                    f = eunpack(ebuf, off)
                ingest(st, event_from_fields(f, ops, arena))
            elif code == OP_BRANCH_ENTER:
                ast_id, path = munpack(mbuf, mi * msize)
                mi += 1
                cur = stack[-1][1] if stack else root
                if cur is None:
                    stack.append([_BRANCH, None, 0])
                    if rec is not None:
                        rec_add(_M_NULL_BENTER_SLOT)
                    continue
                lst = cur.group_by_ast_id.get(ast_id)
                if lst is None:
                    stack.append([_BRANCH, None, 0])
                    if rec is not None:
                        rec_add(_M_NULL_BENTER_SLOT)
                    continue
                group = None
                sp = cur.search_pos
                for g in lst:
                    if g.first_index >= sp:
                        group = g
                        break
                if group is None:
                    group = lst[0]
                cur.search_pos = group.last_index + 1
                visit = group.visit_counter
                group.visit_counter = visit + 1
                path_vertex = group.paths.get(path)
                if path_vertex is None:
                    stack.append([_BRANCH, None, 0])
                    if rec is not None:
                        rec_add((6, cur, group.last_index + 1, group, None))
                    continue
                seq = path_vertex.visits
                terms = seq.terms
                if terms:
                    s0, c0, d0 = terms[-1]
                    if c0 == 1:
                        terms[-1] = (s0, 2, visit - s0)
                        seq.length += 1
                    elif visit == s0 + c0 * d0:
                        terms[-1] = (s0, c0 + 1, d0)
                        seq.length += 1
                    else:
                        seq.append(visit)
                else:
                    seq.append(visit)
                path_vertex.search_pos = 0
                stack.append([_BRANCH, path_vertex, 0])
                if rec is not None:
                    rec_add(
                        (6, cur, group.last_index + 1, group, path_vertex)
                    )
            elif code == OP_BRANCH_EXIT:
                mi += 1
                if stack and stack[-1][0] == _BRANCH:
                    stack.pop()
                    if rec is not None:
                        rec_add(_M_BEXIT_SLOT)
                else:
                    branch_exit(st, munpack(mbuf, (mi - 1) * msize)[0])
            elif code == OP_LOOP_ITER:
                mi += 1
                if not stack or stack[-1][0] != _LOOP:
                    loop_iter(st, munpack(mbuf, (mi - 1) * msize)[0])
                    continue
                frame = stack[-1]
                if rec is not None:
                    if len(stack) == rec_depth and frame is rec_frame:
                        # Body complete: store the plan, then process
                        # this marker normally — it may immediately
                        # trigger a replay of the plan just stored.
                        rec_finalize(ei + mi + ri - 1, (mi - 1) * msize)
                    elif len(stack) > rec_depth:
                        rec_add(_M_ITER_SLOT)
                        frame[2] += 1
                        vertex = frame[1]
                        if vertex is not None:
                            vertex.search_pos = 0
                        continue
                    else:
                        rec_abort()
                frame[2] += 1
                vertex = frame[1]
                if vertex is not None:
                    vertex.search_pos = 0
                if vertex is None or not plans_on:
                    continue
                plans = vertex.run_plans
                if plans is False:
                    continue
                matched = None
                if plans:
                    ci = ei + mi + ri
                    moff = mi * msize
                    for p in plans:
                        if codes_b.startswith(p.codes, ci) and mbuf.startswith(
                            p.markers, moff
                        ):
                            matched = p
                            break
                if matched is None:
                    if frame[2] >= 2 and rec is None:
                        rec = []
                        rec_vertex = vertex
                        rec_frame = frame
                        rec_depth = len(stack)
                        rec_ci0 = ei + mi + ri
                        rec_mi0 = mi
                    continue
                p = matched
                self.m_plan_replays += 1
                # Alternation tracking: bodies cycling between two plans
                # (a branch flipping paths per iteration) fuse into a
                # period-2 super-plan the batch path can repeat-match.
                prev = last_hit.get(vertex)
                if prev is not None and prev[0] is not p:
                    q = prev[0]
                    streak = prev[2] + 1 if prev[1] is p else 1
                    last_hit[vertex] = (p, q, streak)
                    if (
                        streak >= 3
                        and p.merged_of is None
                        and q.merged_of is None
                        and p.n_items + q.n_items + 1 <= _PLAN_MAX_SLOTS
                        and not any(
                            pl.merged_of is not None
                            and pl.merged_of[0] is p
                            and pl.merged_of[1] is q
                            for pl in plans
                        )
                    ):
                        plans.insert(0, _merge_plans(p, q, vertex.ast_id))
                        del plans[_PLAN_CAP:]
                else:
                    last_hit[vertex] = (p, None, 0)
                nev = p.n_events
                groups = p.groups
                nbodies = 0
                if groups is not None:
                    # Count upcoming repeats of (iter + body) — each is
                    # one more identical iteration the columnar batch
                    # can commit in bulk.
                    nit = p.n_items
                    nmk = p.n_markers
                    max_b = _PLAN_MAX_BATCH_EVENTS // nev
                    reps = 1
                    coff = ei + mi + ri + nit
                    moff2 = (mi + nmk) * msize
                    rep_c = p.rep_codes
                    rep_m = p.rep_markers
                    while (
                        reps < max_b
                        and codes_b.startswith(rep_c, coff)
                        and mbuf.startswith(rep_m, moff2)
                    ):
                        reps += 1
                        coff += nit + 1
                        moff2 += (nmk + 1) * msize
                    if reps >= 2:
                        # Validate every event head in the span; commit
                        # only whole validated bodies — a failing body
                        # is left for the single-body path to bail in
                        # precisely.
                        heads = p.heads
                        off2 = e0 + ei * esize
                        for _b in range(reps):
                            okb = True
                            for h in heads:
                                if ebuf[off2:off2 + hlen] != h:
                                    okb = False
                                    break
                                off2 += esize
                            if not okb:
                                break
                            nbodies += 1
                        if nbodies >= 2 and p.req_fx is not None:
                            # Request effects per body, in order: check
                            # the body's expected GIDs against a dry-run
                            # overlay, then apply the net table update.
                            # The first divergent body truncates the
                            # batch before anything of it is applied.
                            req_fx = p.req_fx
                            table = st.req_gid
                            base = e0 + ei * esize
                            bsz = nev * esize
                            applied = 0
                            for _b in range(nbodies):
                                sim: dict = {}
                                okb = True
                                for fx in req_fx:
                                    if fx[0] == 1:
                                        rq = req_at(
                                            ebuf,
                                            base + fx[1] * esize + rq_off,
                                        )[0]
                                        sim[rq] = fx[2].gid
                                    else:
                                        ro = reqs_ptr_at(
                                            ebuf,
                                            base + fx[1] * esize + rq_ptr_off,
                                        )[0]
                                        rs = arena[ro:ro + fx[2]]
                                        gl = []
                                        for r in rs:
                                            v = sim.get(r, _MISSING)
                                            if v is _MISSING:
                                                gl.append(table.get(r, -1))
                                            elif v is None:
                                                gl.append(-1)
                                            else:
                                                gl.append(v)
                                        if tuple(gl) != fx[3]:
                                            okb = False
                                            break
                                        for r in rs:
                                            sim[r] = None
                                if not okb:
                                    break
                                for rk, rv in sim.items():
                                    if rv is None:
                                        table.pop(rk, None)
                                    else:
                                        table[rk] = rv
                                applied += 1
                                base += bsz
                            nbodies = applied
                if nbodies >= 2:
                    # --- columnar batch commit over nbodies bodies.
                    total = nbodies * nev
                    durs = []
                    gaps = []
                    dapp = durs.append
                    gapp = gaps.append
                    off2 = e0 + ei * esize + t_off
                    last_end = st.last_event_end
                    for _i in range(total):
                        s2, d2 = etimes(ebuf, off2)
                        off2 += esize
                        g2 = s2 - last_end
                        if g2 < 0.0:
                            g2 = 0.0
                        dapp(d2)
                        gapp(g2)
                        e2 = s2 + d2
                        if e2 > last_end:
                            last_end = e2
                    st.last_event_end = last_end
                    # Each record's samples, gathered in stream order
                    # (body-major, slot-minor), fold in one bulk call —
                    # its occurrence indices are consecutive because
                    # every visit of its leaf in the span commits to it.
                    for g_rec, g_leaf, g_pos in p.groups:
                        if len(g_pos) == 1:
                            j = g_pos[0]
                            dcol = durs[j::nev]
                            gcol = gaps[j::nev]
                        else:
                            dcol = [
                                x
                                for t2 in zip(*[durs[j::nev] for j in g_pos])
                                for x in t2
                            ]
                            gcol = [
                                x
                                for t2 in zip(*[gaps[j::nev] for j in g_pos])
                                for x in t2
                            ]
                        v0 = g_leaf.leaf_visits
                        g_rec.add_occurrences(v0, dcol, gcol)
                        g_leaf.leaf_visits = v0 + len(dcol)
                    # Cursor/marker side effects per body, in slot order
                    # (event slots contribute only their search-pos
                    # write — their commits happened columnar above).
                    slots = p.slots
                    for b in range(nbodies):
                        if b:
                            frame[2] += 1
                            vertex.search_pos = 0
                        for s in slots:
                            k2 = s[0]
                            if k2 <= 2:
                                s[2].search_pos = s[3]
                            elif k2 == 3:
                                fr2 = stack[-1]
                                fr2[2] += 1
                                v2 = fr2[1]
                                if v2 is not None:
                                    v2.search_pos = 0
                            elif k2 == 4:
                                stack.pop()
                            elif k2 == 5:
                                pv = s[1]
                                if pv is not None:
                                    pv.search_pos = s[2]
                                ch = s[3]
                                if ch is not None:
                                    ch.search_pos = 0
                                stack.append([_LOOP, ch, 0])
                            elif k2 == 6:
                                pv = s[1]
                                if pv is None:
                                    stack.append([_BRANCH, None, 0])
                                else:
                                    pv.search_pos = s[2]
                                    group2 = s[3]
                                    visit2 = group2.visit_counter
                                    group2.visit_counter = visit2 + 1
                                    pvx = s[4]
                                    if pvx is None:
                                        stack.append([_BRANCH, None, 0])
                                    else:
                                        seq = pvx.visits
                                        terms = seq.terms
                                        if terms:
                                            s0, c0, d0 = terms[-1]
                                            if c0 == 1:
                                                terms[-1] = (
                                                    s0, 2, visit2 - s0,
                                                )
                                                seq.length += 1
                                            elif visit2 == s0 + c0 * d0:
                                                terms[-1] = (
                                                    s0, c0 + 1, d0,
                                                )
                                                seq.length += 1
                                            else:
                                                seq.append(visit2)
                                        else:
                                            seq.append(visit2)
                                        pvx.search_pos = 0
                                        stack.append([_BRANCH, pvx, 0])
                            else:
                                fr2 = stack.pop()
                                v2 = fr2[1]
                                if v2 is not None:
                                    v2.loop_counts.append(fr2[2])
                    self.m_plan_bodies += nbodies
                    ei += total
                    mi += nbodies * p.n_markers + (nbodies - 1)
                    deque(
                        islice(it, nbodies * p.n_items + (nbodies - 1)),
                        maxlen=0,
                    )
                    continue
                # --- single-body replay: validate event-by-event and
                # commit inline; a divergence bails with all prior slots
                # committed and the failing item unconsumed.
                a_ei = ei
                a_mi = mi
                last_end = st.last_event_end
                table = st.req_gid
                for s in p.slots:
                    k2 = s[0]
                    if k2 <= 2:
                        off2 = e0 + a_ei * esize
                        if ebuf[off2:off2 + hlen] != s[1]:
                            break
                        leaf = s[4]
                        if k2 == 2:
                            ro = reqs_ptr_at(ebuf, off2 + rq_ptr_off)[0]
                            rs = arena[ro:ro + s[6]]
                            if tuple([table.get(r, -1) for r in rs]) != s[7]:
                                break
                            for r in rs:
                                table.pop(r, None)
                        elif k2 == 1:
                            table[req_at(ebuf, off2 + rq_off)[0]] = leaf.gid
                        start, duration = etimes(ebuf, off2 + t_off)
                        s[2].search_pos = s[3]
                        visit = leaf.leaf_visits
                        leaf.leaf_visits = visit + 1
                        gap = start - last_end
                        if gap < 0.0:
                            gap = 0.0
                        end = start + duration
                        if end > last_end:
                            last_end = end
                        record = s[5]
                        occ = record.occurrences
                        terms = occ.terms
                        if terms:
                            s0, c0, d0 = terms[-1]
                            if c0 == 1:
                                terms[-1] = (s0, 2, visit - s0)
                                occ.length += 1
                            elif visit == s0 + c0 * d0:
                                terms[-1] = (s0, c0 + 1, d0)
                                occ.length += 1
                            else:
                                occ.append(visit)
                        else:
                            occ.append(visit)
                        stats = record.duration
                        if stats.bins is None:
                            stats.count = n = stats.count + 1
                            delta = duration - stats.mean
                            stats.mean += delta / n
                            stats.m2 += delta * (duration - stats.mean)
                            if duration < stats.minimum:
                                stats.minimum = duration
                            if duration > stats.maximum:
                                stats.maximum = duration
                        else:
                            stats.add(duration)
                        stats = record.pre_gap
                        if stats.bins is None:
                            stats.count = n = stats.count + 1
                            delta = gap - stats.mean
                            stats.mean += delta / n
                            stats.m2 += delta * (gap - stats.mean)
                            if gap < stats.minimum:
                                stats.minimum = gap
                            if gap > stats.maximum:
                                stats.maximum = gap
                        else:
                            stats.add(gap)
                        a_ei += 1
                    elif k2 == 3:
                        fr2 = stack[-1]
                        fr2[2] += 1
                        v2 = fr2[1]
                        if v2 is not None:
                            v2.search_pos = 0
                        a_mi += 1
                    elif k2 == 4:
                        stack.pop()
                        a_mi += 1
                    elif k2 == 5:
                        pv = s[1]
                        if pv is not None:
                            pv.search_pos = s[2]
                        ch = s[3]
                        if ch is not None:
                            ch.search_pos = 0
                        stack.append([_LOOP, ch, 0])
                        a_mi += 1
                    elif k2 == 6:
                        pv = s[1]
                        if pv is None:
                            stack.append([_BRANCH, None, 0])
                        else:
                            pv.search_pos = s[2]
                            group2 = s[3]
                            visit2 = group2.visit_counter
                            group2.visit_counter = visit2 + 1
                            pvx = s[4]
                            if pvx is None:
                                stack.append([_BRANCH, None, 0])
                            else:
                                seq = pvx.visits
                                terms = seq.terms
                                if terms:
                                    s0, c0, d0 = terms[-1]
                                    if c0 == 1:
                                        terms[-1] = (s0, 2, visit2 - s0)
                                        seq.length += 1
                                    elif visit2 == s0 + c0 * d0:
                                        terms[-1] = (s0, c0 + 1, d0)
                                        seq.length += 1
                                    else:
                                        seq.append(visit2)
                                else:
                                    seq.append(visit2)
                                pvx.search_pos = 0
                                stack.append([_BRANCH, pvx, 0])
                        a_mi += 1
                    else:
                        fr2 = stack.pop()
                        v2 = fr2[1]
                        if v2 is not None:
                            v2.loop_counts.append(fr2[2])
                        a_mi += 1
                else:
                    self.m_plan_bodies += 1
                st.last_event_end = last_end
                consumed = (a_ei - ei) + (a_mi - mi)
                ei = a_ei
                mi = a_mi
                if consumed:
                    deque(islice(it, consumed), maxlen=0)
            elif code == OP_LOOP_PUSH:
                loop_push(st, munpack(mbuf, mi * msize)[0])
                mi += 1
                if rec is not None:
                    parent = stack[-2][1] if len(stack) > 1 else root
                    rec_add((
                        5,
                        parent,
                        parent.search_pos if parent is not None else -1,
                        stack[-1][1],
                    ))
            elif code == OP_LOOP_POP:
                if rec is not None and len(stack) == rec_depth:
                    if stack[-1] is rec_frame:
                        # The recorded loop itself exits: the body since
                        # the last iter marker is complete.
                        rec_finalize(ei + mi + ri, mi * msize)
                    else:
                        rec_abort()
                loop_pop(st, munpack(mbuf, mi * msize)[0])
                mi += 1
                if rec is not None:
                    rec_add(_M_POP_SLOT)
            elif code == OP_REQ_COMPLETE:
                if rec is not None:
                    rec_abort()
                r = runpack(rbuf, ri * rsize)
                ri += 1
                request_complete(st, r[0], r[1], r[2], r[3])
            elif code == OP_RECURSE_ENTER:
                if rec is not None:
                    rec_abort()
                recurse_enter(st, munpack(mbuf, mi * msize)[0])
                mi += 1
            elif code == OP_RECURSE_EXIT:
                if rec is not None:
                    rec_abort()
                recurse_exit(st, munpack(mbuf, mi * msize)[0])
                mi += 1
            elif code == OP_FINALIZE:
                if rec is not None:
                    rec_abort()
                mi += 1
                self.on_finalize(rank)
            else:  # pragma: no cover - encoder writes only known codes
                raise CompressionError(f"unknown stream opcode {code!r}")


# ---------------------------------------------------------------------------
# Sharded parallel compression executor (fault-tolerant; see respool).


def _stream_event_count(stream) -> int:
    if packed.is_packed(stream):
        return packed.event_count(stream)
    return sum(1 for item in stream if item[0] == OP_EVENT)


def _raw_stream_of(stream):
    """The capture-list form of ``stream`` for quarantine retention —
    packed sources are decoded once (quarantine is the rare path; the
    raw list is what fallback replay consumes)."""
    if stream is None:
        return None
    if packed.is_packed(stream):
        return packed.decode_stream(stream)
    return stream


def _ingest_or_quarantine(
    comp: IntraProcessCompressor,
    rank: int,
    stream,
    strict: bool,
    report: QuarantineReport,
) -> None:
    """Compress one rank's stream (capture-list or packed form); in
    lenient mode a CST/stream mismatch quarantines the rank (partial CTT
    discarded, raw capture kept) instead of aborting the whole run."""
    try:
        if packed.is_packed(stream):
            comp.ingest_runs(rank, stream)
        else:
            comp.ingest_stream(rank, stream)
    except StreamMismatchError as exc:
        if strict:
            raise
        comp.discard_rank(rank)
        report.add(
            QuarantinedRank(
                rank=rank,
                stage="intra",
                error=str(exc),
                events=_stream_event_count(stream),
                raw_stream=_raw_stream_of(stream),
            )
        )


def _compress_shard(payload) -> tuple:
    """Worker entry point: compress one contiguous shard of rank streams.

    Must stay a module-level function of one argument (the respool
    pickling contract).  Per-rank compression is deterministic and rank
    states never interact, so shard results are exactly what serial
    compression would produce — which is also why the resilient executor
    may safely re-execute a shard after a worker failure.  Besides the
    CTTs, the worker ships quarantine metadata (raw streams stay with
    the parent, which already holds them), its counter snapshot and wall
    time home so the parent can aggregate per-worker metrics.
    """
    cst, config, items, strict = payload
    t0 = time.perf_counter()
    comp = IntraProcessCompressor(cst, config=config)
    report = QuarantineReport()
    for rank, stream in items:
        _ingest_or_quarantine(comp, rank, stream, strict, report)
    elapsed = time.perf_counter() - t0
    return (
        [
            (rank, comp.ctt(rank))
            for rank, _stream in items
            if rank in comp._states
        ],
        [(q.rank, q.error, q.events) for q in report],
        comp.metrics_counters(),
        elapsed,
    )


def _resolve_workers(workers) -> int:
    if workers in (None, 0, 1):
        return 1
    if workers == "auto":
        return os.cpu_count() or 1
    n = int(workers)
    return n if n > 1 else 1


def _resolve_transport(transport: str, fault_plan) -> str:
    """Pick the parallel transport.  ``auto`` prefers shm when the
    platform can fork, except when a fault plan targets the intra pool:
    injected pool faults exercise the resilient executor's retry ladder,
    so they route to it directly rather than through the shm fallback."""
    if transport not in ("auto", "shm", "pickle"):
        raise ValueError(f"unknown transport {transport!r}")
    if transport != "auto":
        return transport
    if not fork_available():
        return "pickle"
    if fault_plan is not None and fault_plan.wants_stage("intra"):
        return "pickle"
    return "shm"


def _transport_blob(stream):
    """The shm wire form of one rank's stream: packed bytes.  Lists are
    encoded here (capture-time packing — ``StreamCaptureSink(packed=
    True)`` — avoids even this); packed sources are passed through."""
    if isinstance(stream, packed.PackedStream):
        return stream.to_bytes()
    if packed.is_packed(stream):
        return bytes(stream) if not isinstance(stream, bytes) else stream
    return packed.encode_stream(stream).to_bytes()


def _absorb_shard_results(
    comp: IntraProcessCompressor,
    results,
    stream_by_rank: dict,
    registry,
) -> None:
    """Fold worker shard results (CTTs, quarantine metadata, counters,
    wall times) into the parent compressor — shared by the pickle and
    shm transports, which ship the identical result tuple shape."""
    for shard_result, shard_quarantined, shard_counters, shard_seconds in results:
        for rank, ctt in shard_result:
            comp._states[rank] = _RankState(ctt=ctt, rank=rank)
        for rank, error, nevents in shard_quarantined:
            comp.quarantine.add(
                QuarantinedRank(
                    rank=rank,
                    stage="intra",
                    error=error,
                    events=nevents,
                    raw_stream=_raw_stream_of(stream_by_rank.get(rank)),
                )
            )
        comp.absorb_metrics_counters(shard_counters)
        if registry is not None:
            registry.observe("intra.worker_seconds", shard_seconds)


class ShmCompressSession:
    """A warm shared-memory compression pool bound to one ``(cst,
    config, strict)`` triple.

    Workers fork lazily (on the first job routed to each) and persist
    across :meth:`compress` calls, so repeated compressions (the bench's
    steady-state measurement, long-lived services re-compressing
    captures, a CLI invocation compressing more than once) pay
    fork/teardown once.  Each call streams packed rank blobs through
    the per-worker rings and assembles a fresh
    :class:`IntraProcessCompressor` — byte-identical to serial.

    :func:`compress_streams` reuses one process-wide session per
    ``(cst, config, strict)`` by default — see
    :func:`shared_compress_session`.  :meth:`setup_components` breaks
    the one-time warm-up cost into ``fork`` / ``ring_alloc`` /
    ``warmup`` for the bench gauges.
    """

    #: Session rings are sized to pre-stage a whole typical rank blob:
    #: a ring smaller than one blob forces the worker's big read to
    #: stall mid-payload on the parent's refill cadence (one sleep
    #: quantum per ring-full), which serializes the pipeline on busy
    #: machines.  Memory is cheap here — rings materialize lazily and
    #: untouched pages are never faulted in.
    RING_CAPACITY = 8 << 20

    def __init__(
        self,
        cst: CSTNode,
        config: CypressConfig | None = None,
        workers: int = 2,
        *,
        strict: bool = False,
        ring_capacity: int | None = None,
        fault_plan=None,
    ) -> None:
        self.cst = cst
        self.config = config if config is not None else CypressConfig()
        self.strict = strict
        self.workers = max(1, int(workers))
        cfg, is_strict = self.config, self.strict

        def job(items):
            # Fork-inherited closure: cst/config never cross a pickle.
            t0 = time.perf_counter()
            comp = IntraProcessCompressor(cst, config=cfg)
            report = QuarantineReport()
            ranks = []
            for rank, blob in items:
                ranks.append(rank)
                _ingest_or_quarantine(comp, rank, blob, is_strict, report)
            elapsed = time.perf_counter() - t0
            return (
                [(r, comp.ctt(r)) for r in ranks if r in comp._states],
                [(q.rank, q.error, q.events) for q in report],
                comp.metrics_counters(),
                elapsed,
            )

        self._pool = ShmPool(
            job,
            stage="intra",
            workers=self.workers,
            ring_capacity=(
                ring_capacity if ring_capacity is not None
                else self.RING_CAPACITY
            ),
            fault_plan=fault_plan,
            hang_seconds=(
                fault_plan.hang_seconds if fault_plan is not None else 60.0
            ),
        )
        self.warmup_seconds: float | None = None

    @property
    def closed(self) -> bool:
        return self._pool.closed

    def ensure_workers(self, n: int) -> None:
        """Raise the session's worker capacity to at least ``n`` —
        free until a run actually routes jobs there (lazy forking)."""
        n = int(n)
        if n > self.workers:
            self.workers = n
            self._pool.ensure_workers(n)

    def setup_components(self) -> dict[str, float]:
        """One-time setup cost actually paid so far, by component:
        ``ring_alloc`` and ``fork`` (accumulated per materialized
        worker) plus ``warmup`` — the wall time of the first job wave,
        which rides on cold caches and page-faults the rings in."""
        out = dict(self._pool.setup_seconds)
        out["warmup"] = self.warmup_seconds or 0.0
        return out

    def run_shards(self, shards, timeout: float | None = None) -> list:
        """Run pre-built shards (lists of ``(rank, stream)`` items) and
        return the raw worker result tuples in shard order."""
        jobs = [
            [(rank, _transport_blob(stream)) for rank, stream in shard]
            for shard in shards
        ]
        first = self.warmup_seconds is None
        t0 = time.perf_counter() if first else 0.0
        results = self._pool.run(jobs, timeout=timeout)
        if first:
            self.warmup_seconds = time.perf_counter() - t0
        return results

    def compress(
        self, streams: dict, timeout: float | None = None
    ) -> IntraProcessCompressor:
        """Compress ``streams`` (rank → capture list / PackedStream /
        packed blob) on the warm pool."""
        comp = IntraProcessCompressor(self.cst, config=self.config)
        items = sorted(streams.items())
        if not items:
            return comp
        # More shards than cores buys no parallelism, only ring/result
        # overhead and scheduler churn — right-size to the machine.
        nshards = min(self.workers, len(items), max(1, os.cpu_count() or 1))
        chunk = -(-len(items) // nshards)
        shards = [items[i : i + chunk] for i in range(0, len(items), chunk)]
        results = self.run_shards(shards, timeout=timeout)
        _absorb_shard_results(comp, results, dict(items), obs.active())
        return comp

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "ShmCompressSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Process-wide warm sessions, keyed by ``(id(cst), config, strict)``.
#: Each entry keeps a strong reference to its CST so the id can never
#: alias a collected object; ``atexit`` tears the pools down.  The
#: config is part of the key so callers alternating configs on one CST
#: (the differential matrix, ``repro verify``) each keep their own warm
#: pool instead of re-forking on every alternation.
_shared_sessions: dict[tuple, tuple] = {}


def shared_compress_session(
    cst: CSTNode,
    config: CypressConfig | None = None,
    *,
    strict: bool = False,
    workers: int = 2,
) -> ShmCompressSession:
    """The process-wide warm :class:`ShmCompressSession` for ``(cst,
    config, strict)`` — created on first use, reused (and grown to
    ``workers`` capacity, lazily) afterwards.

    This is what makes repeated :func:`compress_streams` calls cheap by
    default: one CLI invocation (``repro verify`` compresses more than
    once; the differential matrix dozens of times) forks its shm
    workers once — and each distinct config on a CST keeps its *own*
    warm session, so alternating configs never thrash the pool.  Raises
    :class:`~repro.core.respool.ShmPoolError` when the platform cannot
    fork.
    """
    cfg = config if config is not None else CypressConfig()
    key = (id(cst), cfg, bool(strict))
    entry = _shared_sessions.get(key)
    if entry is not None:
        e_cst, sess = entry
        if e_cst is cst and not sess.closed:
            sess.ensure_workers(workers)
            return sess
        sess.close()
        del _shared_sessions[key]
    sess = ShmCompressSession(cst, config=cfg, workers=workers, strict=strict)
    _shared_sessions[key] = (cst, sess)
    return sess


def _discard_shared_session(
    cst: CSTNode, config: CypressConfig, strict: bool
) -> None:
    entry = _shared_sessions.pop((id(cst), config, bool(strict)), None)
    if entry is not None:
        entry[1].close()


def close_shared_sessions() -> None:
    """Close every cached warm session (tests; process shutdown)."""
    for _cst, sess in list(_shared_sessions.values()):
        sess.close()
    _shared_sessions.clear()


atexit.register(close_shared_sessions)


def compress_streams(
    cst: CSTNode,
    streams: dict[int, list],
    config: CypressConfig | None = None,
    workers: int | str | None = None,
    parallel_threshold: int = 2,
    *,
    strict: bool = False,
    retries: int = 1,
    task_timeout: float | None = None,
    fault_plan=None,
    transport: str = "auto",
    session: "ShmCompressSession | None" = None,
    nranks: int | None = None,
) -> IntraProcessCompressor:
    """Compress captured per-rank streams into an
    :class:`IntraProcessCompressor`, optionally sharding ranks over a
    ``multiprocessing`` pool (``workers`` as an int or ``"auto"``).

    Rank states are fully independent, so the parallel result is
    **byte-identical** to serial in-line compression; fewer than
    ``parallel_threshold`` ranks compress serially.

    Fault tolerance (docs/INTERNALS.md §7): by default
    (``strict=False``) a rank whose stream mismatches the CST is
    *quarantined* — recorded on the returned compressor's
    ``.quarantine`` report with its raw capture, while every healthy
    rank compresses normally; ``strict=True`` restores the fail-fast
    :class:`~repro.core.errors.StreamMismatchError` raise.  Worker-pool
    failures (crash, kill, hang under ``task_timeout``) are retried
    ``retries`` times with backoff and then re-executed serially in the
    parent — loudly (``RuntimeWarning`` + ``faults.*`` counters), never
    silently.  ``fault_plan`` lets tests/CI inject worker faults.

    ``transport`` selects the parallel hand-off: ``"shm"`` streams
    packed event bytes through shared-memory rings to a warm worker
    pool (docs/INTERNALS.md §11), ``"pickle"`` is the fork+pipe
    resilient executor, and ``"auto"`` (default) picks shm wherever the
    platform can fork.  Any shm failure falls back to the pickle
    transport loudly (``RuntimeWarning`` + ``faults.transport_fallbacks``)
    — the output is byte-identical on every transport, serial included.

    The shm path runs on a **warm session** reused across calls: by
    default the process-wide :func:`shared_compress_session` for this
    ``(cst, config, strict)`` (fault-plan runs build a private,
    per-call session instead), or an explicit ``session=`` — which must
    have been built for the same ``cst``/``config``/``strict`` and is
    left open for the caller to close.

    ``streams`` values may be capture lists, :class:`~repro.core.packed.
    PackedStream` objects, or packed blobs (``bytes``) — packed sources
    skip the encode step on the shm path and decode columnar on every
    path.

    With ``config.memory_budget_bytes`` set the call runs the bounded
    serial path regardless of ``workers``: each rank is sealed and
    incrementally folded into a partial merged tree as its stream ends,
    cold ranks spill under budget pressure, and the result is read via
    ``comp.merged(...)`` — byte-identical to the unbudgeted pipeline
    (``nranks`` is forwarded to the merge's damaged-delta repair and
    must match the eventual ``merge_all(..., nranks=...)``).
    """
    comp = IntraProcessCompressor(cst, config=config)
    items = sorted(streams.items())
    nworkers = _resolve_workers(workers)
    if comp.config.memory_budget_bytes is not None:
        # Bounded-memory mode is serial by construction: the incremental
        # fold must absorb ranks in ascending order through the shared
        # partial tree, which sharded eager merging cannot reproduce.
        nworkers = 1
        comp.enable_incremental_fold(
            nranks=nranks, domain=[rank for rank, _ in items]
        )
    registry = obs.active()
    if nworkers > 1 and len(items) >= max(2, parallel_threshold):
        nworkers = min(nworkers, len(items))
        chunk = -(-len(items) // nworkers)
        stream_by_rank = dict(items)
        results = None
        nshards = -(-len(items) // chunk)
        if _resolve_transport(transport, fault_plan) == "shm":
            shards = [
                items[i : i + chunk] for i in range(0, len(items), chunk)
            ]
            if session is not None and (
                session.cst is not cst
                or session.config != comp.config
                or session.strict != strict
            ):
                raise ValueError(
                    "session= was built for a different "
                    "(cst, config, strict) triple"
                )
            own: ShmCompressSession | None = None
            try:
                sess = session
                if sess is None:
                    if fault_plan is not None:
                        own = sess = ShmCompressSession(
                            cst, config=comp.config, workers=len(shards),
                            strict=strict, fault_plan=fault_plan,
                        )
                    else:
                        sess = shared_compress_session(
                            cst, comp.config, strict=strict,
                            workers=len(shards),
                        )
                else:
                    sess.ensure_workers(len(shards))
                results = sess.run_shards(shards, timeout=task_timeout)
            except (ShmPoolError, *packed.ENCODE_ERRORS) as exc:
                if session is None and own is None:
                    # The shared session is now suspect (dead worker,
                    # poisoned ring): drop it so the next call starts
                    # clean instead of inheriting the failure.
                    _discard_shared_session(cst, comp.config, strict)
                warnings.warn(
                    f"intra: shm transport failed ({exc}); falling back to "
                    "the pickle transport",
                    RuntimeWarning,
                    stacklevel=2,
                )
                if registry is not None:
                    registry.counter_add("faults.transport_fallbacks", 1)
                results = None
            finally:
                if own is not None:
                    own.close()
        if results is None:
            payloads = [
                (cst, comp.config, items[i : i + chunk], strict)
                for i in range(0, len(items), chunk)
            ]
            results = run_tasks(
                _compress_shard,
                payloads,
                stage="intra",
                workers=len(payloads),
                retries=retries,
                timeout=task_timeout,
                fault_plan=fault_plan,
            )
        _absorb_shard_results(comp, results, stream_by_rank, registry)
        if registry is not None:
            registry.gauge_max("intra.workers", float(nshards))
    else:
        for rank, stream in items:
            _ingest_or_quarantine(comp, rank, stream, strict, comp.quarantine)
            comp.seal_rank(rank)  # no-op unless the fold is armed
    if comp.quarantine and registry is not None:
        registry.counter_add("faults.quarantined_ranks", len(comp.quarantine))
    return comp
