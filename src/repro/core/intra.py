"""Intra-process trace compression (paper §IV-A).

This is CYPRESS's on-the-fly compressor: a :class:`~repro.mpisim.pmpi.TraceSink`
that maintains, per rank, a CTT mirroring the static CST plus a cursor —
"the pointer *p* always points to the CTT vertex that is currently being
executed".  Structural markers move the cursor; each MPI event is compared
only against the last record(s) at its own leaf vertex (O(1) per event,
the paper's headline intra-process advantage).

Cursor mechanics
----------------

The cursor is a stack of frames (loop activations, branch-path entries).
Child lookup is *ordered with wrap-around*: every vertex keeps a search
position that advances left-to-right as its children execute and resets at
each loop iteration — this disambiguates multiple inlined copies of the
same function under one parent (same ``ast_id`` twice among siblings).

Structures that were pruned from this inlined copy (they contain no MPI
calls here, but the same source-level structure survived in another copy,
so markers are still emitted) push *null frames*: the markers are consumed
and ignored, and by the pruning invariant no MPI event can occur inside.

Recursion (pseudo loops, paper Fig. 8): re-entering an active pseudo-loop
frame starts a new iteration — frames pushed above it since the last entry
are saved aside and restored when the recursive call returns, linearising
the recursion tree into the approximate loop the paper describes.

Wildcard receives (paper §IV-A "Non-Deterministic Events"): a nonblocking
``MPI_Irecv(ANY_SOURCE)`` is cached as a *pending* record; compression is
delayed until the request completes and the actual source is known.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mpisim.events import NONBLOCKING_OPS, CommEvent
from repro.mpisim.pmpi import TraceSink
from repro.static.cst import BRANCH, CALL, LOOP, CSTNode

from .ctt import CTT, CTTVertex
from .ranks import encode_peer
from .records import CompressedRecord, make_key
from .timing import MEANSTD, TimeStats


class CompressionError(Exception):
    """The event/marker stream did not match the static CST — indicates a
    static/dynamic inconsistency (a bug, or an un-instrumented program)."""


@dataclass(frozen=True)
class CypressConfig:
    """Tunables of the dynamic module (ablation switches).

    ``window`` controls leaf-record matching.  ``None`` (default) merges a
    new event into *any* existing record with the same key — exact because
    records carry stride-compressed occurrence-index sequences, and the
    right choice for parameter patterns that cycle (MG's per-level message
    sizes).  An integer reproduces the paper's bounded scan: the paper's
    own implementation compares only against the last record
    (``window=1``, §IV-A) and mentions larger sliding windows as the
    cost/effectiveness trade-off — the ablation bench sweeps this.
    """

    window: int | None = None  # None = unbounded keyed merge
    timing_mode: str = MEANSTD  # 'meanstd' or 'hist'
    relative_ranks: bool = True  # relative peer encoding (paper §IV-B)


@dataclass
class _Frame:
    kind: str  # 'loop' or 'branch'
    vertex: CTTVertex | None  # None = null frame (structure pruned here)
    iters: int = 0


@dataclass
class _RankState:
    ctt: CTT
    stack: list[_Frame] = field(default_factory=list)
    recursion_saved: list[list[_Frame] | None] = field(default_factory=list)
    req_gid: dict[int, int] = field(default_factory=dict)
    pending: dict[int, tuple[CTTVertex, CompressedRecord, CommEvent]] = field(
        default_factory=dict
    )
    last_event_end: float = 0.0

    def top_vertex(self) -> CTTVertex | None:
        if not self.stack:
            return self.ctt.root
        return self.stack[-1].vertex


class IntraProcessCompressor(TraceSink):
    """CYPRESS dynamic module, intra-process phase."""

    wants_markers = True

    def __init__(self, cst: CSTNode, config: CypressConfig | None = None) -> None:
        self.cst = cst
        self.config = config or CypressConfig()
        self._states: dict[int, _RankState] = {}

    # ------------------------------------------------------------------

    def state(self, rank: int) -> _RankState:
        st = self._states.get(rank)
        if st is None:
            st = _RankState(ctt=CTT(self.cst, rank))
            self._states[rank] = st
        return st

    def ranks(self) -> list[int]:
        return sorted(self._states)

    def ctt(self, rank: int) -> CTT:
        return self.state(rank).ctt

    def approx_bytes(self, rank: int) -> int:
        """Per-rank memory/size estimate of the compressed trace."""
        return self.state(rank).ctt.approx_bytes()

    def total_bytes(self) -> int:
        return sum(self.approx_bytes(r) for r in self._states)

    # ------------------------------------------------------------------
    # Structural markers.

    def on_loop_push(self, rank: int, ast_id: int) -> None:
        st = self.state(rank)
        self._push_loop(st, ast_id)

    def _push_loop(self, st: _RankState, ast_id: int) -> _Frame:
        cur = st.top_vertex()
        frame = _Frame(kind="loop", vertex=None)
        if cur is not None:
            found = cur.find_child(
                lambda c: c.kind == LOOP and c.ast_id == ast_id, cur.search_pos
            )
            if found is not None:
                child, idx = found
                cur.search_pos = idx + 1
                child.search_pos = 0
                frame.vertex = child
        st.stack.append(frame)
        return frame

    def on_loop_iter(self, rank: int, ast_id: int) -> None:
        st = self.state(rank)
        if not st.stack or st.stack[-1].kind != "loop":
            raise CompressionError(
                f"rank {rank}: loop iteration marker {ast_id} with no open loop"
            )
        frame = st.stack[-1]
        frame.iters += 1
        if frame.vertex is not None:
            frame.vertex.search_pos = 0

    def on_loop_pop(self, rank: int, ast_id: int) -> None:
        st = self.state(rank)
        if not st.stack or st.stack[-1].kind != "loop":
            raise CompressionError(
                f"rank {rank}: loop exit marker {ast_id} with no open loop"
            )
        frame = st.stack.pop()
        if frame.vertex is not None:
            frame.vertex.loop_counts.append(frame.iters)

    def on_branch_enter(self, rank: int, ast_id: int, path: int) -> None:
        st = self.state(rank)
        cur = st.top_vertex()
        frame = _Frame(kind="branch", vertex=None)
        if cur is not None:
            group = cur.find_group(ast_id, cur.search_pos)
            if group is not None:
                cur.search_pos = group.last_index + 1
                visit = group.visit_counter
                group.visit_counter += 1
                path_vertex = group.paths.get(path)
                if path_vertex is not None:
                    path_vertex.visits.append(visit)
                    path_vertex.search_pos = 0
                    frame.vertex = path_vertex
        st.stack.append(frame)

    def on_branch_exit(self, rank: int, ast_id: int) -> None:
        st = self.state(rank)
        if not st.stack or st.stack[-1].kind != "branch":
            raise CompressionError(
                f"rank {rank}: branch exit marker {ast_id} with no open branch"
            )
        st.stack.pop()

    def on_recurse_enter(self, rank: int, ast_id: int) -> None:
        st = self.state(rank)
        # Find an active pseudo-loop frame for this function.
        for i in range(len(st.stack) - 1, -1, -1):
            frame = st.stack[i]
            if (
                frame.kind == "loop"
                and frame.vertex is not None
                and frame.vertex.ast_id == ast_id
            ):
                # New iteration of the approximate loop: set aside the
                # frames opened since, restore them when this call returns.
                st.recursion_saved.append(st.stack[i + 1 :])
                del st.stack[i + 1 :]
                frame.iters += 1
                frame.vertex.search_pos = 0
                return
        # Outermost entry: behaves like loop push + first iteration.
        frame = self._push_loop(st, ast_id)
        frame.iters = 1
        st.recursion_saved.append(None)

    def on_recurse_exit(self, rank: int, ast_id: int) -> None:
        st = self.state(rank)
        if not st.recursion_saved:
            raise CompressionError(
                f"rank {rank}: recursion exit marker {ast_id} without entry"
            )
        saved = st.recursion_saved.pop()
        if saved is None:
            self.on_loop_pop(rank, ast_id)
        else:
            st.stack.extend(saved)

    # ------------------------------------------------------------------
    # Communication events.

    def on_event(self, rank: int, ev: CommEvent) -> None:
        st = self.state(rank)
        cur = st.top_vertex()
        if cur is None:
            raise CompressionError(
                f"rank {rank}: event {ev.op} inside a pruned structure"
            )
        found = cur.find_child(
            lambda c: c.kind == CALL and c.op == ev.op, cur.search_pos
        )
        if found is None:
            raise CompressionError(
                f"rank {rank}: no CST leaf for {ev.op} under vertex "
                f"gid={cur.gid} ({cur.kind})"
            )
        leaf, idx = found
        cur.search_pos = idx + 1
        visit = leaf.leaf_visits
        leaf.leaf_visits += 1

        if ev.op in NONBLOCKING_OPS:
            st.req_gid[ev.req] = leaf.gid
        req_gids: tuple[int, ...] = ()
        if ev.reqs:
            req_gids = tuple(st.req_gid.get(r, -1) for r in ev.reqs)
            # An event listing request ids consumes them (Wait*/successful
            # Test) — evict so the table stays bounded by the number of
            # in-flight requests and a runtime that reuses a request id
            # never resolves it to the stale creator GID.
            for r in ev.reqs:
                st.req_gid.pop(r, None)

        gap = max(0.0, ev.time_start - st.last_event_end)
        st.last_event_end = max(st.last_event_end, ev.time_start + ev.duration)

        if ev.op == "MPI_Irecv" and ev.wildcard:
            # Delay compression until the source is known (paper §IV-A).
            record = CompressedRecord(key=None, pending=True)
            record.add_occurrence(visit, ev.duration, gap)
            leaf.records.append(record)
            st.pending[ev.req] = (leaf, record, ev)
            return

        key = self._event_key(ev, rank, req_gids)
        self._add_record(leaf, key, visit, ev.duration, gap)

    def _event_key(
        self,
        ev: CommEvent,
        rank: int,
        req_gids: tuple[int, ...],
        peer: int | None = None,
        nbytes: int | None = None,
    ):
        """The single source of truth for record keys.  ``peer``/``nbytes``
        override the event's values when a wildcard receive resolves — the
        resolved path must produce exactly the key shape of the eager path
        (including ``result_comm``), or completed wildcards would merge
        under keys that can never match non-deferred records."""
        relative = self.config.relative_ranks
        return make_key(
            op=ev.op,
            peer_enc=encode_peer(ev.peer if peer is None else peer, rank, relative),
            peer2_enc=encode_peer(ev.peer2, rank, relative),
            tag=ev.tag,
            tag2=ev.tag2,
            nbytes=ev.nbytes if nbytes is None else nbytes,
            nbytes2=ev.nbytes2,
            comm=ev.comm,
            root=ev.root,
            wildcard=ev.wildcard,
            req_gids=req_gids,
            result_comm=ev.result_comm,
        )

    def _add_record(
        self,
        leaf: CTTVertex,
        key,
        visit: int,
        duration: float,
        gap: float,
    ) -> None:
        records = leaf.records
        window = self.config.window
        if window is None:
            candidate = leaf.record_index.get(key)
            if candidate is not None:
                candidate.add_occurrence(visit, duration, gap)
                return
        else:
            for back in range(1, min(window, len(records)) + 1):
                candidate = records[-back]
                if candidate.pending:
                    continue
                if candidate.key == key:
                    candidate.add_occurrence(visit, duration, gap)
                    return
        record = CompressedRecord(
            key=key,
            duration=TimeStats(mode=self.config.timing_mode),
            pre_gap=TimeStats(mode=self.config.timing_mode),
        )
        record.add_occurrence(visit, duration, gap)
        records.append(record)
        if window is None:
            leaf.record_index[key] = record

    def on_request_complete(
        self, rank: int, rid: int, source: int, nbytes: int, when: float
    ) -> None:
        st = self.state(rank)
        entry = st.pending.pop(rid, None)
        if entry is None:
            return
        leaf, record, ev = entry
        record.key = self._event_key(ev, rank, req_gids=(), peer=source, nbytes=nbytes)
        record.pending = False
        pos = None
        for i in range(len(leaf.records) - 1, -1, -1):
            if leaf.records[i] is record:
                pos = i
                break
        if pos is None:  # pragma: no cover - record must be present
            return
        window = self.config.window
        if window is None:
            other = leaf.record_index.get(record.key)
            if other is not None and other is not record:
                other.merge_from(record)
                del leaf.records[pos]
            else:
                leaf.record_index[record.key] = record
            return
        # Bounded backward scan (the paper-faithful variant).
        lo = max(0, pos - window)
        for i in range(pos - 1, lo - 1, -1):
            other = leaf.records[i]
            if other.pending:
                continue
            if other.key == record.key:
                other.merge_from(record)
                del leaf.records[pos]
                return

    def on_finalize(self, rank: int) -> None:
        st = self.state(rank)
        if st.pending:
            raise CompressionError(
                f"rank {rank}: {len(st.pending)} wildcard receive(s) never completed"
            )
