"""Relative rank encoding (paper §IV-B, adopting ScalaTrace's method).

To let records from different ranks merge, peer ranks are stored relative
to the owner: ``dest = myrank + 1`` encodes as ``+1`` on every rank of a
stencil, so all ranks produce the identical record.  Special values
(``ANY_SOURCE`` etc., and the "no peer" sentinel) pass through unchanged.

Encoded peers are tuples so they can never be confused with absolute
ranks: ``("rel", delta)`` or ``("abs", rank)``.
"""

from __future__ import annotations

from repro.mpisim.datatypes import ANY_SOURCE
from repro.mpisim.events import NO_PEER

REL = "rel"
ABS = "abs"

EncodedPeer = tuple[str, int]


def encode_peer(peer: int, rank: int, relative: bool = True) -> EncodedPeer:
    """Encode ``peer`` as seen from ``rank``.

    ``relative=False`` is the ablation switch: always store absolute ranks
    (records from different ranks then rarely merge).
    """
    if peer in (NO_PEER, ANY_SOURCE) or peer < 0:
        return (ABS, peer)
    if relative:
        return (REL, peer - rank)
    return (ABS, peer)


def decode_peer(encoded: EncodedPeer, rank: int) -> int:
    mode, value = encoded
    if mode == ABS:
        return value
    if mode == REL:
        return rank + value
    raise ValueError(f"bad encoded peer {encoded!r}")
