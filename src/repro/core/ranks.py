"""Relative rank encoding (paper §IV-B, adopting ScalaTrace's method).

To let records from different ranks merge, peer ranks are stored relative
to the owner: ``dest = myrank + 1`` encodes as ``+1`` on every rank of a
stencil, so all ranks produce the identical record.  Special values
(``ANY_SOURCE`` etc., and the "no peer" sentinel) pass through unchanged.

Encoded peers are tuples so they can never be confused with absolute
ranks: ``("rel", delta)`` or ``("abs", rank)``.
"""

from __future__ import annotations

from repro.mpisim.datatypes import ANY_SOURCE
from repro.mpisim.events import NO_PEER

REL = "rel"
ABS = "abs"

EncodedPeer = tuple[str, int]

# Interned encodings for the values that occur on virtually every event
# (sentinels like NO_PEER, and the small deltas of stencil codes).  The
# tracer calls encode_peer twice per event; returning a cached tuple
# instead of allocating one keeps the per-event key cost flat.
_INTERN_LO, _INTERN_HI = -136, 136
_ABS_CACHE = {p: (ABS, p) for p in range(_INTERN_LO, _INTERN_HI + 1)}
_REL_CACHE = {d: (REL, d) for d in range(_INTERN_LO, _INTERN_HI + 1)}


def encode_peer(peer: int, rank: int, relative: bool = True) -> EncodedPeer:
    """Encode ``peer`` as seen from ``rank``.

    ``relative=False`` is the ablation switch: always store absolute ranks
    (records from different ranks then rarely merge).
    """
    if peer in (NO_PEER, ANY_SOURCE) or peer < 0:
        cached = _ABS_CACHE.get(peer)
        return cached if cached is not None else (ABS, peer)
    if relative:
        cached = _REL_CACHE.get(peer - rank)
        return cached if cached is not None else (REL, peer - rank)
    cached = _ABS_CACHE.get(peer)
    return cached if cached is not None else (ABS, peer)


def decode_peer(
    encoded: EncodedPeer, rank: int, nranks: int | None = None
) -> int:
    """Decode ``encoded`` as seen from ``rank``.

    With ``nranks`` given, a relative decode landing outside
    ``[0, nranks)`` raises :class:`ValueError` — a REL result can never
    legally be a sentinel (sentinels are stored absolute), so e.g.
    rank 0 + delta −1 → −1 is an overflow, not ``ANY_SOURCE``.
    """
    mode, value = encoded
    if mode == ABS:
        return value
    if mode == REL:
        peer = rank + value
        if nranks is not None and not 0 <= peer < nranks:
            raise ValueError(
                f"relative peer {encoded!r} decodes to {peer} on rank "
                f"{rank}, outside [0, {nranks})"
            )
        return peer
    raise ValueError(f"bad encoded peer {encoded!r}")


def try_decode_peer(
    encoded: EncodedPeer, rank: int, nranks: int | None = None
) -> tuple[int, bool]:
    """Decode without raising: returns ``(peer, in_range)``.

    ``in_range`` is ``False`` when a REL decode lands outside
    ``[0, nranks)`` (a negative REL decode is illegal even without
    ``nranks``), or an ABS value is neither a valid rank nor a legal
    sentinel (``NO_PEER``/``ANY_SOURCE``).
    """
    mode, value = encoded
    if mode == REL:
        peer = rank + value
        if peer < 0:
            return peer, False
        return peer, nranks is None or peer < nranks
    if mode == ABS:
        if value in (NO_PEER, ANY_SOURCE):
            return value, True
        if value < 0:
            return value, False
        return value, nranks is None or value < nranks
    raise ValueError(f"bad encoded peer {encoded!r}")


def rel_decode_bounds(
    delta: int, ranks: list[int]
) -> tuple[int, int]:
    """Min/max decode of a REL delta over a sorted rank set — the O(1)
    boundary check the invariant checker uses for merged groups."""
    return ranks[0] + delta, ranks[-1] + delta
