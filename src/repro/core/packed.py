"""Packed binary encoding of captured callback streams.

A captured stream (:class:`repro.mpisim.pmpi.StreamCaptureSink`) is a
per-rank list of opcode tuples.  Shipping those lists to pool workers
through ``pickle`` costs more than the compression work itself (the
seed's ``BENCH_intra.json`` showed the parallel path at ~0.1× the serial
rate).  This module defines a fixed-width columnar encoding whose
hand-off is a memcpy:

* **codes** — one byte per captured item (the opcode), in stream order;
* **markers** — one ``<qq`` record per structural item (loop/branch/
  recurse markers and ``OP_FINALIZE``): ``(ast_id, path_or_0)``;
* **events** — one 139-byte record per ``OP_EVENT`` (see
  ``EVENT_STRUCT``): interned-op index, then a contiguous *param
  window* (the fields the compressor's key-interning cache compares,
  so a cache-hit test is one raw-bytes compare), then timing, then the
  cold fields only a cache miss decodes; variable-length tuples
  (``reqs``, ``req_gids``) are stored as ``(offset, length)`` slices
  into the arena;
* **req-completes** — one ``<qqqd`` record per ``OP_REQ_COMPLETE``:
  ``(rid, source, nbytes, when)``;
* **arena** — a flat ``int64`` array holding every variable-length
  tuple's elements.

Decoding never scans byte-by-byte: each column is a homogeneous struct
array unpacked with ``struct.iter_unpack`` (C speed), then woven back
into stream order by walking the codes column.  Integer fields are
``int64`` — the codec's documented domain; ``struct`` raises on
anything wider, it is never silently truncated.

The blob layout is::

    magic  b"CYPK" | version u8
    nops u16 | nops × (len u16, utf-8 op name)
    counts <QQQQQ: nitems, nevents, nmarkers, nreqc, arena_len
    codes[nitems] | markers[nmarkers] | events[nevents]
    reqc[nreqc]   | arena[arena_len × int64]

Every structural opcode (including ``OP_FINALIZE``) consumes exactly
one marker record, so the weave needs no per-opcode special cases.
"""

from __future__ import annotations

import struct
from array import array

from repro.mpisim.events import NONBLOCKING_OPS, CommEvent
from repro.mpisim.pmpi import (
    OP_BRANCH_ENTER,
    OP_BRANCH_EXIT,
    OP_EVENT,
    OP_FINALIZE,
    OP_LOOP_ITER,
    OP_LOOP_POP,
    OP_LOOP_PUSH,
    OP_RECURSE_ENTER,
    OP_RECURSE_EXIT,
    OP_REQ_COMPLETE,
)

MAGIC = b"CYPK"
VERSION = 1

#: Event record: op index, then the **param window** — every field that
#: participates in the compressor's key-interning cache comparison, laid
#: out contiguously so the packed ingest fast path can test cache hits
#: with one raw-bytes compare instead of decoding the record — then
#: timing, then the cold fields only a cache miss needs.  Field order
#: (by unpacked index):
#: 0 op_idx | param window: 1 peer, 2 nbytes, 3 tag, 4 peer2, 5 tag2,
#: 6 nbytes2, 7 comm, 8 root, 9 result_comm, 10 wildcard, 11 reqs_len |
#: 12 time_start, 13 duration | cold: 14 rank, 15 seq, 16 req,
#: 17 reqs_off, 18 gids_off, 19 gids_len.
EVENT_STRUCT = struct.Struct("<H" "qqqqqqqqqBI" "dd" "qqq" "QQI")
#: Byte span of the param window inside an event record.  Equal window
#: bytes mean equal param fields (fixed-width two's-complement int64s,
#: canonical 0/1 wildcard), and ``reqs_len`` inside the window means a
#: cached empty-``reqs`` window can never match an event carrying
#: requests.
EVENT_PARAMS_OFF = 2
EVENT_PARAMS_END = EVENT_PARAMS_OFF + 9 * 8 + 1 + 4
#: ``(time_start, duration)`` doubles, directly after the window.
EVENT_TIMES = struct.Struct("<dd")
EVENT_TIMES_OFF = EVENT_PARAMS_END
#: Byte offsets of the fields a run-eligibility test reads without a
#: full decode: the wildcard flag and ``reqs_len`` inside the window,
#: and ``gids_len`` at the record tail.
EVENT_WILDCARD_OFF = EVENT_PARAMS_OFF + 9 * 8
EVENT_REQSLEN_OFF = EVENT_WILDCARD_OFF + 1
EVENT_GIDSLEN_OFF = EVENT_STRUCT.size - 4
#: One-sweep decoder for the timing columns: skips to the ``<dd`` pair
#: of each record so ``iter_unpack`` walks the whole event section at C
#: speed without touching any other field.
EVENT_TIMES_SWEEP = struct.Struct(
    "<%dxdd%dx" % (EVENT_TIMES_OFF, EVENT_STRUCT.size - EVENT_TIMES_OFF - 16)
)
#: Cold-field offsets the run-collapsed ingest path reads individually:
#: the request handle a nonblocking call registers, and the arena offset
#: of a request-consuming call's ``reqs`` span (its length lives in the
#: param window at ``EVENT_REQSLEN_OFF``).
EVENT_REQ_OFF = EVENT_TIMES_OFF + 16 + 16  # after (start, dur), rank, seq
EVENT_REQS_PTR_OFF = EVENT_REQ_OFF + 8
EVENT_REQ = struct.Struct("<q")
EVENT_REQS_PTR = struct.Struct("<Q")
MARKER_STRUCT = struct.Struct("<qq")
REQC_STRUCT = struct.Struct("<qqqd")
_COUNTS = struct.Struct("<QQQQQ")
_U16 = struct.Struct("<H")

#: Codes that carry a marker record (everything but events/req-completes).
_MARKER_CODES = frozenset(
    (
        OP_LOOP_PUSH,
        OP_LOOP_ITER,
        OP_LOOP_POP,
        OP_BRANCH_ENTER,
        OP_BRANCH_EXIT,
        OP_RECURSE_ENTER,
        OP_RECURSE_EXIT,
        OP_FINALIZE,
    )
)

#: Default decode granularity (items per chunk) for bounded-memory
#: ingest of large blobs.
CHUNK_ITEMS = 1 << 16


class PackedStreamError(ValueError):
    """Malformed packed blob (bad magic/version or truncated section)."""


#: Exceptions an encode of a hostile (e.g. fault-injected) stream can
#: raise: unknown opcodes, non-integer fields, values outside int64.
#: The shm transport treats any of these as "this stream cannot ride
#: the packed wire" and falls back to the pickle transport, whose
#: ingest-time quarantine then owns the stream.
ENCODE_ERRORS = (
    PackedStreamError,
    struct.error,
    OverflowError,
    TypeError,
    AttributeError,
    IndexError,
)


class PackedStream:
    """Append-only packed encoder for one rank's callback stream.

    Mirrors the :class:`TraceSink` callback set; ``to_bytes()`` emits
    the self-contained blob described in the module docstring.  The
    in-memory columns can also be decoded directly (``columns_of``)
    without a serialization round-trip.
    """

    __slots__ = (
        "codes",
        "markers",
        "events",
        "reqc",
        "arena",
        "ops",
        "_op_index",
        "nevents",
        "runs",
        "_run_head",
        "_run_open",
    )

    def __init__(self) -> None:
        self.codes = bytearray()
        self.markers = bytearray()
        self.events = bytearray()
        self.reqc = bytearray()
        self.arena = array("q")
        self.ops: list[str] = []
        self._op_index: dict[str, int] = {}
        self.nevents = 0
        #: Run descriptors ``(start_event_index, count)`` for maximal
        #: chains (count ≥ 2) of *consecutive stream items* that are all
        #: events with byte-equal heads (op index + param window) and
        #: run-eligible: no wildcard, no requests, no request GIDs, and
        #: a blocking op.  Any interleaved marker or request-complete
        #: splits the chain, as does any ineligible event.
        self.runs: list[tuple[int, int]] = []
        self._run_head: bytes | None = None
        self._run_open = False

    def __len__(self) -> int:
        return len(self.codes)

    # -- structural markers ---------------------------------------------

    def append_marker(self, code: int, ast_id: int, path: int = 0) -> None:
        self.codes.append(code)
        self.markers += MARKER_STRUCT.pack(ast_id, path)
        self._run_head = None
        self._run_open = False

    def append_finalize(self) -> None:
        self.append_marker(OP_FINALIZE, 0, 0)

    # -- communication events -------------------------------------------

    def append_event(self, ev: CommEvent) -> None:
        op_idx = self._op_index.get(ev.op)
        if op_idx is None:
            op_idx = self._op_index[ev.op] = len(self.ops)
            self.ops.append(ev.op)
        arena = self.arena
        reqs = ev.reqs
        if reqs:
            reqs_off = len(arena)
            arena.extend(reqs)
            reqs_len = len(reqs)
        else:
            reqs_off = reqs_len = 0
        gids = ev.req_gids
        if gids:
            gids_off = len(arena)
            arena.extend(gids)
            gids_len = len(gids)
        else:
            gids_off = gids_len = 0
        self.codes.append(OP_EVENT)
        rec = EVENT_STRUCT.pack(
            op_idx,
            ev.peer, ev.nbytes, ev.tag, ev.peer2, ev.tag2, ev.nbytes2,
            ev.comm, ev.root, ev.result_comm,
            1 if ev.wildcard else 0, reqs_len,
            ev.time_start, ev.duration,
            ev.rank, ev.seq, ev.req,
            reqs_off, gids_off, gids_len,
        )
        self.events += rec
        # Incremental run detection: the head (op index + param window)
        # is compared as raw bytes, exactly the test the ingest cache
        # performs.  Wildcards, requests and nonblocking ops never join
        # runs — each has per-event side effects beyond the stats fold.
        if (
            not reqs_len
            and not gids_len
            and not ev.wildcard
            and ev.op not in NONBLOCKING_OPS
        ):
            head = rec[:EVENT_PARAMS_END]
            if head == self._run_head:
                if self._run_open:
                    start, count = self.runs[-1]
                    self.runs[-1] = (start, count + 1)
                else:
                    self.runs.append((self.nevents - 1, 2))
                    self._run_open = True
            else:
                self._run_head = head
                self._run_open = False
        else:
            self._run_head = None
            self._run_open = False
        self.nevents += 1

    def append_request_complete(
        self, rid: int, source: int, nbytes: int, when: float
    ) -> None:
        self.codes.append(OP_REQ_COMPLETE)
        self.reqc += REQC_STRUCT.pack(rid, source, nbytes, when)
        self._run_head = None
        self._run_open = False

    # -- serialization ---------------------------------------------------

    def to_bytes(self) -> bytes:
        head = bytearray()
        head += MAGIC
        head.append(VERSION)
        head += _U16.pack(len(self.ops))
        for op in self.ops:
            raw = op.encode("utf-8")
            head += _U16.pack(len(raw))
            head += raw
        head += _COUNTS.pack(
            len(self.codes),
            self.nevents,
            len(self.markers) // MARKER_STRUCT.size,
            len(self.reqc) // REQC_STRUCT.size,
            len(self.arena),
        )
        return bytes(
            head + self.codes + self.markers + self.events + self.reqc
            + self.arena.tobytes()
        )


class Columns:
    """Decoded column view of a packed stream: raw section buffers plus
    the op table and counts.  ``events``/``markers``/``reqc`` are
    memoryviews over the struct arrays; ``arena`` is an ``int64`` array."""

    __slots__ = (
        "ops", "codes", "events", "markers", "reqc", "arena",
        "nitems", "nevents", "_runs", "events_buf", "events_off",
    )

    def __init__(self, ops, codes, events, markers, reqc, arena, runs=None,
                 events_buf=None, events_off=0):
        self.ops = ops
        self.codes = codes
        self.events = events
        self.markers = markers
        self.reqc = reqc
        self.arena = arena
        self.nitems = len(codes)
        self.nevents = len(events) // EVENT_STRUCT.size
        self._runs = runs
        #: Zero-copy alias of the events section for consumers that need
        #: ``startswith``/slice compares (the run-collapsed ingest): a
        #: bytes/bytearray object containing the section at offset
        #: ``events_off`` — the whole source blob, or the encoder's live
        #: buffer.  ``None`` when the source only offered a memoryview;
        #: consumers then fall back to one ``bytes(events)`` copy.
        self.events_buf = events_buf
        self.events_off = events_off

    @property
    def runs(self) -> list[tuple[int, int]]:
        """Run descriptors ``(start_event_index, count)``, count ≥ 2 —
        either carried over from the encoder or recovered from the raw
        columns on first access (one linear scan)."""
        if self._runs is None:
            self._runs = _scan_runs(self)
        return self._runs


def is_packed(source) -> bool:
    """True when ``source`` is a :class:`PackedStream` or a packed blob."""
    if isinstance(source, PackedStream):
        return True
    if isinstance(source, (bytes, bytearray, memoryview)):
        return bytes(source[:4]) == MAGIC
    return False


def columns_of(source) -> Columns:
    """Column view of ``source`` (a :class:`PackedStream` or a blob)."""
    if isinstance(source, PackedStream):
        return Columns(
            source.ops,
            bytes(source.codes),
            memoryview(source.events),
            memoryview(source.markers),
            memoryview(source.reqc),
            source.arena,
            runs=list(source.runs),
            events_buf=source.events,
        )
    buf = memoryview(source)
    if bytes(buf[:4]) != MAGIC:
        raise PackedStreamError("bad magic: not a packed stream")
    if buf[4] != VERSION:
        raise PackedStreamError(f"unsupported packed-stream version {buf[4]}")
    pos = 5
    (nops,) = _U16.unpack_from(buf, pos)
    pos += 2
    ops = []
    for _ in range(nops):
        (nlen,) = _U16.unpack_from(buf, pos)
        pos += 2
        ops.append(bytes(buf[pos:pos + nlen]).decode("utf-8"))
        pos += nlen
    nitems, nevents, nmarkers, nreqc, arena_len = _COUNTS.unpack_from(buf, pos)
    pos += _COUNTS.size
    need = (
        pos + nitems + nmarkers * MARKER_STRUCT.size
        + nevents * EVENT_STRUCT.size + nreqc * REQC_STRUCT.size
        + arena_len * 8
    )
    if len(buf) < need:
        raise PackedStreamError(
            f"truncated packed stream: need {need} bytes, have {len(buf)}"
        )
    codes = bytes(buf[pos:pos + nitems])
    pos += nitems
    markers = buf[pos:pos + nmarkers * MARKER_STRUCT.size]
    pos += nmarkers * MARKER_STRUCT.size
    events_off = pos
    events = buf[pos:pos + nevents * EVENT_STRUCT.size]
    pos += nevents * EVENT_STRUCT.size
    reqc = buf[pos:pos + nreqc * REQC_STRUCT.size]
    pos += nreqc * REQC_STRUCT.size
    arena = array("q")
    arena.frombytes(buf[pos:pos + arena_len * 8])
    events_buf = source if isinstance(source, (bytes, bytearray)) else None
    return Columns(ops, codes, events, markers, reqc, arena,
                   events_buf=events_buf, events_off=events_off)


def _scan_runs(cols: Columns) -> list[tuple[int, int]]:
    """Recover run descriptors from raw columns: one pass over the codes
    column, comparing each event's head bytes against its predecessor —
    the same raw-bytes test the encoder and the ingest cache use."""
    runs: list[tuple[int, int]] = []
    ebuf = cols.events
    esize = EVENT_STRUCT.size
    eligible_op = tuple(op not in NONBLOCKING_OPS for op in cols.ops)
    zero4 = b"\x00\x00\x00\x00"
    prev_head = None
    open_run = False
    ei = 0
    for code in cols.codes:
        if code == OP_EVENT:
            off = ei * esize
            (op_idx,) = _U16.unpack_from(ebuf, off)
            if (
                op_idx < len(eligible_op)
                and eligible_op[op_idx]
                and ebuf[off + EVENT_WILDCARD_OFF] == 0
                and ebuf[off + EVENT_REQSLEN_OFF:off + EVENT_PARAMS_END] == zero4
                and ebuf[off + EVENT_GIDSLEN_OFF:off + esize] == zero4
            ):
                head = ebuf[off:off + EVENT_PARAMS_END]
                if prev_head is not None and head == prev_head:
                    if open_run:
                        start, count = runs[-1]
                        runs[-1] = (start, count + 1)
                    else:
                        runs.append((ei - 1, 2))
                        open_run = True
                else:
                    prev_head = head
                    open_run = False
            else:
                prev_head = None
                open_run = False
            ei += 1
        else:
            prev_head = None
            open_run = False
    return runs


def event_runs(source) -> list[tuple[int, int]]:
    """Run descriptors ``(start_event_index, count)`` of ``source``
    (a :class:`PackedStream`, :class:`Columns`, or a packed blob)."""
    if isinstance(source, PackedStream):
        return list(source.runs)
    if isinstance(source, Columns):
        return list(source.runs)
    return list(columns_of(source).runs)


def decode_times(cols: Columns):
    """Decode the per-event timing columns in one C-speed sweep.

    Returns ``(starts, durations)`` as two ``array('d')`` of length
    ``cols.nevents`` — the padded sweep struct touches only the ``<dd``
    pair of each record."""
    starts = array("d")
    durations = array("d")
    sa = starts.append
    da = durations.append
    for start, dur in EVENT_TIMES_SWEEP.iter_unpack(cols.events):
        sa(start)
        da(dur)
    return starts, durations


def gap_columns(cols: Columns, last_end: float = 0.0):
    """Per-event ``(durations, gaps)`` columns, computed with the exact
    sequential recurrence the compressor uses (gap clamps at zero; the
    running last-end is the max end time seen so far).  ``last_end``
    seeds the recurrence for mid-stream chunks."""
    durations = array("d")
    gaps = array("d")
    da = durations.append
    ga = gaps.append
    for start, dur in EVENT_TIMES_SWEEP.iter_unpack(cols.events):
        gap = start - last_end
        if gap < 0.0:
            gap = 0.0
        end = start + dur
        if end > last_end:
            last_end = end
        da(dur)
        ga(gap)
    return durations, gaps


def iter_column_chunks(cols: Columns, chunk_items: int = CHUNK_ITEMS):
    """Yield ``(codes, events, markers, reqc)`` chunks of at most
    ``chunk_items`` stream items, each column fully unpacked to tuples.

    Splitting by item count keeps worker memory bounded on huge streams
    while each column slice still decodes in one ``iter_unpack`` sweep.
    """
    codes = cols.codes
    ev_off = mk_off = rc_off = 0
    ev_size, mk_size, rc_size = (
        EVENT_STRUCT.size, MARKER_STRUCT.size, REQC_STRUCT.size,
    )
    for start in range(0, len(codes), chunk_items):
        chunk = codes[start:start + chunk_items]
        nev = chunk.count(OP_EVENT)
        nrc = chunk.count(OP_REQ_COMPLETE)
        nmk = len(chunk) - nev - nrc
        events = list(EVENT_STRUCT.iter_unpack(
            cols.events[ev_off:ev_off + nev * ev_size]
        ))
        markers = list(MARKER_STRUCT.iter_unpack(
            cols.markers[mk_off:mk_off + nmk * mk_size]
        ))
        reqc = list(REQC_STRUCT.iter_unpack(
            cols.reqc[rc_off:rc_off + nrc * rc_size]
        ))
        ev_off += nev * ev_size
        mk_off += nmk * mk_size
        rc_off += nrc * rc_size
        yield chunk, events, markers, reqc


def event_from_fields(f: tuple, ops: list, arena) -> CommEvent:
    """Materialize one :class:`CommEvent` from an unpacked event record."""
    reqs_len = f[11]
    gids_len = f[19]
    return CommEvent(
        ops[f[0]], f[14], f[15], f[1], f[4], f[3], f[5], f[2], f[6],
        f[7], f[8], f[16],
        tuple(arena[f[17]:f[17] + reqs_len]) if reqs_len else (),
        bool(f[10]), f[9], f[12], f[13],
        tuple(arena[f[18]:f[18] + gids_len]) if gids_len else (),
    )


def encode_stream(stream) -> PackedStream:
    """Pack one rank's opcode-tuple stream (capture-list form)."""
    packed = PackedStream()
    append_marker = packed.append_marker
    append_event = packed.append_event
    for item in stream:
        code = item[0]
        if code == OP_EVENT:
            append_event(item[1])
        elif code == OP_BRANCH_ENTER:
            append_marker(code, item[1], item[2])
        elif code == OP_REQ_COMPLETE:
            packed.append_request_complete(item[1], item[2], item[3], item[4])
        elif code == OP_FINALIZE:
            packed.append_finalize()
        elif code in _MARKER_CODES:
            append_marker(code, item[1])
        else:
            raise PackedStreamError(f"unknown stream opcode {code!r}")
    return packed


def decode_stream(source) -> list[tuple]:
    """Decode a packed stream back to the capture-list tuple form.

    The inverse of :func:`encode_stream` — used by the reference ingest
    path, the codec round-trip tests, and quarantine (a quarantined
    packed rank is decoded once so its raw stream can be re-attached
    for fallback replay)."""
    cols = columns_of(source)
    ops, arena = cols.ops, cols.arena
    out: list[tuple] = []
    append = out.append
    for codes, events, markers, reqc in iter_column_chunks(cols):
        ei = mi = ri = 0
        for code in codes:
            if code == OP_EVENT:
                append((OP_EVENT, event_from_fields(events[ei], ops, arena)))
                ei += 1
            elif code == OP_REQ_COMPLETE:
                append((OP_REQ_COMPLETE,) + reqc[ri])
                ri += 1
            elif code == OP_FINALIZE:
                append((OP_FINALIZE,))
                mi += 1
            elif code == OP_BRANCH_ENTER:
                append((code, markers[mi][0], markers[mi][1]))
                mi += 1
            else:
                append((code, markers[mi][0]))
                mi += 1
    return out


def event_count(source) -> int:
    """Number of communication events in a packed stream, without a
    full decode (reads the header / encoder counter only)."""
    if isinstance(source, PackedStream):
        return source.nevents
    return columns_of(source).nevents
