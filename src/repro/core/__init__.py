"""CYPRESS core: the paper's contribution — CTT-based trace compression."""

from .api import CypressRun, run_cypress
from .ctt import CTT, CTTVertex
from .decompress import (
    ReplayEvent,
    decompress_all,
    decompress_merged_rank,
    decompress_rank,
    DecompressionError,
)
from .errors import (
    CypressError,
    MergeError,
    StreamMismatchError,
    TraceFormatError,
)
from .inter import MergedCTT, merge_all
from .intra import (
    CompressionError,
    CypressConfig,
    IntraProcessCompressor,
    ShmCompressSession,
    close_shared_sessions,
    compress_streams,
    shared_compress_session,
)
from .quarantine import QuarantinedRank, QuarantineReport
from .records import CompressedRecord
from .sequences import IntSequence, SequenceCursor
from .timing import TimeStats, MEANSTD, HIST
from . import export, serialize

__all__ = [
    "CypressRun",
    "run_cypress",
    "CTT",
    "CTTVertex",
    "ReplayEvent",
    "decompress_all",
    "decompress_merged_rank",
    "decompress_rank",
    "DecompressionError",
    "MergedCTT",
    "merge_all",
    "CypressError",
    "MergeError",
    "StreamMismatchError",
    "TraceFormatError",
    "CompressionError",
    "CypressConfig",
    "IntraProcessCompressor",
    "ShmCompressSession",
    "close_shared_sessions",
    "compress_streams",
    "shared_compress_session",
    "QuarantinedRank",
    "QuarantineReport",
    "CompressedRecord",
    "IntSequence",
    "SequenceCursor",
    "TimeStats",
    "MEANSTD",
    "HIST",
    "serialize",
    "export",
]
