"""Binary serialization of merged compressed traces.

CYPRESS writes its final job-wide trace as a compact binary file
(optionally gzip-compressed, the paper's "CYPRESS+Gzip" variant).  The
format is a faithful size-accounting vehicle for the trace-size figures:
varint-coded integers, zigzag for signed values, an interned string table
for op names, stride terms for every integer sequence, and sparse
histogram bins.

Container layout (version 6, crash-safe — docs/INTERNALS.md §7)::

    magic "CYTR" | version | sections...

    section := kind | nbytes | payload | crc32(kind..payload)

    kind 1 HEADER   : nranks | string table
    kind 2 TOPOLOGY : tree (pre-order): kind, [op/name idx],
                      [branch_path, branch ast id], nchildren
    kind 3 PAYLOAD  : first vertex index | nvertices | per vertex,
                      ngroups, then each group:
                      rankset terms | payload (counts / visits / records)
                      (chunked ~64 KiB so truncation loses one chunk,
                      not the whole payload)
    kind 0 END      : number of preceding sections | total vertex count

Every section carries a CRC32 over its own framing and payload, and the
END marker pins the section count — so a v5 file fails loudly
(:class:`~repro.core.errors.TraceFormatError`) on any flipped bit or
missing tail, while ``loads(..., salvage=True)`` recovers the longest
checksum-valid prefix of a truncated file (vertices whose payload chunk
was lost simply have no groups).  Version-4 files (no framing) are still
readable.  :func:`save` is atomic: temp file + fsync + ``os.replace``,
so an interrupted save never clobbers an existing trace.

Round-trips: ``loads(dumps(m))`` reconstructs a replayable MergedCTT.
"""

from __future__ import annotations

import gzip as _gzip
import os
import struct
import zlib

from repro import obs
from repro.static.cst import BRANCH, CALL, LOOP, ROOT

from .errors import TraceFormatError
from .inter import Group, InternTable, MergedCTT, MergedVertex
from .records import CompressedRecord
from .sequences import IntSequence
from .timing import HIST, MEANSTD, TimeStats

_MAGIC = b"CYTR"
_VERSION = 6
# Version 5 differs only in topology: branch vertices carried no ast id,
# so adjacent sibling branch groups could not be told apart at replay
# (they fused when their taken paths happened to differ).  Still
# readable; replay of a v5 tree keeps the old (fusing) behavior.
_V5 = 5

# Section kinds of the v5 container.
_SEC_END = 0
_SEC_HEADER = 1
_SEC_TOPOLOGY = 2
_SEC_PAYLOAD = 3

#: Payload bytes per chunk section before a new chunk starts — the
#: granularity of salvage after truncation.
_CHUNK_BYTES = 1 << 16

_KIND_CODE = {ROOT: 0, LOOP: 1, BRANCH: 2, CALL: 3}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}


class ByteWriter:
    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def bytes(self) -> bytes:
        return b"".join(self._parts)

    def size(self) -> int:
        """Bytes written so far (section accounting for the metrics)."""
        return sum(len(p) for p in self._parts)

    def raw(self, data: bytes) -> None:
        self._parts.append(data)

    def u(self, value: int) -> None:
        """Unsigned varint (LEB128)."""
        if value < 0:
            raise ValueError(f"u() got negative {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self._parts.append(bytes(out))

    def z(self, value: int) -> None:
        """Signed varint (zigzag)."""
        self.u((value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1)

    def f(self, value: float) -> None:
        self._parts.append(struct.pack("<d", value))

    def s(self, text: str) -> None:
        data = text.encode("utf-8")
        self.u(len(data))
        self.raw(data)


class ByteReader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def raw(self, n: int) -> bytes:
        out = self._data[self._pos : self._pos + n]
        if len(out) != n:
            raise TraceFormatError("truncated trace file")
        self._pos += n
        return out

    def u(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self._data[self._pos]
            self._pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def z(self) -> int:
        raw = self.u()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)

    def f(self) -> float:
        return struct.unpack("<d", self.raw(8))[0]

    def s(self) -> str:
        return self.raw(self.u()).decode("utf-8")

    def eof(self) -> bool:
        return self._pos >= len(self._data)


# ---------------------------------------------------------------------------


def _write_seq(w: ByteWriter, seq: IntSequence) -> None:
    w.u(len(seq.terms))
    for start, count, stride in seq.terms:
        w.z(start)
        w.u(count)
        w.z(stride)


def _read_seq(r: ByteReader) -> IntSequence:
    nterms = r.u()
    terms = []
    length = 0
    for _ in range(nterms):
        start = r.z()
        count = r.u()
        stride = r.z()
        terms.append((start, count, stride))
        length += count
    return IntSequence(terms=terms, length=length)


def _write_stats(w: ByteWriter, st: TimeStats) -> None:
    w.u(0 if st.mode == MEANSTD else 1)
    w.u(st.count)
    w.f(st.mean)
    w.f(st.m2)
    w.f(st.minimum if st.count else 0.0)
    w.f(st.maximum if st.count else 0.0)
    if st.mode == HIST:
        nonzero = [(i, b) for i, b in enumerate(st.bins) if b]
        w.u(len(nonzero))
        for i, b in nonzero:
            w.u(i)
            w.u(b)


def _read_stats(r: ByteReader) -> TimeStats:
    mode = MEANSTD if r.u() == 0 else HIST
    st = TimeStats(mode=mode)
    st.count = r.u()
    st.mean = r.f()
    st.m2 = r.f()
    st.minimum = r.f()
    st.maximum = r.f()
    if mode == HIST:
        for _ in range(r.u()):
            i = r.u()
            st.bins[i] = r.u()
    return st


def _write_record(w: ByteWriter, rec: CompressedRecord, ops: dict[str, int]) -> None:
    (op, peer, peer2, tag, tag2, nbytes, nbytes2, comm, root, wc, gids,
     result_comm) = rec.key
    w.u(ops[op])
    for enc in (peer, peer2):
        w.u(0 if enc[0] == "abs" else 1)
        w.z(enc[1])
    w.z(tag)
    w.z(tag2)
    w.u(nbytes)
    w.u(nbytes2)
    w.u(comm)
    w.z(root)
    w.u(1 if wc else 0)
    w.u(len(gids))
    for gid in gids:
        w.z(gid)
    w.z(result_comm)
    _write_seq(w, rec.occurrences)
    _write_stats(w, rec.duration)
    _write_stats(w, rec.pre_gap)


def _read_record(r: ByteReader, ops: list[str]) -> CompressedRecord:
    op = ops[r.u()]
    peers = []
    for _ in range(2):
        mode = "abs" if r.u() == 0 else "rel"
        peers.append((mode, r.z()))
    tag = r.z()
    tag2 = r.z()
    nbytes = r.u()
    nbytes2 = r.u()
    comm = r.u()
    root = r.z()
    wc = bool(r.u())
    gids = tuple(r.z() for _ in range(r.u()))
    result_comm = r.z()
    key = (op, peers[0], peers[1], tag, tag2, nbytes, nbytes2, comm, root, wc,
           gids, result_comm)
    occurrences = _read_seq(r)
    duration = _read_stats(r)
    pre_gap = _read_stats(r)
    return CompressedRecord(
        key=key, occurrences=occurrences, duration=duration, pre_gap=pre_gap
    )


# ---------------------------------------------------------------------------
# Shared body encoding (identical bytes in v4 and inside v5 sections).


def _write_topology(
    w: ByteWriter, vertices, strings: dict[str, int],
    with_ast: bool = False,
) -> None:
    for v in vertices:
        w.u(_KIND_CODE[v.kind])
        if v.kind == CALL:
            w.u(strings[v.op] if v.op is not None else len(strings))
            w.u(strings[v.name] if v.name is not None else len(strings))
        elif v.kind == BRANCH:
            w.u(v.branch_path if v.branch_path is not None else 0)
            if with_ast:
                # Replay groups consecutive same-ast branch children;
                # without the ast id, two adjacent sibling branches that
                # took different paths are indistinguishable from one
                # two-path group.
                w.z(v.ast_id if v.ast_id is not None else -1)
        w.u(len(v.children))


def _read_topology_vertex(
    r: ByteReader, strings: list[str], with_ast: bool = False,
) -> MergedVertex:
    v = MergedVertex.__new__(MergedVertex)
    kind = _CODE_KIND[r.u()]
    v.gid = -1
    v.kind = kind
    v.ast_id = None
    v.name = None
    v.op = None
    v.branch_path = None
    v.groups = {}
    v._by_rank = None
    if kind == CALL:
        op_idx = r.u()
        name_idx = r.u()
        v.op = strings[op_idx] if op_idx < len(strings) else None
        v.name = strings[name_idx] if name_idx < len(strings) else None
    elif kind == BRANCH:
        v.branch_path = r.u()
        if with_ast:
            ast = r.z()
            v.ast_id = None if ast == -1 else ast
    nchildren = r.u()
    v.children = [
        _read_topology_vertex(r, strings, with_ast) for _ in range(nchildren)
    ]
    return v


def _write_vertex_payload(w: ByteWriter, v, strings: dict[str, int]) -> None:
    # Groups are written in canonical order (by lowest member rank —
    # member sets are disjoint) so the bytes do not depend on the merge
    # schedule that produced the tree.
    groups = v.sorted_groups()
    w.u(len(groups))
    for group in groups:
        _write_seq(w, group.rank_sequence())
        if v.kind == LOOP:
            _write_seq(w, group.counts)
        elif v.kind == BRANCH:
            _write_seq(w, group.visits)
        elif v.kind == CALL:
            w.u(len(group.records))
            for rec in group.records:
                _write_record(w, rec, strings)


def _read_vertex_payload(
    r: ByteReader, v: MergedVertex, strings: list[str], interns: InternTable
) -> None:
    ngroups = r.u()
    for _ in range(ngroups):
        ranks = _read_seq(r).to_list()
        counts = visits = records = None
        if v.kind == LOOP:
            counts = _read_seq(r)
            key = ("L", counts.length, tuple(counts.terms))
        elif v.kind == BRANCH:
            visits = _read_seq(r)
            key = ("B", visits.length, tuple(visits.terms))
        elif v.kind == CALL:
            records = [_read_record(r, strings) for _ in range(r.u())]
            key = (
                "R",
                tuple(
                    (rec.key, rec.occurrences.length, tuple(rec.occurrences.terms))
                    for rec in records
                ),
            )
        else:
            key = ()
        group = Group(
            signature=interns.intern(key), ranks=ranks,
            counts=counts, visits=visits, records=records,
        )
        v.groups[group.signature] = group


# ---------------------------------------------------------------------------
# v5 section framing.


def _write_section(w: ByteWriter, kind: int, payload: bytes) -> None:
    hdr = ByteWriter()
    hdr.u(kind)
    hdr.u(len(payload))
    framed = hdr.bytes()
    w.raw(framed)
    w.raw(payload)
    w.raw(struct.pack("<I", zlib.crc32(framed + payload) & 0xFFFFFFFF))


def _read_sections(
    data: bytes, pos: int, salvage: bool
) -> tuple[list[tuple[int, bytes]], bool, str | None]:
    """Parse the framed sections starting at ``pos``.  Returns
    ``(sections, complete, error)``; in salvage mode a checksum failure
    or truncation stops the scan instead of raising, keeping the valid
    prefix."""
    sections: list[tuple[int, bytes]] = []
    end_seen = False
    error: str | None = None
    n = len(data)
    while pos < n:
        try:
            sr = ByteReader(data)
            sr._pos = pos
            kind = sr.u()
            length = sr.u()
            payload_end = sr._pos + length
            crc_end = payload_end + 4
            if crc_end > n:
                raise TraceFormatError(
                    f"truncated section at byte {pos} "
                    f"(needs {crc_end - n} more byte(s))"
                )
            stored = struct.unpack("<I", data[payload_end:crc_end])[0]
            if zlib.crc32(data[pos:payload_end]) & 0xFFFFFFFF != stored:
                raise TraceFormatError(
                    f"section checksum mismatch at byte {pos}"
                )
            payload = data[sr._pos : payload_end]
        except TraceFormatError as exc:
            if salvage:
                error = str(exc)
                break
            raise
        except IndexError:
            exc_msg = f"truncated section framing at byte {pos}"
            if salvage:
                error = exc_msg
                break
            raise TraceFormatError(exc_msg) from None
        sections.append((kind, payload))
        pos = crc_end
        if kind == _SEC_END:
            end_seen = True
            break
    if not end_seen:
        msg = error or "missing end-of-trace section"
        if not salvage:
            raise TraceFormatError(f"truncated trace: {msg}")
        return sections, False, msg
    if pos != n and not salvage:
        raise TraceFormatError(f"{n - pos} trailing byte(s) after end section")
    return sections, True, None


#: Public aliases of the section framing: the server's session store
#: (:mod:`repro.server.session`) and the budget spill store
#: (:mod:`repro.core.budget`) build their own crash-safe containers from
#: the same CRC-framed primitives.
write_section = _write_section
read_sections = _read_sections


# ---------------------------------------------------------------------------


#: Nominal per-event cost of an uncompressed binary trace record (op code
#: plus ~10 integer fields) — the denominator of the ``ratio_vs_raw``
#: gauge.  A fixed constant so the ratio is comparable across runs; the
#: text-based RawTraceSink baseline averages slightly more per event.
RAW_EVENT_BYTES = 48


def dumps(
    merged: MergedCTT, gzip: bool = False, chunk_bytes: int = _CHUNK_BYTES
) -> bytes:
    """Serialize a merged CTT; ``gzip=True`` is the +Gzip variant.

    ``chunk_bytes`` sets the payload-section granularity (smaller chunks
    salvage more of a truncated file at a few bytes/chunk framing cost);
    the default suits production traces, tests shrink it to exercise
    multi-chunk salvage on small trees.
    """
    with obs.span("serialize.dumps"):
        return _dumps(merged, gzip, chunk_bytes)


def _dumps(merged: MergedCTT, gzip: bool, chunk_bytes: int) -> bytes:
    registry = obs.active()
    vertices = list(merged.root.preorder())
    # String table: op names and leaf names.  Only CALL vertices ever
    # reference the table, so only their strings enter it — this keeps
    # ``dumps(loads(x)) == x`` (a root named "main" has nowhere to be
    # written, so it must not occupy a slot either).
    strings: dict[str, int] = {}
    for v in vertices:
        if v.kind != CALL:
            continue
        for s in (v.op, v.name):
            if s is not None and s not in strings:
                strings[s] = len(strings)
    hw = ByteWriter()
    hw.u(merged.nranks_merged)
    hw.u(len(strings))
    for text in strings:  # dict preserves insertion order
        hw.s(text)
    tw = ByteWriter()
    _write_topology(tw, vertices, strings, with_ast=True)
    # Payload, pre-order, chunked so a truncated file salvages to the
    # longest checksum-valid prefix of vertices instead of losing the
    # whole payload.
    chunks: list[tuple[int, int, bytes]] = []
    cw = ByteWriter()
    first = 0
    count = 0
    for v in vertices:
        _write_vertex_payload(cw, v, strings)
        count += 1
        if cw.size() >= chunk_bytes:
            chunks.append((first, count, cw.bytes()))
            first += count
            count = 0
            cw = ByteWriter()
    if count:
        chunks.append((first, count, cw.bytes()))
    w = ByteWriter()
    w.raw(_MAGIC)
    w.u(_VERSION)
    _write_section(w, _SEC_HEADER, hw.bytes())
    header_bytes = w.size() if registry is not None else 0
    _write_section(w, _SEC_TOPOLOGY, tw.bytes())
    topology_bytes = (w.size() - header_bytes) if registry is not None else 0
    for chunk_first, chunk_count, chunk_payload in chunks:
        pw = ByteWriter()
        pw.u(chunk_first)
        pw.u(chunk_count)
        _write_section(w, _SEC_PAYLOAD, pw.bytes() + chunk_payload)
    ew = ByteWriter()
    ew.u(2 + len(chunks))  # sections preceding END
    ew.u(len(vertices))
    _write_section(w, _SEC_END, ew.bytes())
    data = w.bytes()
    if registry is not None:
        _publish_dump_metrics(
            registry, merged, vertices, header_bytes, topology_bytes, len(data)
        )
    if gzip:
        packed = _gzip.compress(data, compresslevel=6)
        if registry is not None:
            registry.counter_add("serialize.bytes.gzip", len(packed))
            registry.gauge_set("serialize.gzip_ratio", len(data) / len(packed))
        return packed
    return data


def _publish_dump_metrics(
    registry, merged, vertices, header_bytes, topology_bytes, total
) -> None:
    """Section byte counts plus the compression ratio vs. a nominal raw
    per-event trace — computed only when observability is on (one extra
    walk over the groups, outside any hot path)."""
    events = 0
    for v in vertices:
        if v.kind != CALL:
            continue
        for group in v.groups.values():
            records = group.records
            if records:
                per_rank = sum(rec.occurrences.length for rec in records)
                events += per_rank * len(group.ranks)
    registry.counter_add("serialize.bytes.header", header_bytes)
    registry.counter_add("serialize.bytes.topology", topology_bytes)
    registry.counter_add(
        "serialize.bytes.payload", total - header_bytes - topology_bytes
    )
    registry.counter_add("serialize.bytes.total", total)
    registry.counter_add("serialize.events", events)
    if total:
        registry.gauge_set(
            "serialize.ratio_vs_raw", events * RAW_EVENT_BYTES / total
        )


def loads(data: bytes, salvage: bool = False) -> MergedCTT:
    """Inverse of :func:`dumps` (auto-detects gzip).

    Corrupt input raises :class:`~repro.core.errors.TraceFormatError`
    (a :class:`ValueError` subclass for one release) — never an
    arbitrary internal exception.  With ``salvage=True`` a truncated or
    tail-corrupted v5 file loads as the longest checksum-valid prefix:
    the returned tree carries ``salvage_info`` describing what was
    recovered; the header and topology sections must survive or
    salvage, too, fails.
    """
    try:
        return _loads(data, salvage)
    except ValueError:
        raise
    except Exception as exc:  # truncated varints, bad indices, zlib noise
        raise TraceFormatError(f"corrupt CYPRESS trace file: {exc}") from exc


def _loads(data: bytes, salvage: bool) -> MergedCTT:
    if data[:2] == b"\x1f\x8b":
        data = _gunzip(data, salvage)
    if salvage and _torn_in_container_header(data):
        return _empty_salvage(len(data))
    if data[:4] != _MAGIC:
        raise TraceFormatError("not a CYPRESS trace file")
    r = ByteReader(data)
    r.raw(4)
    version = r.u()
    if version == 4:
        # Legacy container: one unframed body, no checksums — nothing
        # to salvage against, so the flag is ignored.
        return _loads_v4_body(r)
    if version not in (_V5, _VERSION):
        raise TraceFormatError(f"unsupported trace version {version}")
    sections, complete, error = _read_sections(data, r._pos, salvage)
    return _assemble_v5(
        sections, complete, error, salvage, with_ast=version >= _VERSION
    )


def _loads_v4_body(r: ByteReader) -> MergedCTT:
    nranks = r.u()
    strings = [r.s() for _ in range(r.u())]
    root = _read_topology_vertex(r, strings)
    vertices = list(root.preorder())
    for gid, v in enumerate(vertices):
        v.gid = gid
    interns = InternTable()
    for v in vertices:
        _read_vertex_payload(r, v, strings, interns)
    return MergedCTT(root, nranks, interns)


def _assemble_v5(
    sections: list[tuple[int, bytes]],
    complete: bool,
    error: str | None,
    salvage: bool,
    with_ast: bool = True,
) -> MergedCTT:
    if not sections or sections[0][0] != _SEC_HEADER:
        raise TraceFormatError(
            "header section unrecoverable" if salvage
            else "missing header section"
        )
    if len(sections) < 2 or sections[1][0] != _SEC_TOPOLOGY:
        raise TraceFormatError(
            "topology section unrecoverable" if salvage
            else "missing topology section"
        )
    hr = ByteReader(sections[0][1])
    nranks = hr.u()
    strings = [hr.s() for _ in range(hr.u())]
    tr = ByteReader(sections[1][1])
    root = _read_topology_vertex(tr, strings, with_ast)
    vertices = list(root.preorder())
    for gid, v in enumerate(vertices):
        v.gid = gid
    interns = InternTable()
    covered = 0
    declared_sections = declared_vertices = None
    for kind, payload in sections[2:]:
        if kind == _SEC_END:
            er = ByteReader(payload)
            declared_sections = er.u()
            declared_vertices = er.u()
            break
        if kind != _SEC_PAYLOAD:
            raise TraceFormatError(f"unknown section kind {kind}")
        pr = ByteReader(payload)
        chunk_first = pr.u()
        chunk_count = pr.u()
        if chunk_first != covered or chunk_first + chunk_count > len(vertices):
            raise TraceFormatError(
                f"payload chunk covers vertices {chunk_first}.."
                f"{chunk_first + chunk_count} out of order"
            )
        for v in vertices[chunk_first : chunk_first + chunk_count]:
            _read_vertex_payload(pr, v, strings, interns)
        covered = chunk_first + chunk_count
    if not salvage:
        if declared_sections != len(sections) - 1:
            raise TraceFormatError(
                f"end section declares {declared_sections} section(s), "
                f"found {len(sections) - 1}"
            )
        if declared_vertices != len(vertices) or covered != len(vertices):
            raise TraceFormatError(
                f"payload covers {covered}/{len(vertices)} vertices"
            )
    merged = MergedCTT(root, nranks, interns)
    if salvage:
        merged.salvage_info = {
            "complete": complete and covered == len(vertices),
            "sections_recovered": len(sections),
            "vertices_total": len(vertices),
            "vertices_with_payload": covered,
            "error": error,
        }
    return merged


def _torn_in_container_header(data: bytes) -> bool:
    """Whether ``data`` is a trace torn at or before the end of the
    5-byte container header (magic + version) — zero sections ever made
    it to disk.  Anything longer reached the framed-section region and
    takes the normal per-section salvage path (where a torn *header
    section* stays fatal); anything that is not a prefix of a real
    trace was never a trace and stays fatal too."""
    if len(data) < 4:
        return data == _MAGIC[: len(data)]
    if data[:4] != _MAGIC:
        return False
    if len(data) == 4:
        return True
    return len(data) == 5 and data[4] in (_V5, _VERSION)


def _empty_salvage(nbytes: int) -> MergedCTT:
    """The clean "nothing survived" salvage result: an empty tree whose
    ``salvage_info`` records that the file tore inside the container
    header, so callers can report recovery stats without special-casing
    the degenerate truncations (0-byte files, torn first write)."""
    root = MergedVertex.__new__(MergedVertex)
    root.gid = 0
    root.kind = ROOT
    root.ast_id = None
    root.name = None
    root.op = None
    root.branch_path = None
    root.children = []
    root.groups = {}
    root._by_rank = None
    merged = MergedCTT(root, 0, InternTable())
    merged.salvage_info = {
        "complete": False,
        "sections_recovered": 0,
        "vertices_total": 0,
        "vertices_with_payload": 0,
        "error": f"truncated inside the container header "
                 f"({nbytes} byte(s)): nothing recoverable",
    }
    return merged


def _gunzip(data: bytes, salvage: bool) -> bytes:
    if not salvage:
        try:
            return _gzip.decompress(data)
        except Exception as exc:
            raise TraceFormatError(f"corrupt gzip container: {exc}") from exc
    # Salvage: feed the stream chunkwise and keep whatever inflates
    # cleanly before the corruption/truncation point.
    d = zlib.decompressobj(47)  # gzip/zlib header autodetect
    out = bytearray()
    for i in range(0, len(data), 4096):
        try:
            out += d.decompress(data[i : i + 4096])
        except zlib.error:
            break
    if not out:
        raise TraceFormatError("gzip container unrecoverable")
    return bytes(out)


def save(merged: MergedCTT, path: str, gzip: bool = False) -> int:
    """Write to ``path`` atomically; returns the byte count.

    The bytes land in ``path + ".tmp"`` first, are fsynced, and then
    ``os.replace`` the destination — a crash mid-save leaves any
    existing trace at ``path`` untouched instead of truncated.
    """
    data = dumps(merged, gzip=gzip)
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(data)


def load(path: str, salvage: bool = False) -> MergedCTT:
    with open(path, "rb") as fh:
        return loads(fh.read(), salvage=salvage)
