"""Binary serialization of merged compressed traces.

CYPRESS writes its final job-wide trace as a compact binary file
(optionally gzip-compressed, the paper's "CYPRESS+Gzip" variant).  The
format is a faithful size-accounting vehicle for the trace-size figures:
varint-coded integers, zigzag for signed values, an interned string table
for op names, stride terms for every integer sequence, and sparse
histogram bins.

Layout::

    magic "CYTR" | version | nranks | string table
    tree (pre-order): kind, [op/name idx], [branch_path], nchildren
    payload (pre-order): per vertex, ngroups, then each group:
        rankset terms | payload (counts / visits / records)

Round-trips: ``loads(dumps(m))`` reconstructs a replayable MergedCTT.
"""

from __future__ import annotations

import gzip as _gzip
import struct

from repro import obs
from repro.static.cst import BRANCH, CALL, LOOP, ROOT

from .inter import Group, InternTable, MergedCTT, MergedVertex
from .records import CompressedRecord
from .sequences import IntSequence
from .timing import HIST, MEANSTD, TimeStats

_MAGIC = b"CYTR"
_VERSION = 4

_KIND_CODE = {ROOT: 0, LOOP: 1, BRANCH: 2, CALL: 3}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}


class ByteWriter:
    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def bytes(self) -> bytes:
        return b"".join(self._parts)

    def size(self) -> int:
        """Bytes written so far (section accounting for the metrics)."""
        return sum(len(p) for p in self._parts)

    def raw(self, data: bytes) -> None:
        self._parts.append(data)

    def u(self, value: int) -> None:
        """Unsigned varint (LEB128)."""
        if value < 0:
            raise ValueError(f"u() got negative {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self._parts.append(bytes(out))

    def z(self, value: int) -> None:
        """Signed varint (zigzag)."""
        self.u((value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1)

    def f(self, value: float) -> None:
        self._parts.append(struct.pack("<d", value))

    def s(self, text: str) -> None:
        data = text.encode("utf-8")
        self.u(len(data))
        self.raw(data)


class ByteReader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def raw(self, n: int) -> bytes:
        out = self._data[self._pos : self._pos + n]
        if len(out) != n:
            raise ValueError("truncated trace file")
        self._pos += n
        return out

    def u(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self._data[self._pos]
            self._pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def z(self) -> int:
        raw = self.u()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)

    def f(self) -> float:
        return struct.unpack("<d", self.raw(8))[0]

    def s(self) -> str:
        return self.raw(self.u()).decode("utf-8")

    def eof(self) -> bool:
        return self._pos >= len(self._data)


# ---------------------------------------------------------------------------


def _write_seq(w: ByteWriter, seq: IntSequence) -> None:
    w.u(len(seq.terms))
    for start, count, stride in seq.terms:
        w.z(start)
        w.u(count)
        w.z(stride)


def _read_seq(r: ByteReader) -> IntSequence:
    nterms = r.u()
    terms = []
    length = 0
    for _ in range(nterms):
        start = r.z()
        count = r.u()
        stride = r.z()
        terms.append((start, count, stride))
        length += count
    return IntSequence(terms=terms, length=length)


def _write_stats(w: ByteWriter, st: TimeStats) -> None:
    w.u(0 if st.mode == MEANSTD else 1)
    w.u(st.count)
    w.f(st.mean)
    w.f(st.m2)
    w.f(st.minimum if st.count else 0.0)
    w.f(st.maximum if st.count else 0.0)
    if st.mode == HIST:
        nonzero = [(i, b) for i, b in enumerate(st.bins) if b]
        w.u(len(nonzero))
        for i, b in nonzero:
            w.u(i)
            w.u(b)


def _read_stats(r: ByteReader) -> TimeStats:
    mode = MEANSTD if r.u() == 0 else HIST
    st = TimeStats(mode=mode)
    st.count = r.u()
    st.mean = r.f()
    st.m2 = r.f()
    st.minimum = r.f()
    st.maximum = r.f()
    if mode == HIST:
        for _ in range(r.u()):
            i = r.u()
            st.bins[i] = r.u()
    return st


def _write_record(w: ByteWriter, rec: CompressedRecord, ops: dict[str, int]) -> None:
    (op, peer, peer2, tag, tag2, nbytes, nbytes2, comm, root, wc, gids,
     result_comm) = rec.key
    w.u(ops[op])
    for enc in (peer, peer2):
        w.u(0 if enc[0] == "abs" else 1)
        w.z(enc[1])
    w.z(tag)
    w.z(tag2)
    w.u(nbytes)
    w.u(nbytes2)
    w.u(comm)
    w.z(root)
    w.u(1 if wc else 0)
    w.u(len(gids))
    for gid in gids:
        w.z(gid)
    w.z(result_comm)
    _write_seq(w, rec.occurrences)
    _write_stats(w, rec.duration)
    _write_stats(w, rec.pre_gap)


def _read_record(r: ByteReader, ops: list[str]) -> CompressedRecord:
    op = ops[r.u()]
    peers = []
    for _ in range(2):
        mode = "abs" if r.u() == 0 else "rel"
        peers.append((mode, r.z()))
    tag = r.z()
    tag2 = r.z()
    nbytes = r.u()
    nbytes2 = r.u()
    comm = r.u()
    root = r.z()
    wc = bool(r.u())
    gids = tuple(r.z() for _ in range(r.u()))
    result_comm = r.z()
    key = (op, peers[0], peers[1], tag, tag2, nbytes, nbytes2, comm, root, wc,
           gids, result_comm)
    occurrences = _read_seq(r)
    duration = _read_stats(r)
    pre_gap = _read_stats(r)
    return CompressedRecord(
        key=key, occurrences=occurrences, duration=duration, pre_gap=pre_gap
    )


# ---------------------------------------------------------------------------


#: Nominal per-event cost of an uncompressed binary trace record (op code
#: plus ~10 integer fields) — the denominator of the ``ratio_vs_raw``
#: gauge.  A fixed constant so the ratio is comparable across runs; the
#: text-based RawTraceSink baseline averages slightly more per event.
RAW_EVENT_BYTES = 48


def dumps(merged: MergedCTT, gzip: bool = False) -> bytes:
    """Serialize a merged CTT; ``gzip=True`` is the +Gzip variant."""
    with obs.span("serialize.dumps"):
        return _dumps(merged, gzip)


def _dumps(merged: MergedCTT, gzip: bool) -> bytes:
    registry = obs.active()
    vertices = list(merged.root.preorder())
    # String table: op names and leaf names.
    strings: dict[str, int] = {}
    for v in vertices:
        for s in (v.op, v.name):
            if s is not None and s not in strings:
                strings[s] = len(strings)
    w = ByteWriter()
    w.raw(_MAGIC)
    w.u(_VERSION)
    w.u(merged.nranks_merged)
    w.u(len(strings))
    for text in strings:  # dict preserves insertion order
        w.s(text)
    header_bytes = w.size() if registry is not None else 0
    # Topology, pre-order.
    for v in vertices:
        w.u(_KIND_CODE[v.kind])
        if v.kind == CALL:
            w.u(strings[v.op] if v.op is not None else len(strings))
            w.u(strings[v.name] if v.name is not None else len(strings))
        elif v.kind == BRANCH:
            w.u(v.branch_path if v.branch_path is not None else 0)
        w.u(len(v.children))
    topology_bytes = (w.size() - header_bytes) if registry is not None else 0
    # Payload, pre-order.  Groups are written in canonical order (by
    # lowest member rank — member sets are disjoint) so the bytes do not
    # depend on the merge schedule that produced the tree.
    for v in vertices:
        groups = v.sorted_groups()
        w.u(len(groups))
        for group in groups:
            _write_seq(w, group.rank_sequence())
            if v.kind == LOOP:
                _write_seq(w, group.counts)
            elif v.kind == BRANCH:
                _write_seq(w, group.visits)
            elif v.kind == CALL:
                w.u(len(group.records))
                for rec in group.records:
                    _write_record(w, rec, strings)
    data = w.bytes()
    if registry is not None:
        _publish_dump_metrics(
            registry, merged, vertices, header_bytes, topology_bytes, len(data)
        )
    if gzip:
        packed = _gzip.compress(data, compresslevel=6)
        if registry is not None:
            registry.counter_add("serialize.bytes.gzip", len(packed))
            registry.gauge_set("serialize.gzip_ratio", len(data) / len(packed))
        return packed
    return data


def _publish_dump_metrics(
    registry, merged, vertices, header_bytes, topology_bytes, total
) -> None:
    """Section byte counts plus the compression ratio vs. a nominal raw
    per-event trace — computed only when observability is on (one extra
    walk over the groups, outside any hot path)."""
    events = 0
    for v in vertices:
        if v.kind != CALL:
            continue
        for group in v.groups.values():
            records = group.records
            if records:
                per_rank = sum(rec.occurrences.length for rec in records)
                events += per_rank * len(group.ranks)
    registry.counter_add("serialize.bytes.header", header_bytes)
    registry.counter_add("serialize.bytes.topology", topology_bytes)
    registry.counter_add(
        "serialize.bytes.payload", total - header_bytes - topology_bytes
    )
    registry.counter_add("serialize.bytes.total", total)
    registry.counter_add("serialize.events", events)
    if total:
        registry.gauge_set(
            "serialize.ratio_vs_raw", events * RAW_EVENT_BYTES / total
        )


def loads(data: bytes) -> MergedCTT:
    """Inverse of :func:`dumps` (auto-detects gzip).

    Corrupt input raises :class:`ValueError` — never an arbitrary internal
    exception.
    """
    try:
        return _loads(data)
    except ValueError:
        raise
    except Exception as exc:  # truncated varints, bad indices, zlib noise
        raise ValueError(f"corrupt CYPRESS trace file: {exc}") from exc


def _loads(data: bytes) -> MergedCTT:
    if data[:2] == b"\x1f\x8b":
        data = _gzip.decompress(data)
    r = ByteReader(data)
    if r.raw(4) != _MAGIC:
        raise ValueError("not a CYPRESS trace file")
    version = r.u()
    if version != _VERSION:
        raise ValueError(f"unsupported trace version {version}")
    nranks = r.u()
    strings = [r.s() for _ in range(r.u())]
    interns = InternTable()

    def read_vertex() -> MergedVertex:
        v = MergedVertex.__new__(MergedVertex)
        kind = _CODE_KIND[r.u()]
        v.gid = -1
        v.kind = kind
        v.ast_id = None
        v.name = None
        v.op = None
        v.branch_path = None
        v.groups = {}
        v._by_rank = None
        if kind == CALL:
            op_idx = r.u()
            name_idx = r.u()
            v.op = strings[op_idx] if op_idx < len(strings) else None
            v.name = strings[name_idx] if name_idx < len(strings) else None
        elif kind == BRANCH:
            v.branch_path = r.u()
        nchildren = r.u()
        v.children = [read_vertex() for _ in range(nchildren)]
        return v

    root = read_vertex()
    vertices = list(root.preorder())
    for gid, v in enumerate(vertices):
        v.gid = gid
    for v in vertices:
        ngroups = r.u()
        for _ in range(ngroups):
            ranks = _read_seq(r).to_list()
            counts = visits = records = None
            if v.kind == LOOP:
                counts = _read_seq(r)
                key = ("L", counts.length, tuple(counts.terms))
            elif v.kind == BRANCH:
                visits = _read_seq(r)
                key = ("B", visits.length, tuple(visits.terms))
            elif v.kind == CALL:
                records = [_read_record(r, strings) for _ in range(r.u())]
                key = (
                    "R",
                    tuple(
                        (rec.key, rec.occurrences.length, tuple(rec.occurrences.terms))
                        for rec in records
                    ),
                )
            else:
                key = ()
            group = Group(
                signature=interns.intern(key), ranks=ranks,
                counts=counts, visits=visits, records=records,
            )
            v.groups[group.signature] = group
    return MergedCTT(root, nranks, interns)


def save(merged: MergedCTT, path: str, gzip: bool = False) -> int:
    """Write to ``path``; returns the byte count."""
    data = dumps(merged, gzip=gzip)
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def load(path: str) -> MergedCTT:
    with open(path, "rb") as fh:
        return loads(fh.read())
