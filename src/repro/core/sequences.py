"""Compressed integer sequences: the paper's stride tuples.

Loop iteration counts, branch-taken visit indices and record occurrence
indices are all monotone or repetitive integer sequences.  CYPRESS
compresses them with stride tuples like ``<0, k-1, 1>`` ("from 0 to k-1
with stride 1", paper §IV-A).  :class:`IntSequence` stores a sequence as a
list of ``(start, count, stride)`` terms and supports O(1) amortised
online append: a new value either extends the last term or opens a new
one.

A constant run ``a×n`` is the stride-0 term ``(a, n, 0)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(slots=True)
class IntSequence:
    """An append-only integer sequence stored as stride terms.

    ``slots=True``: one ``append`` runs per marker/event on the tracer's
    hot path, so attribute access must not go through an instance dict."""

    terms: list[tuple[int, int, int]] = field(default_factory=list)  # (start, count, stride)
    length: int = 0

    # -- construction ----------------------------------------------------

    def append(self, value: int) -> None:
        self.length += 1
        terms = self.terms
        if not terms:
            terms.append((value, 1, 0))
            return
        start, count, stride = terms[-1]
        if count == 1:
            # A singleton can absorb any second value by fixing its stride.
            terms[-1] = (start, 2, value - start)
            return
        if value == start + count * stride:
            terms[-1] = (start, count + 1, stride)
            return
        if count == 2:
            # A two-element term whose continuation fails donates its second
            # element to pair with the new value: the greedy singleton-absorb
            # above may have captured the head of an arithmetic run under the
            # wrong stride (`0,5,6,7,8` must become `0 | <5,8,1>`, not
            # `<0,5,5> | <6,8,1>`).  The leftover first element folds into
            # the previous term when it continues it, so repair chains stay
            # term-count-neutral on alternating patterns like 0,0,1,1,2,2.
            second = start + stride
            new_stride = value - second
            if new_stride != stride:
                if len(terms) >= 2:
                    p_start, p_count, p_stride = terms[-2]
                    if p_count == 1:
                        terms[-2] = (p_start, 2, start - p_start)
                        terms[-1] = (second, 2, new_stride)
                        return
                    if start == p_start + p_count * p_stride:
                        terms[-2] = (p_start, p_count + 1, p_stride)
                        terms[-1] = (second, 2, new_stride)
                        return
                terms[-1] = (start, 1, 0)
                terms.append((second, 2, new_stride))
                return
        terms.append((value, 1, 0))

    def extend(self, values: Iterable[int]) -> None:
        for v in values:
            self.append(v)

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "IntSequence":
        seq = cls()
        seq.extend(values)
        return seq

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[int]:
        for start, count, stride in self.terms:
            value = start
            for _ in range(count):
                yield value
                value += stride

    def to_list(self) -> list[int]:
        return list(self)

    def total(self) -> int:
        """Sum of all values — O(terms), not O(length).  (For a loop
        vertex's iteration counts this is the total number of body
        executions; the query engine's cost model leans on it.)"""
        return sum(
            count * start + stride * (count * (count - 1) // 2)
            for start, count, stride in self.terms
        )

    def value_at(self, pos: int) -> int:
        """The ``pos``-th value (0-based) — O(terms) random access."""
        if pos < 0 or pos >= self.length:
            raise IndexError(f"position {pos} out of range [0, {self.length})")
        for start, count, stride in self.terms:
            if pos < count:
                return start + pos * stride
            pos -= count
        raise IndexError(f"position {pos} beyond terms")  # pragma: no cover

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntSequence):
            return NotImplemented
        return self.length == other.length and self.terms == other.terms

    def __hash__(self) -> int:
        return hash((self.length, tuple(self.terms)))

    def __repr__(self) -> str:
        shown = ", ".join(
            f"<{s},{s + (c - 1) * d},{d}>" if c > 1 else str(s)
            for s, c, d in self.terms[:8]
        )
        if len(self.terms) > 8:
            shown += ", ..."
        return f"IntSequence({shown}; n={self.length})"

    # -- size accounting -----------------------------------------------------

    def term_count(self) -> int:
        return len(self.terms)

    def approx_bytes(self) -> int:
        """Serialized footprint estimate: 3 varint-ish ints per term."""
        return 2 + 6 * len(self.terms)


class SequenceCursor:
    """Sequential reader over an :class:`IntSequence` (replay helper).

    ``peek``/``next`` walk values in order; ``contains_next(v)`` answers
    "is ``v`` the next recorded value?" and consumes it when it is — the
    O(1)-amortised membership test replay uses for monotone visit indices.
    """

    def __init__(self, seq: IntSequence) -> None:
        self._seq = seq
        self._term = 0
        self._offset = 0

    def exhausted(self) -> bool:
        return self._term >= len(self._seq.terms)

    def peek(self) -> int | None:
        if self.exhausted():
            return None
        start, _count, stride = self._seq.terms[self._term]
        return start + self._offset * stride

    def next(self) -> int:
        value = self.peek()
        if value is None:
            raise StopIteration("sequence exhausted")
        start, count, _stride = self._seq.terms[self._term]
        self._offset += 1
        if self._offset >= count:
            self._term += 1
            self._offset = 0
        return value

    def contains_next(self, value: int) -> bool:
        if self.peek() == value:
            self.next()
            return True
        return False
