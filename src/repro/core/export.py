"""Export decompressed traces to interchange formats.

CYPRESS trace files are compact and structural; other tools (OTF-style
analysers, spreadsheets) want flat per-rank event streams.  This module
renders the sequence-preserving replay into:

* ``to_text``  — an OTF-ish readable log, one event per line;
* ``to_csv``   — machine-readable CSV with reconstructed timestamps
  (cumulative mean gaps + durations — the expectation timeline, since the
  compressed trace stores time *statistics*, §IV-A).
"""

from __future__ import annotations

import csv
import io

from repro.mpisim.datatypes import ANY_SOURCE
from repro.mpisim.events import NO_PEER

from .decompress import ReplayEvent, decompress_all
from .inter import MergedCTT

CSV_FIELDS = (
    "rank", "seq", "op", "t_start_us", "duration_us", "peer", "peer2",
    "tag", "nbytes", "comm", "root", "wildcard", "result_comm", "gid",
)


def format_peer(peer: int, wildcard: bool = False) -> str | None:
    """Render a decoded peer for flat output.

    ``None`` for the no-peer sentinel (omit the field), ``*`` for an
    unresolved ``ANY_SOURCE`` on a wildcard record, and a loud ``?N``
    for anything else negative.  The wildcard flag disambiguates ``-1``:
    sentinels are stored absolute, so a ``-1`` on a *non*-wildcard
    record can only be a relative decode that overflowed the rank range
    (e.g. rank 0 + delta −1) — corruption, not ``ANY_SOURCE``.
    """
    if peer == NO_PEER:
        return None
    if peer == ANY_SOURCE and wildcard:
        return "*"
    if peer < 0:
        return f"?{peer}"
    return str(peer)


def _timeline(events: list[ReplayEvent]):
    """Yield (start, event) with expectation timestamps."""
    clock = 0.0
    for ev in events:
        clock += ev.mean_gap
        yield clock, ev
        clock += ev.mean_duration


def to_text(merged: MergedCTT, ranks: list[int] | None = None) -> str:
    """Readable flat trace of the given ranks (default: all)."""
    traces = decompress_all(merged)
    if ranks is not None:
        traces = {r: traces[r] for r in ranks if r in traces}
    out = io.StringIO()
    for rank in sorted(traces):
        out.write(f"# rank {rank}: {len(traces[rank])} events\n")
        for t, ev in _timeline(traces[rank]):
            parts = [f"{t:14.3f}", f"r{rank}", ev.op]
            peer = format_peer(ev.peer, ev.wildcard)
            if peer is not None:
                parts.append(f"peer={peer}")
            if ev.nbytes:
                parts.append(f"bytes={ev.nbytes}")
            if ev.tag:
                parts.append(f"tag={ev.tag}")
            if ev.root >= 0:
                parts.append(f"root={ev.root}")
            if ev.comm:
                parts.append(f"comm={ev.comm}")
            if ev.result_comm >= 0:
                parts.append(f"newcomm={ev.result_comm}")
            if ev.wildcard:
                parts.append("anysrc")
            out.write(" ".join(parts) + "\n")
    return out.getvalue()


def to_csv(merged: MergedCTT, ranks: list[int] | None = None) -> str:
    """CSV flat trace with expectation timestamps."""
    traces = decompress_all(merged)
    if ranks is not None:
        traces = {r: traces[r] for r in ranks if r in traces}
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(CSV_FIELDS)
    for rank in sorted(traces):
        for seq, (t, ev) in enumerate(_timeline(traces[rank])):
            writer.writerow(
                [
                    rank, seq, ev.op, f"{t:.3f}", f"{ev.mean_duration:.3f}",
                    ev.peer, ev.peer2, ev.tag, ev.nbytes, ev.comm, ev.root,
                    int(ev.wildcard), ev.result_comm, ev.gid,
                ]
            )
    return out.getvalue()


def save_text(merged: MergedCTT, path: str, ranks: list[int] | None = None) -> None:
    with open(path, "w") as fh:
        fh.write(to_text(merged, ranks))


def save_csv(merged: MergedCTT, path: str, ranks: list[int] | None = None) -> None:
    with open(path, "w") as fh:
        fh.write(to_csv(merged, ranks))
