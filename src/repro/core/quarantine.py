"""Rank quarantine: degraded-but-analyzable handling of bad streams.

When one rank's captured stream does not match the static CST (a
corrupted capture, an un-instrumented code path, a tracer bug on one
node), aborting whole-run compression throws away every *healthy*
rank's data.  In lenient mode (the default of
:func:`repro.core.intra.compress_streams`) the offending rank is
instead **quarantined**: its partial CTT is discarded, its raw captured
stream is kept as a fallback record, healthy ranks compress normally,
and the merge covers the survivors.  The :class:`QuarantineReport`
names every victim with the exact mismatch error — nothing fails
silently, nothing healthy is lost.  Strict mode restores the
fail-fast raise (docs/INTERNALS.md §7).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.mpisim.pmpi import OP_EVENT


@dataclass
class QuarantinedRank:
    """One rank excluded from compression, with its raw capture kept."""

    rank: int
    stage: str  # pipeline stage that quarantined it (currently 'intra')
    error: str  # the StreamMismatchError message
    events: int  # communication events in the raw captured stream
    #: The rank's full captured opcode stream (markers + events) — the
    #: raw-capture fallback that keeps the rank analyzable.  Held
    #: in-memory only; the JSON form carries the counts and the error.
    raw_stream: list | None = field(default=None, repr=False, compare=False)

    def raw_events(self) -> list:
        """The raw :class:`~repro.mpisim.events.CommEvent` sequence of
        the quarantined rank (empty if the stream was not kept)."""
        if not self.raw_stream:
            return []
        return [item[1] for item in self.raw_stream if item[0] == OP_EVENT]

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "stage": self.stage,
            "error": self.error,
            "events": self.events,
            "raw_captured": self.raw_stream is not None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantinedRank":
        """Inverse of :meth:`to_dict`.  The raw stream is an in-memory
        artifact and never serialized, so the round-tripped rank has
        ``raw_stream=None`` (``raw_captured`` records that it existed)."""
        return cls(
            rank=int(data["rank"]),
            stage=str(data["stage"]),
            error=str(data["error"]),
            events=int(data["events"]),
        )


class QuarantineReport:
    """Every rank a run quarantined, in rank order."""

    def __init__(self, items: list[QuarantinedRank] | None = None) -> None:
        self.items: list[QuarantinedRank] = list(items or [])

    def __bool__(self) -> bool:
        return bool(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def add(self, item: QuarantinedRank) -> None:
        self.items.append(item)
        self.items.sort(key=lambda q: q.rank)

    def absorb(self, other: "QuarantineReport") -> None:
        for item in other.items:
            self.add(item)

    def ranks(self) -> list[int]:
        return [q.rank for q in self.items]

    def rank_set(self) -> frozenset[int]:
        return frozenset(q.rank for q in self.items)

    def get(self, rank: int) -> QuarantinedRank | None:
        for item in self.items:
            if item.rank == rank:
                return item
        return None

    def to_dict(self) -> dict:
        return {
            "quarantined_ranks": len(self.items),
            "items": [q.to_dict() for q in self.items],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantineReport":
        return cls([QuarantinedRank.from_dict(d) for d in data["items"]])

    @classmethod
    def from_json(cls, text: str) -> "QuarantineReport":
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        if not self.items:
            return "no ranks quarantined"
        ranks = ", ".join(str(q.rank) for q in self.items)
        return f"{len(self.items)} rank(s) quarantined: {ranks}"
