"""Communication-time statistics (paper §IV-A).

Two recording modes are supported, matching the paper:

* ``meanstd`` — running average and standard deviation of the repeated
  operations' times (Welford's online algorithm);
* ``hist`` — a histogram of the time distribution with logarithmic bins
  (the scheme ScalaTrace [14] uses and the paper adopts as its second
  mode).

Both support O(1) update and exact merging across ranks (inter-process
compression merges the statistics of grouped records).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

MEANSTD = "meanstd"
HIST = "hist"

# Log-scale histogram bin edges in microseconds: <1, <2, <4, ... <2^22, inf
_NBINS = 24


def _bin_index(us: float) -> int:
    if us < 1.0:
        return 0
    return min(_NBINS - 1, int(math.log2(us)) + 1)


@dataclass(slots=True)
class TimeStats:
    """Aggregated timing of one (merged) communication record.

    ``__slots__`` (via ``dataclass(slots=True)``) keeps the per-record
    footprint small and attribute access monomorphic — ``add`` runs once
    per MPI event on the tracer's critical path (twice: duration and
    pre-gap), so there is no instance ``__dict__`` to chase."""

    mode: str = MEANSTD
    count: int = 0
    mean: float = 0.0
    m2: float = 0.0  # sum of squared deviations (Welford)
    minimum: float = math.inf
    maximum: float = -math.inf
    bins: list[int] | None = None  # histogram mode only

    def __post_init__(self) -> None:
        if self.mode not in (MEANSTD, HIST):
            raise ValueError(f"unknown timing mode {self.mode!r}")
        if self.mode == HIST and self.bins is None:
            self.bins = [0] * _NBINS

    # -- update --------------------------------------------------------

    def add(self, us: float) -> None:
        self.count += 1
        delta = us - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (us - self.mean)
        if us < self.minimum:
            self.minimum = us
        if us > self.maximum:
            self.maximum = us
        if self.mode == HIST:
            self.bins[_bin_index(us)] += 1

    def add_many(self, values) -> None:
        """Fold a batch of samples, bit-identical to ``add`` called once
        per element in order.

        The Welford recurrence is inherently sequential; the win here is
        hoisting the attribute traffic out of the loop — the per-sample
        body runs on locals and the slots are written back once.
        Histogram mode keeps the per-sample ``add`` (the bin update needs
        the running count anyway and is off the hot path)."""
        if self.mode == HIST:
            for us in values:
                self.add(us)
            return
        n = self.count
        mean = self.mean
        m2 = self.m2
        minimum = self.minimum
        maximum = self.maximum
        for us in values:
            n += 1
            delta = us - mean
            mean += delta / n
            m2 += delta * (us - mean)
            if us < minimum:
                minimum = us
            if us > maximum:
                maximum = us
        self.count = n
        self.mean = mean
        self.m2 = m2
        self.minimum = minimum
        self.maximum = maximum

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self.m2 / (self.count - 1))

    # -- merge (inter-process compression) --------------------------------

    def merge(self, other: "TimeStats") -> None:
        if self.mode != other.mode:
            raise ValueError("cannot merge time stats of different modes")
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            if self.mode == HIST:
                self.bins = list(other.bins)
            return
        n1, n2 = self.count, other.count
        delta = other.mean - self.mean
        total = n1 + n2
        self.mean += delta * n2 / total
        self.m2 += other.m2 + delta * delta * n1 * n2 / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        if self.mode == HIST:
            self.bins = [a + b for a, b in zip(self.bins, other.bins)]

    def copy(self) -> "TimeStats":
        return TimeStats(
            mode=self.mode,
            count=self.count,
            mean=self.mean,
            m2=self.m2,
            minimum=self.minimum,
            maximum=self.maximum,
            bins=list(self.bins) if self.bins is not None else None,
        )

    # -- size ------------------------------------------------------------

    def approx_bytes(self) -> int:
        base = 4 + 8 * 4  # count + mean/m2/min/max
        if self.mode == HIST:
            base += sum(1 for b in self.bins if b) * 5 + 2  # sparse bins
        return base
