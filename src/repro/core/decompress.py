"""Sequence-preserving decompression / replay of compressed traces
(paper §V).

Traverses a CTT in pre-order and reconstructs each rank's exact original
event sequence:

* **loop vertex** — consume the next activation's iteration count and
  replay the children that many times;
* **branch group** — advance the group's visit counter once per encounter
  and descend the path whose recorded visit set contains the counter;
* **leaf vertex** — advance the leaf's visit counter and emit the record
  whose occurrence set contains it.

The same walker replays a single-rank CTT or one rank's view of a merged
CTT — the difference is abstracted behind :class:`PayloadView`.

For non-tail recursion the pseudo-loop linearisation makes the *order*
approximate (the paper's "approximate loop control structure"); for
everything else the replay is exact and property-tested against ground
truth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import obs
from repro.static.cst import BRANCH, CALL, LOOP

from .ctt import CTT, CTTVertex
from .errors import DecompressionError
from .records import CompressedRecord
from .sequences import IntSequence, SequenceCursor

__all__ = [
    "DecompressionError",
    "ReplayEvent",
    "PayloadView",
    "decompress_rank",
    "decompress_merged_rank",
    "decompress_all",
    "replay_with_view",
]


@dataclass(frozen=True)
class ReplayEvent:
    """One reconstructed MPI call (timing as recorded statistics)."""

    op: str
    peer: int
    peer2: int
    tag: int
    tag2: int
    nbytes: int
    nbytes2: int
    comm: int
    root: int
    wildcard: bool
    req_gids: tuple[int, ...]
    mean_duration: float
    mean_gap: float
    gid: int = -1  # CTT leaf this event replays from (request matching)
    result_comm: int = -1  # MPI_Comm_split result

    def call_tuple(self) -> tuple:
        """Identity used to compare against ground-truth events."""
        return (
            self.op, self.peer, self.peer2, self.tag, self.tag2,
            self.nbytes, self.nbytes2, self.comm, self.root, self.wildcard,
            self.result_comm,
        )


class PayloadView:
    """How the replay walker reads per-vertex payloads for one rank."""

    def loop_counts(self, vertex) -> IntSequence:
        raise NotImplementedError

    def visits(self, vertex) -> IntSequence:
        raise NotImplementedError

    def records(self, vertex) -> list[CompressedRecord]:
        raise NotImplementedError


class SingleRankView(PayloadView):
    """Payloads of one rank's own (unmerged) CTT."""

    def loop_counts(self, vertex: CTTVertex) -> IntSequence:
        return vertex.loop_counts

    def visits(self, vertex: CTTVertex) -> IntSequence:
        return vertex.visits

    def records(self, vertex: CTTVertex) -> list[CompressedRecord]:
        return vertex.records


_EMPTY = IntSequence()


def _peer_in_range(peer: int, nranks: int) -> bool:
    """Is a decoded peer a real rank or a legal sentinel?  A negative
    non-sentinel (e.g. rank 0 + REL delta −1 → −1 colliding with
    ``ANY_SOURCE``'s value) is never legal."""
    from repro.mpisim.datatypes import ANY_SOURCE
    from repro.mpisim.events import NO_PEER

    return 0 <= peer < nranks or peer in (NO_PEER, ANY_SOURCE)


class _Replayer:
    def __init__(
        self, root, view: PayloadView, rank: int, decode_peer,
        nranks: int | None = None,
    ) -> None:
        self.view = view
        self.rank = rank
        self.root = root
        self.decode_peer = decode_peer
        self.nranks = nranks
        self.events: list[ReplayEvent] = []
        self._loop_cursor: dict[int, SequenceCursor] = {}
        self._visit_cursor: dict[int, SequenceCursor] = {}
        self._record_cursors: dict[int, list[SequenceCursor]] = {}
        self._group_counter: dict[tuple[int, int], int] = {}
        self._leaf_counter: dict[int, int] = {}

    # -- cursors, keyed by vertex identity ------------------------------

    def _loops(self, vertex) -> SequenceCursor:
        key = id(vertex)
        cur = self._loop_cursor.get(key)
        if cur is None:
            cur = SequenceCursor(self.view.loop_counts(vertex) or _EMPTY)
            self._loop_cursor[key] = cur
        return cur

    def _path_visits(self, vertex) -> SequenceCursor:
        key = id(vertex)
        cur = self._visit_cursor.get(key)
        if cur is None:
            cur = SequenceCursor(self.view.visits(vertex) or _EMPTY)
            self._visit_cursor[key] = cur
        return cur

    def _leaf_records(self, vertex) -> list[SequenceCursor]:
        key = id(vertex)
        cursors = self._record_cursors.get(key)
        if cursors is None:
            cursors = [SequenceCursor(r.occurrences) for r in self.view.records(vertex)]
            self._record_cursors[key] = cursors
        return cursors

    # -- walk --------------------------------------------------------------

    def run(self) -> list[ReplayEvent]:
        self._replay_children(self.root)
        return self.events

    def _replay_children(self, vertex) -> None:
        children = vertex.children
        i = 0
        while i < len(children):
            child = children[i]
            if child.kind == CALL:
                self._emit_leaf(child)
                i += 1
            elif child.kind == LOOP:
                self._replay_loop(child)
                i += 1
            elif child.kind == BRANCH:
                i = self._replay_group(vertex, i)
            else:  # pragma: no cover - CSTs only contain these kinds
                raise DecompressionError(f"unexpected vertex kind {child.kind}")

    def _replay_loop(self, vertex) -> None:
        cursor = self._loops(vertex)
        count = cursor.next() if not cursor.exhausted() else 0
        for _ in range(count):
            self._replay_children(vertex)

    def _replay_group(self, parent, start: int) -> int:
        """Replay one branch group (consecutive same-``ast_id`` path
        vertices); returns the child index after the group."""
        children = parent.children
        ast_id = children[start].ast_id
        end = start
        paths = []
        while (
            end < len(children)
            and children[end].kind == BRANCH
            and children[end].ast_id == ast_id
            and not any(children[end].branch_path == p.branch_path for p in paths)
        ):
            paths.append(children[end])
            end += 1
        gkey = (id(parent), start)
        visit = self._group_counter.get(gkey, 0)
        self._group_counter[gkey] = visit + 1
        for path_vertex in paths:
            if self._path_visits(path_vertex).contains_next(visit):
                self._replay_children(path_vertex)
                break
        return end

    def _emit_leaf(self, vertex) -> None:
        key = id(vertex)
        visit = self._leaf_counter.get(key, 0)
        self._leaf_counter[key] = visit + 1
        records = self.view.records(vertex)
        cursors = self._leaf_records(vertex)
        for record, cursor in zip(records, cursors):
            if cursor.contains_next(visit):
                self.events.append(self._to_event(record, vertex.gid))
                return
        raise DecompressionError(
            f"rank {self.rank}: leaf gid={vertex.gid} ({vertex.op}) has no "
            f"record for visit {visit}; tried {len(records)} record(s) "
            f"with next occurrences {[c.peek() for c in cursors]}",
            rank=self.rank,
            gid=vertex.gid,
            op=vertex.op,
            visit=visit,
            candidates=tuple(r.key for r in records),
            cursors=tuple((i, c.peek()) for i, c in enumerate(cursors)),
        )

    def _decode(self, encoded, gid: int, op: str):
        peer = self.decode_peer(encoded, self.rank)
        nranks = self.nranks
        if nranks is not None:
            # A relative decode must land on a real rank — sentinels are
            # stored absolute, so a REL result of −1 is an overflow, not
            # ANY_SOURCE (satellite: boundary ranks of merged groups).
            if encoded[0] == "rel":
                ok = 0 <= peer < nranks
            else:
                ok = _peer_in_range(peer, nranks)
            if not ok:
                raise DecompressionError(
                    f"rank {self.rank}: leaf gid={gid} ({op}) decodes peer "
                    f"{encoded!r} to {peer}, outside [0, {nranks})",
                    rank=self.rank, gid=gid, op=op, candidates=(encoded,),
                )
        return peer

    def _to_event(self, record: CompressedRecord, gid: int) -> ReplayEvent:
        (
            op, peer_enc, peer2_enc, tag, tag2, nbytes, nbytes2,
            comm, root, wildcard, req_gids, result_comm,
        ) = record.key
        return ReplayEvent(
            op=op,
            peer=self._decode(peer_enc, gid, op),
            peer2=self._decode(peer2_enc, gid, op),
            tag=tag,
            tag2=tag2,
            nbytes=nbytes,
            nbytes2=nbytes2,
            comm=comm,
            root=root,
            wildcard=wildcard,
            req_gids=req_gids,
            mean_duration=record.duration.mean,
            mean_gap=record.pre_gap.mean,
            gid=gid,
            result_comm=result_comm,
        )


class MergedRankView(PayloadView):
    """One rank's view of a merged CTT: the group containing the rank."""

    def __init__(self, rank: int) -> None:
        self.rank = rank

    def loop_counts(self, vertex) -> IntSequence | None:
        group = vertex.group_of(self.rank)
        return group.counts if group is not None else None

    def visits(self, vertex) -> IntSequence | None:
        group = vertex.group_of(self.rank)
        return group.visits if group is not None else None

    def records(self, vertex) -> list[CompressedRecord]:
        group = vertex.group_of(self.rank)
        return group.records if group is not None else []


def _observed(events: list[ReplayEvent], t0: float) -> list[ReplayEvent]:
    """Record one rank-replay into the active registry (the caller read
    the clock only because a registry was active)."""
    registry = obs.active()
    if registry is not None:
        registry.observe("replay.rank_seconds", time.perf_counter() - t0)
        registry.counter_add("replay.events", len(events))
        registry.counter_add("replay.ranks", 1)
    return events


def decompress_rank(ctt: CTT, nranks: int | None = None) -> list[ReplayEvent]:
    """Replay one rank's own CTT into its original event sequence.

    With ``nranks`` given, every decoded peer is validated against
    ``[0, nranks)`` (plus the legal sentinels) and an out-of-range decode
    raises :class:`DecompressionError` instead of yielding a bogus rank.
    """
    from .ranks import decode_peer

    t0 = time.perf_counter() if obs.enabled() else 0.0
    events = _Replayer(
        ctt.root, SingleRankView(), ctt.rank, decode_peer, nranks=nranks
    ).run()
    return _observed(events, t0)


def decompress_merged_rank(
    merged, rank: int, nranks: int | None = None
) -> list[ReplayEvent]:
    """Replay ``rank``'s original sequence from the job-wide merged CTT.

    ``nranks`` enables strict peer-range validation (see
    :func:`decompress_rank`)."""
    from .ranks import decode_peer

    t0 = time.perf_counter() if obs.enabled() else 0.0
    events = _Replayer(
        merged.root, MergedRankView(rank), rank, decode_peer, nranks=nranks
    ).run()
    return _observed(events, t0)


def decompress_all(merged) -> dict[int, list[ReplayEvent]]:
    """Replay every merged rank (0..nranks-1 inferred from group members)."""
    ranks: set[int] = set()
    for vertex in merged.root.preorder():
        for group in vertex.groups.values():
            ranks.update(group.ranks)
    with obs.span("replay.decompress_all"):
        return {r: decompress_merged_rank(merged, r) for r in sorted(ranks)}


def replay_with_view(root, view: PayloadView, rank: int) -> list[ReplayEvent]:
    """Replay ``rank``'s sequence from any payload view (merged CTTs)."""
    from .ranks import decode_peer

    return _Replayer(root, view, rank, decode_peer).run()
