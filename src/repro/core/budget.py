"""Bounded-memory streaming compression: spill store + budget accounting.

The budget mode (``CypressConfig(memory_budget_bytes=...)``) keeps the
compressor's live footprint under a target by two complementary moves,
both orchestrated by :mod:`repro.core.intra`:

* **fold** — a rank whose stream has fully ended is merged into a
  partial :class:`~repro.core.inter.MergedCTT` (ScalaTrace-style
  incremental inter-process merge) and its per-rank state is dropped;
* **spill** — a *cold* rank (open stream, but not the one currently
  ingesting) has its entire ``_RankState`` snapshotted into a crash-safe
  on-disk container and evicted; the snapshot reloads on demand when the
  rank's next batch arrives or when replay/query touches the rank.

This module owns the snapshot codec and the on-disk store.  The
container reuses the v5/v6 trace format's CRC32-framed sections
(:func:`repro.core.serialize.write_section` /
:func:`~repro.core.serialize.read_sections`), so a torn spill is
detected exactly like a torn trace: the checksum fails and the load
raises :class:`~repro.core.errors.TraceFormatError` instead of
resurrecting a half-written cursor.

**What a snapshot captures** (byte-exactly): every vertex's payload
(loop counts, branch visits, leaf records) plus the cursor state that
determines future output — ``search_pos``, ``leaf_visits``, branch-group
visit counters, the open frame stack, recursion save-slots, the
request-id table and the pre-gap clock.  **What it drops** (cold on
reload): the monomorphic dispatch caches, key-interning slots, packed
raw-byte caches and run-plan MRUs.  Those are pure accelerators — a
reloaded rank re-warms them and produces the same bytes, which is what
the spill/reload property tests pin down.

A rank with unresolved wildcard receives (``pending`` non-empty) is
**unevictable**: its pending records hold live event objects whose
identity the resolution path needs, so :func:`encode_rank_state` refuses
and the budget enforcer skips the rank until the wildcards resolve.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from .errors import TraceFormatError
from .serialize import (
    ByteReader,
    ByteWriter,
    _read_record,
    _read_seq,
    _write_record,
    _write_seq,
    read_sections,
    write_section,
)

_MAGIC = b"CYSP"
_VERSION = 1

#: Section kinds inside a spill container.
SEC_END = 0
SEC_STATE = 1


class SpillFormatError(TraceFormatError):
    """A spill container that is damaged (torn write, flipped bit)."""


# ---------------------------------------------------------------------------
# Rank-state snapshot codec.


def encode_rank_state(st) -> bytes:
    """Serialize one rank's complete compression state (duck-typed
    ``_RankState``).  Raises :class:`ValueError` if the rank holds
    unresolved wildcard receives — those pin the rank in memory."""
    if st.pending:
        raise ValueError(
            f"rank {st.rank}: {len(st.pending)} unresolved wildcard "
            "receive(s) pin the state in memory (unevictable)"
        )
    w = ByteWriter()
    w.u(st.rank)
    w.f(st.last_event_end)
    _write_frames(w, st.stack)
    w.u(len(st.recursion_saved))
    for saved in st.recursion_saved:
        if saved is None:
            w.u(0)
        else:
            w.u(1)
            _write_frames(w, saved)
    w.u(len(st.req_gid))
    for rid, gid in st.req_gid.items():
        w.u(rid)
        w.z(gid)
    vertices = st.ctt.vertices()
    ops: dict[str, int] = {}
    for v in vertices:
        if v.records:
            for rec in v.records:
                op = rec.key[0]
                if op not in ops:
                    ops[op] = len(ops)
    w.u(len(ops))
    for op in ops:  # dict preserves insertion order
        w.s(op)
    for v in vertices:
        w.u(v.search_pos)
        w.u(v.leaf_visits)
        if v.loop_counts is not None:
            _write_seq(w, v.loop_counts)
        if v.visits is not None:
            _write_seq(w, v.visits)
        if v.records is not None:
            w.u(len(v.records))
            for rec in v.records:
                _write_record(w, rec, ops)
        for group in v.branch_groups:
            w.u(group.visit_counter)
    return w.bytes()


def decode_rank_state(data: bytes, state_factory, rebuild_index: bool = True):
    """Inverse of :func:`encode_rank_state`.  ``state_factory(rank)``
    must return a fresh state whose CTT mirrors the same CST the
    snapshot was taken against; the snapshot's cursor and payload are
    written into it in pre-order.  ``rebuild_index`` repopulates the
    per-leaf ``record_index`` (the unbounded-window key interner); pass
    False for bounded-window configs, which never consult it."""
    r = ByteReader(data)
    rank = r.u()
    st = state_factory(rank)
    st.last_event_end = r.f()
    ctt = st.ctt
    st.stack = _read_frames(r, ctt)
    nsaved = r.u()
    saved_list = []
    for _ in range(nsaved):
        saved_list.append(_read_frames(r, ctt) if r.u() else None)
    st.recursion_saved = saved_list
    nreq = r.u()
    req_gid = {}
    for _ in range(nreq):
        rid = r.u()
        req_gid[rid] = r.z()
    st.req_gid = req_gid
    ops = [r.s() for _ in range(r.u())]
    for v in ctt.vertices():
        v.search_pos = r.u()
        v.leaf_visits = r.u()
        if v.loop_counts is not None:
            v.loop_counts = _read_seq(r)
        if v.visits is not None:
            v.visits = _read_seq(r)
        if v.records is not None:
            records = [_read_record(r, ops) for _ in range(r.u())]
            v.records = records
            if rebuild_index:
                index = v.record_index
                for rec in records:
                    index[rec.key] = rec
        for group in v.branch_groups:
            group.visit_counter = r.u()
    return st


def _write_frames(w: ByteWriter, frames: list) -> None:
    w.u(len(frames))
    for kind, vertex, iters in frames:
        w.u(kind)
        w.z(vertex.gid if vertex is not None else -1)
        w.u(iters)


def _read_frames(r: ByteReader, ctt) -> list:
    frames = []
    for _ in range(r.u()):
        kind = r.u()
        gid = r.z()
        iters = r.u()
        frames.append([kind, ctt.vertex(gid) if gid >= 0 else None, iters])
    return frames


# ---------------------------------------------------------------------------
# On-disk store.


class SpillStore:
    """Crash-safe home of evicted rank snapshots: one container file per
    rank, written atomically (temp + ``os.replace``) so a crash
    mid-spill leaves either the previous snapshot or none — never a torn
    one that silently decodes to a wrong cursor."""

    def __init__(self, directory: str | None = None) -> None:
        if directory is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="cypress-spill-")
            directory = self._tmpdir.name
        else:
            self._tmpdir = None
            os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self._ranks: set[int] = set()

    def path(self, rank: int) -> str:
        return os.path.join(self.directory, f"rank{rank}.cysp")

    def __contains__(self, rank: int) -> bool:
        return rank in self._ranks

    def __len__(self) -> int:
        return len(self._ranks)

    def ranks(self) -> list[int]:
        return sorted(self._ranks)

    def spill(self, rank: int, payload: bytes) -> int:
        """Persist one encoded snapshot; returns the container size."""
        w = ByteWriter()
        w.raw(_MAGIC + bytes([_VERSION]))
        write_section(w, SEC_STATE, payload)
        ew = ByteWriter()
        ew.u(1)
        write_section(w, SEC_END, ew.bytes())
        data = w.bytes()
        path = self.path(rank)
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._ranks.add(rank)
        return len(data)

    def load(self, rank: int) -> bytes:
        """Read back one snapshot payload, checksum-verified."""
        path = self.path(rank)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise SpillFormatError(f"spill for rank {rank} unreadable: {exc}")
        if data[:4] != _MAGIC or len(data) < 5:
            raise SpillFormatError(f"not a spill container: {path}")
        if data[4] != _VERSION:
            raise SpillFormatError(
                f"unsupported spill version {data[4]} in {path}"
            )
        sections, complete, error = read_sections(data, 5, salvage=True)
        if not complete or not sections or sections[0][0] != SEC_STATE:
            raise SpillFormatError(
                f"torn spill container {path}: {error or 'missing state section'}"
            )
        return sections[0][1]

    def discard(self, rank: int) -> None:
        self._ranks.discard(rank)
        try:
            os.unlink(self.path(rank))
        except OSError:
            pass

    def close(self) -> None:
        for rank in list(self._ranks):
            self.discard(rank)
        if self._tmpdir is not None:
            try:
                self._tmpdir.cleanup()
            except OSError:
                pass
            self._tmpdir = None


# ---------------------------------------------------------------------------
# Accounting.


@dataclass
class BudgetCounters:
    """The ``budget.*`` observability counters (docs/INTERNALS.md §15)."""

    spills: int = 0
    spill_bytes: int = 0
    reloads: int = 0
    reload_bytes: int = 0
    folds: int = 0
    live_bytes: int = 0       # last enforcement's live total (gauge)
    peak_live_bytes: int = 0  # high-water mark of the live total

    def as_metrics(self) -> dict[str, int]:
        return {
            "budget.spills": self.spills,
            "budget.spill_bytes": self.spill_bytes,
            "budget.reloads": self.reloads,
            "budget.reload_bytes": self.reload_bytes,
            "budget.folds": self.folds,
            "budget.live_bytes": self.live_bytes,
            "budget.peak_live_bytes": self.peak_live_bytes,
        }
