"""The Compressed Trace Tree (CTT) — paper §IV.

The CTT mirrors the CST: same vertices, same edges, same GIDs.  Each
vertex additionally carries the runtime payload the dynamic module fills
in:

* loop vertices — the iteration-count sequence, one entry per activation
  (nested loops activate once per enclosing iteration, paper Fig. 10);
* branch-path vertices — the visit indices at which the path was taken,
  stride-compressed (paper Fig. 11);
* leaf vertices — the list of :class:`CompressedRecord`s.

Vertices also hold the transient cursor state used during on-the-fly
compression (ordered child matching position, visit counters).  Branch
*groups* — the sibling path-vertices of one source-level ``if`` — share a
visit counter, precomputed per parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minilang.builtins import MPI_INTRINSICS
from repro.static.cst import BRANCH, CALL, LOOP, ROOT, CSTNode

from .records import CompressedRecord
from .sequences import IntSequence


@dataclass
class BranchGroup:
    """Sibling branch-path vertices of one ``if`` under one parent."""

    ast_id: int
    first_index: int  # child index of the first path vertex
    last_index: int  # child index of the last path vertex
    paths: dict[int, "CTTVertex"] = field(default_factory=dict)
    visit_counter: int = 0  # runtime state


class CTTVertex:
    __slots__ = (
        "gid",
        "kind",
        "ast_id",
        "name",
        "op",
        "branch_path",
        "children",
        "loop_counts",
        "visits",
        "records",
        "record_index",
        "branch_groups",
        "search_pos",
        "leaf_visits",
        "_iters_active",
    )

    def __init__(self, cst_node: CSTNode) -> None:
        self.gid = cst_node.gid
        self.kind = cst_node.kind
        self.ast_id = cst_node.ast_id
        self.name = cst_node.name
        self.branch_path = cst_node.branch_path
        self.op: str | None = None
        if cst_node.kind == CALL and cst_node.name in MPI_INTRINSICS:
            self.op = MPI_INTRINSICS[cst_node.name][1]
        self.children: list[CTTVertex] = [CTTVertex(c) for c in cst_node.children]
        # payload
        self.loop_counts: IntSequence | None = IntSequence() if cst_node.kind == LOOP else None
        self.visits: IntSequence | None = IntSequence() if cst_node.kind == BRANCH else None
        self.records: list[CompressedRecord] | None = [] if cst_node.kind == CALL else None
        # key -> record, for unbounded (position-independent) merging.
        self.record_index: dict | None = {} if cst_node.kind == CALL else None
        # transient compression state
        self.branch_groups: list[BranchGroup] = self._build_groups()
        self.search_pos = 0
        self.leaf_visits = 0
        self._iters_active = 0

    def _build_groups(self) -> list[BranchGroup]:
        groups: list[BranchGroup] = []
        current: BranchGroup | None = None
        for idx, child in enumerate(self.children):
            if child.kind != BRANCH:
                current = None
                continue
            if (
                current is not None
                and current.ast_id == child.ast_id
                and child.branch_path not in current.paths
                and idx == current.last_index + 1
            ):
                current.paths[child.branch_path] = child
                current.last_index = idx
            else:
                current = BranchGroup(
                    ast_id=child.ast_id,
                    first_index=idx,
                    last_index=idx,
                    paths={child.branch_path: child},
                )
                groups.append(current)
        return groups

    # ------------------------------------------------------------------

    def preorder(self):
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def find_child(self, predicate, start: int) -> tuple["CTTVertex", int] | None:
        """Ordered wrap-around search among children."""
        n = len(self.children)
        for k in range(n):
            idx = (start + k) % n
            child = self.children[idx]
            if predicate(child):
                return child, idx
        return None

    def find_group(self, ast_id: int, start: int) -> BranchGroup | None:
        """Ordered wrap-around search among branch groups (by the child
        index of the group's first vertex)."""
        candidates = [g for g in self.branch_groups if g.ast_id == ast_id]
        if not candidates:
            return None
        for group in candidates:
            if group.first_index >= start:
                return group
        return candidates[0]  # wrap around

    # ------------------------------------------------------------------

    def approx_bytes(self) -> int:
        """Serialized size estimate of this vertex's payload + topology."""
        total = 6  # gid + kind + child count
        if self.loop_counts is not None:
            total += self.loop_counts.approx_bytes()
        if self.visits is not None:
            total += self.visits.approx_bytes()
        if self.records is not None:
            total += 2 + sum(r.approx_bytes() for r in self.records)
        return total


class CTT:
    """One rank's compressed trace tree."""

    def __init__(self, cst: CSTNode, rank: int) -> None:
        self.rank = rank
        self.root = CTTVertex(cst)
        self._by_gid: dict[int, CTTVertex] | None = None
        self._vertices: list[CTTVertex] | None = None

    def vertex(self, gid: int) -> CTTVertex:
        if self._by_gid is None:
            self._by_gid = {v.gid: v for v in self.root.preorder()}
        return self._by_gid[gid]

    def vertices(self) -> list[CTTVertex]:
        """Pre-order vertex list, cached (topology is fixed after
        construction; only payloads mutate).  The inter-process merge
        walks this once per rank — caching avoids P re-traversals."""
        if self._vertices is None:
            self._vertices = list(self.root.preorder())
        return self._vertices

    def preorder(self):
        return self.root.preorder()

    def vertex_count(self) -> int:
        return sum(1 for _ in self.preorder())

    def record_count(self) -> int:
        return sum(
            len(v.records) for v in self.preorder() if v.records is not None
        )

    def approx_bytes(self) -> int:
        return sum(v.approx_bytes() for v in self.preorder())
