"""The Compressed Trace Tree (CTT) — paper §IV.

The CTT mirrors the CST: same vertices, same edges, same GIDs.  Each
vertex additionally carries the runtime payload the dynamic module fills
in:

* loop vertices — the iteration-count sequence, one entry per activation
  (nested loops activate once per enclosing iteration, paper Fig. 10);
* branch-path vertices — the visit indices at which the path was taken,
  stride-compressed (paper Fig. 11);
* leaf vertices — the list of :class:`CompressedRecord`s.

Vertices also hold the transient cursor state used during on-the-fly
compression (ordered child matching position, visit counters).  Branch
*groups* — the sibling path-vertices of one source-level ``if`` — share a
visit counter, precomputed per parent.

Hot-path dispatch tables
------------------------

Cursor moves are the per-marker/per-event cost the paper budgets at O(1),
so child lookup must not scan the generic child list with a predicate.
At construction every vertex precomputes *monomorphic* dispatch tables —
``loop_child_by_ast_id``, ``call_children_by_op`` and ``group_by_ast_id``
— mapping the marker/event identity straight to the (few) candidate
children, as ``(child_index, child)`` pairs in ascending child order.
The ordered wrap-around semantics ("first candidate at or after
``search_pos``, else the first candidate overall") is thereby a scan over
a list that is almost always length 1, instead of a closure applied to
every sibling.

Leaf vertices additionally carry the key-interning cache slots the
intra-process compressor uses (``last_params``/``last_key``/
``last_record``, see :mod:`repro.core.intra`), plus a single-slot
monomorphic dispatch cache (``mono_op``/``mono_pair``) that shortcuts
the dict lookup when a vertex dispatches the same single-candidate op
repeatedly — the steady state inside any loop body.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minilang.builtins import MPI_INTRINSICS
from repro.mpisim.events import NONBLOCKING_OPS
from repro.static.cst import BRANCH, CALL, LOOP, ROOT, CSTNode

from .records import CompressedRecord
from .sequences import IntSequence

# ---------------------------------------------------------------------------
# CPython live-memory cost model (64-bit).  Deliberately coarse: the
# budget trigger needs to track the real footprint to within a small
# factor, not byte-perfectly — but it must *see* the transient state
# (interned dicts, raw byte caches, run plans) that the serialized-size
# estimate ignores, because under budget pressure that state dominates.
_PTR = 8
_VERTEX_BASE = 360       # CTTVertex slots + dispatch-table headers
_SEQ_BASE = 120          # IntSequence object + terms list header
_SEQ_LIVE_FACTOR = 3     # boxed terms vs packed varint estimate
_DICT_ENTRY = 104        # amortized dict slot (hash + key + value + growth)
_LIST_BASE = 64
_BYTES_BASE = 33
_TUPLE_BASE = 56
_RUN_PLAN_BYTES = 256    # one validated loop-body replay plan (MRU slot)


@dataclass
class BranchGroup:
    """Sibling branch-path vertices of one ``if`` under one parent."""

    ast_id: int
    first_index: int  # child index of the first path vertex
    last_index: int  # child index of the last path vertex
    paths: dict[int, "CTTVertex"] = field(default_factory=dict)
    visit_counter: int = 0  # runtime state


class CTTVertex:
    __slots__ = (
        "gid",
        "kind",
        "ast_id",
        "name",
        "op",
        "branch_path",
        "children",
        "loop_counts",
        "visits",
        "records",
        "record_index",
        "branch_groups",
        "search_pos",
        "leaf_visits",
        "_iters_active",
        # monomorphic dispatch tables (fixed after construction)
        "loop_child_by_ast_id",
        "call_children_by_op",
        "group_by_ast_id",
        "op_nonblocking",
        # single-slot monomorphic dispatch cache: the last op dispatched
        # from this vertex, valid only when it has exactly one candidate
        # child (wrap-around over one candidate always yields it)
        "mono_op",
        "mono_pair",
        # key-interning cache (leaf vertices; transient compression state)
        "last_params",
        "last_key",
        "last_record",
        # packed-ingest byte cache (repro.core.intra.ingest_packed): the
        # raw param-window bytes that were verified to decode to
        # ``last_params``, plus the identity of that tuple — a window
        # match against the same tuple object proves params equality
        # without decoding the event record
        "last_params_raw",
        "last_params_raw_key",
        # iteration-replay plans (loop vertices; transient compression
        # state of repro.core.intra.ingest_runs): a small MRU list of
        # validated loop-body plans, or False once plan building has
        # repeatedly failed for this vertex and is disabled
        "run_plans",
        "run_plan_fails",
    )

    def __init__(self, cst_node: CSTNode) -> None:
        self.gid = cst_node.gid
        self.kind = cst_node.kind
        self.ast_id = cst_node.ast_id
        self.name = cst_node.name
        self.branch_path = cst_node.branch_path
        self.op: str | None = None
        if cst_node.kind == CALL and cst_node.name in MPI_INTRINSICS:
            self.op = MPI_INTRINSICS[cst_node.name][1]
        # Precomputed per-leaf: does this op create a request?  (Spares
        # the per-event frozenset membership test on the hot path.)
        self.op_nonblocking = self.op in NONBLOCKING_OPS
        self.children: list[CTTVertex] = [CTTVertex(c) for c in cst_node.children]
        # payload
        self.loop_counts: IntSequence | None = IntSequence() if cst_node.kind == LOOP else None
        self.visits: IntSequence | None = IntSequence() if cst_node.kind == BRANCH else None
        self.records: list[CompressedRecord] | None = [] if cst_node.kind == CALL else None
        # key -> record, for unbounded (position-independent) merging.
        self.record_index: dict | None = {} if cst_node.kind == CALL else None
        # transient compression state
        self.branch_groups: list[BranchGroup] = self._build_groups()
        self.search_pos = 0
        self.leaf_visits = 0
        self._iters_active = 0
        # dispatch tables: marker/event identity -> ascending (idx, child)
        loops: dict[int, list[tuple[int, CTTVertex]]] = {}
        calls: dict[str, list[tuple[int, CTTVertex]]] = {}
        for idx, child in enumerate(self.children):
            if child.kind == LOOP:
                loops.setdefault(child.ast_id, []).append((idx, child))
            elif child.kind == CALL and child.op is not None:
                calls.setdefault(child.op, []).append((idx, child))
        self.loop_child_by_ast_id = loops
        self.call_children_by_op = calls
        groups: dict[int, list[BranchGroup]] = {}
        for g in self.branch_groups:
            groups.setdefault(g.ast_id, []).append(g)
        self.group_by_ast_id = groups
        self.mono_op: str | None = None
        self.mono_pair: tuple[int, CTTVertex] | None = None
        # key-interning cache (meaningful on leaves only): the last
        # event's key-relevant parameters as one tuple, compared with a
        # single C-level tuple equality on the hot path.
        self.last_params: tuple | None = None
        self.last_key = None
        self.last_record: CompressedRecord | None = None
        self.last_params_raw: bytes | None = None
        self.last_params_raw_key: tuple | None = None
        self.run_plans = None
        self.run_plan_fails = 0

    def _build_groups(self) -> list[BranchGroup]:
        groups: list[BranchGroup] = []
        current: BranchGroup | None = None
        for idx, child in enumerate(self.children):
            if child.kind != BRANCH:
                current = None
                continue
            if (
                current is not None
                and current.ast_id == child.ast_id
                and child.branch_path not in current.paths
                and idx == current.last_index + 1
            ):
                current.paths[child.branch_path] = child
                current.last_index = idx
            else:
                current = BranchGroup(
                    ast_id=child.ast_id,
                    first_index=idx,
                    last_index=idx,
                    paths={child.branch_path: child},
                )
                groups.append(current)
        return groups

    # ------------------------------------------------------------------

    def preorder(self):
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def find_child(self, predicate, start: int) -> tuple["CTTVertex", int] | None:
        """Ordered wrap-around search among children (generic reference
        path — the dispatch tables below are the fast equivalents)."""
        n = len(self.children)
        for k in range(n):
            idx = (start + k) % n
            child = self.children[idx]
            if predicate(child):
                return child, idx
        return None

    def find_loop_child(self, ast_id: int, start: int) -> tuple[int, "CTTVertex"] | None:
        """Monomorphic ordered wrap-around lookup of a loop child:
        first candidate at child index >= ``start``, else wrap to the
        first candidate.  Equivalent to ``find_child`` with a
        kind/ast_id predicate, without the closure or the sibling scan."""
        lst = self.loop_child_by_ast_id.get(ast_id)
        if lst is None:
            return None
        for pair in lst:
            if pair[0] >= start:
                return pair
        return lst[0]

    def find_call_child(self, op: str, start: int) -> tuple[int, "CTTVertex"] | None:
        """Monomorphic ordered wrap-around lookup of an MPI-call leaf."""
        lst = self.call_children_by_op.get(op)
        if lst is None:
            return None
        for pair in lst:
            if pair[0] >= start:
                return pair
        return lst[0]

    def find_group(self, ast_id: int, start: int) -> BranchGroup | None:
        """Ordered wrap-around search among branch groups (by the child
        index of the group's first vertex).  Scans the precomputed
        per-``ast_id`` group list in place — no candidate list is
        allocated per marker."""
        lst = self.group_by_ast_id.get(ast_id)
        if lst is None:
            return None
        for group in lst:
            if group.first_index >= start:
                return group
        return lst[0]  # wrap around

    # ------------------------------------------------------------------

    def serialized_bytes(self) -> int:
        """Serialized size estimate of this vertex's payload + topology
        (what the on-disk container would take — NOT the live footprint;
        see :meth:`live_bytes` for that)."""
        total = 6  # gid + kind + child count
        if self.loop_counts is not None:
            total += self.loop_counts.approx_bytes()
        if self.visits is not None:
            total += self.visits.approx_bytes()
        if self.records is not None:
            total += 2 + sum(r.approx_bytes() for r in self.records)
        return total

    #: Backwards-compatible alias — the historical name for the
    #: *serialized* estimate (analysis/baselines size accounting).
    approx_bytes = serialized_bytes

    def live_bytes(self) -> int:
        """Estimated *live* in-RAM footprint of this vertex: the payload
        as boxed CPython objects plus the transient compression state the
        serialized estimate ignores — the key/record interning dicts, the
        packed-ingest raw byte cache, and the run-plan MRU.  This is the
        budget mode's eviction trigger."""
        total = _VERTEX_BASE
        if self.loop_counts is not None:
            total += _SEQ_BASE + _SEQ_LIVE_FACTOR * self.loop_counts.approx_bytes()
        if self.visits is not None:
            total += _SEQ_BASE + _SEQ_LIVE_FACTOR * self.visits.approx_bytes()
        if self.records is not None:
            total += _LIST_BASE + _PTR * len(self.records)
            for r in self.records:
                total += r.live_bytes()
        if self.record_index:
            # Interned key -> record map: one slot per distinct key (the
            # key tuples themselves are shared with the records).
            total += _LIST_BASE + _DICT_ENTRY * len(self.record_index)
        if self.last_params is not None:
            total += _TUPLE_BASE + _PTR * len(self.last_params)
        if self.last_params_raw is not None:
            total += _BYTES_BASE + len(self.last_params_raw)
        if self.run_plans:
            total += _LIST_BASE + _RUN_PLAN_BYTES * len(self.run_plans)
        return total


class CTT:
    """One rank's compressed trace tree."""

    def __init__(self, cst: CSTNode, rank: int) -> None:
        self.rank = rank
        self.root = CTTVertex(cst)
        self._by_gid: dict[int, CTTVertex] | None = None
        self._vertices: list[CTTVertex] | None = None

    def vertex(self, gid: int) -> CTTVertex:
        if self._by_gid is None:
            self._by_gid = {v.gid: v for v in self.root.preorder()}
        return self._by_gid[gid]

    def vertices(self) -> list[CTTVertex]:
        """Pre-order vertex list, cached (topology is fixed after
        construction; only payloads mutate).  The inter-process merge
        walks this once per rank — caching avoids P re-traversals."""
        if self._vertices is None:
            self._vertices = list(self.root.preorder())
        return self._vertices

    def preorder(self):
        return self.root.preorder()

    def vertex_count(self) -> int:
        return len(self.vertices())

    def record_count(self) -> int:
        return sum(
            len(v.records) for v in self.vertices() if v.records is not None
        )

    def serialized_bytes(self) -> int:
        """Serialized-size estimate of the whole tree (container bytes)."""
        return sum(v.serialized_bytes() for v in self.vertices())

    #: Historical name for the serialized estimate.
    approx_bytes = serialized_bytes

    def live_bytes(self) -> int:
        """Estimated live in-RAM footprint of the whole tree, transient
        compression state included (the budget mode's trigger)."""
        return sum(v.live_bytes() for v in self.vertices())
