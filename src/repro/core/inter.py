"""Inter-process trace compression (paper §IV-B).

Because every rank's CTT mirrors the *same* static CST, merging two
compressed traces is a vertex-by-vertex walk — O(n) in the tree size —
instead of the O(n²) sequence alignment dynamic-only tools need.  At each
vertex, per-rank payloads that are identical (ignoring timing) collapse
into one *group* holding the payload once plus the set of ranks; timing
statistics merge across the group (paper Fig. 13: ``<p0, p1: k>`` when
both ranks agree, ``<p0: ..., p1: null>`` when they differ).

Rank sets are kept as sorted lists during merging (cheap union of disjoint
sets) and stride-compressed on serialization — even/odd rank groups like
the paper's Fig. 13 example become single ``<0, P-2, 2>`` tuples.

``merge_all`` supports two schedules:

* ``tree`` (default) — binary reduction, O(n log P) critical-path work,
  the parallel algorithm the paper describes;
* ``fold`` — sequential left fold, O(n·P) critical path (ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.static.cst import BRANCH, CALL, LOOP

from .ctt import CTT, CTTVertex
from .records import CompressedRecord
from .sequences import IntSequence


class MergeError(Exception):
    """The two trees disagree structurally (cannot happen for CTTs built
    from the same CST — indicates a bug or mixed programs)."""


def _loop_signature(counts: IntSequence):
    return ("L", counts.length, tuple(counts.terms))


def _visits_signature(visits: IntSequence):
    return ("B", visits.length, tuple(visits.terms))


def _records_signature(records: list[CompressedRecord]):
    return ("R", tuple((r.key, r.occurrences.length, tuple(r.occurrences.terms)) for r in records))


@dataclass
class Group:
    """One payload shared by a set of ranks at one merged vertex."""

    signature: tuple
    ranks: list[int]  # sorted
    rank_set: set[int]
    # exactly one of these is used, per vertex kind:
    counts: IntSequence | None = None
    visits: IntSequence | None = None
    records: list[CompressedRecord] | None = None
    # Records start as references into the source CTT; they are copied
    # lazily on the first stats merge so per-rank CTTs stay immutable.
    owns_records: bool = False

    def absorb_ranks(self, other: "Group") -> None:
        self.ranks = sorted(self.ranks + other.ranks)
        self.rank_set |= other.rank_set
        if self.records is not None and other.records is not None:
            if not self.owns_records:
                self.records = [r.copy() for r in self.records]
                self.owns_records = True
            for mine, theirs in zip(self.records, other.records):
                mine.duration.merge(theirs.duration)
                mine.pre_gap.merge(theirs.pre_gap)


class MergedVertex:
    __slots__ = (
        "gid", "kind", "ast_id", "name", "op", "branch_path",
        "children", "groups",
    )

    def __init__(self, template: CTTVertex) -> None:
        self.gid = template.gid
        self.kind = template.kind
        self.ast_id = template.ast_id
        self.name = template.name
        self.op = template.op
        self.branch_path = template.branch_path
        self.children = [MergedVertex(c) for c in template.children]
        self.groups: dict[tuple, Group] = {}

    def preorder(self):
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def group_of(self, rank: int) -> Group | None:
        for group in self.groups.values():
            if rank in group.rank_set:
                return group
        return None

    def add_group(self, group: Group) -> None:
        existing = self.groups.get(group.signature)
        if existing is None:
            self.groups[group.signature] = group
        else:
            existing.absorb_ranks(group)

    def approx_bytes(self) -> int:
        total = 6
        for group in self.groups.values():
            total += IntSequence.from_values(group.ranks).approx_bytes()
            if group.counts is not None:
                total += group.counts.approx_bytes()
            if group.visits is not None:
                total += group.visits.approx_bytes()
            if group.records is not None:
                total += 2 + sum(r.approx_bytes() for r in group.records)
        return total


class MergedCTT:
    """The job-wide compressed trace."""

    def __init__(self, root: MergedVertex, nranks_merged: int) -> None:
        self.root = root
        self.nranks_merged = nranks_merged
        self._vertices: list[MergedVertex] | None = None

    def vertices(self) -> list[MergedVertex]:
        if self._vertices is None:
            self._vertices = list(self.root.preorder())
        return self._vertices

    # -- construction -----------------------------------------------------

    @classmethod
    def from_rank(cls, ctt: CTT) -> "MergedCTT":
        root = MergedVertex(ctt.root)
        rank = ctt.rank
        for src, dst in zip(ctt.preorder(), root.preorder()):
            group = None
            if src.kind == LOOP:
                if len(src.loop_counts):
                    group = Group(
                        signature=_loop_signature(src.loop_counts),
                        ranks=[rank], rank_set={rank}, counts=src.loop_counts,
                    )
            elif src.kind == BRANCH:
                if len(src.visits):
                    group = Group(
                        signature=_visits_signature(src.visits),
                        ranks=[rank], rank_set={rank}, visits=src.visits,
                    )
            elif src.kind == CALL:
                if src.records:
                    group = Group(
                        signature=_records_signature(src.records),
                        ranks=[rank], rank_set={rank},
                        records=src.records,  # copied lazily on first merge
                    )
            if group is not None:
                dst.add_group(group)
        return cls(root, 1)

    # -- merging ------------------------------------------------------------

    def absorb(self, other: "MergedCTT") -> "MergedCTT":
        """Merge ``other`` into this tree (O(n) vertex walk)."""
        mine_vertices = self.vertices()
        their_vertices = other.vertices()
        if len(mine_vertices) != len(their_vertices):
            raise MergeError(
                f"structural mismatch: {len(mine_vertices)} vs "
                f"{len(their_vertices)} vertices (different programs?)"
            )
        for mine, theirs in zip(mine_vertices, their_vertices):
            if mine.gid != theirs.gid or mine.kind != theirs.kind:
                raise MergeError(
                    f"structural mismatch at gid {mine.gid} vs {theirs.gid}"
                )
            if theirs.groups:
                for group in theirs.groups.values():
                    mine.add_group(group)
        self.nranks_merged += other.nranks_merged
        return self

    # -- inspection -----------------------------------------------------------

    def vertex_count(self) -> int:
        return sum(1 for _ in self.root.preorder())

    def group_count(self) -> int:
        return sum(len(v.groups) for v in self.root.preorder())

    def approx_bytes(self) -> int:
        return sum(v.approx_bytes() for v in self.root.preorder())


def merge_all(ctts: list[CTT], schedule: str = "tree") -> MergedCTT:
    """Merge every rank's CTT into the job-wide compressed trace.

    ``schedule='tree'`` is the paper's parallel binary-reduction order
    (O(n log P) critical path when the log P levels run in parallel);
    ``schedule='fold'`` is the sequential baseline (ablation).
    """
    if not ctts:
        raise ValueError("no CTTs to merge")
    merged = [MergedCTT.from_rank(c) for c in ctts]
    if schedule == "fold":
        acc = merged[0]
        for m in merged[1:]:
            acc.absorb(m)
        return acc
    if schedule == "tree":
        while len(merged) > 1:
            nxt = []
            for i in range(0, len(merged) - 1, 2):
                nxt.append(merged[i].absorb(merged[i + 1]))
            if len(merged) % 2:
                nxt.append(merged[-1])
            merged = nxt
        return merged[0]
    raise ValueError(f"unknown merge schedule {schedule!r}")
