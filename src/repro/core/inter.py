"""Inter-process trace compression (paper §IV-B).

Because every rank's CTT mirrors the *same* static CST, merging two
compressed traces is a vertex-by-vertex walk — O(n) in the tree size —
instead of the O(n²) sequence alignment dynamic-only tools need.  At each
vertex, per-rank payloads that are identical (ignoring timing) collapse
into one *group* holding the payload once plus the set of ranks; timing
statistics merge across the group (paper Fig. 13: ``<p0, p1: k>`` when
both ranks agree, ``<p0: ..., p1: null>`` when they differ).

Scale machinery (the O(n log P) critical path the paper claims):

* payload signatures are *interned* per merge session — group lookup
  compares pointers with a cached hash, never re-hashing nested tuples;
* rank sets are sorted disjoint lists unified by a linear merge (with a
  concat fast path for the contiguous chunks a reduction tree produces)
  and stride-compressed lazily, cached until the group next changes;
* per-rank timing contributions are *deferred*: groups collect references
  into the source CTTs and materialize merged statistics once, in
  ascending rank order — so every schedule (fold, tree, parallel tree)
  produces bit-identical merged statistics, and absorb itself does no
  floating-point work;
* ``rank → group`` lookups use a lazily built per-vertex map (O(1) per
  query during replay instead of a scan over all groups).

``merge_all`` supports two schedules:

* ``tree`` (default) — binary reduction, O(n log P) critical-path work,
  the parallel algorithm the paper describes.  With ``workers > 1`` and
  at least ``parallel_threshold`` ranks the reduction actually runs on a
  ``multiprocessing`` pool: contiguous power-of-two chunks of pickled
  CTTs reduce concurrently and the parent folds the resulting shards.
* ``fold`` — sequential left fold, O(n·P) critical path (ablation).
"""

from __future__ import annotations

import os
import time

from hashlib import blake2b

from repro import obs
from repro.static.cst import BRANCH, CALL, LOOP

from .ctt import CTT, CTTVertex
from .errors import MergeError  # noqa: F401 - historical import location
from .ranks import ABS, REL
from .records import CompressedRecord
from .respool import run_tasks
from .sequences import IntSequence


# ---------------------------------------------------------------------------
# Interned payload signatures.


def _stable_hash(key: tuple) -> int:
    """Salt-free 64-bit signature hash.

    ``hash(tuple_of_strings)`` depends on the per-process
    ``PYTHONHASHSEED`` salt, so a worker-computed hash is garbage in the
    parent — the old ``__reduce__`` threw it away and re-walked the key
    on every unpickle.  Hashing the key's packed byte form instead makes
    signature identity process-independent: merge shards shipped home by
    the pool (and, with the shm transport, any future shared-memory
    signature table) carry their hashes with them, and dict lookups on
    either side of the pipe agree."""
    digest = blake2b(
        repr(key).encode("utf-8", "surrogatepass"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little", signed=True)


def _restore_signature(key: tuple, cached_hash: int) -> "Signature":
    sig = Signature.__new__(Signature)
    sig.key = key
    sig._hash = cached_hash
    return sig


class Signature:
    """An interned payload signature: hashes once, compares by pointer
    within a merge session (falling back to tuple equality across
    sessions, e.g. when comparing trees merged independently).

    The hash is salt-free (:func:`_stable_hash`), so it survives a
    process hop: pickling ships the cached hash instead of re-deriving
    it, and two processes always agree on a signature's hash."""

    __slots__ = ("key", "_hash")

    def __init__(self, key: tuple) -> None:
        self.key = key
        self._hash = _stable_hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Signature):
            return self.key == other.key
        return NotImplemented

    def __reduce__(self):
        return (_restore_signature, (self.key, self._hash))

    def __repr__(self) -> str:
        return f"Signature({self.key!r})"


class InternTable:
    """Signature intern pool for one merge session.

    ``hits``/``misses`` count lookups that found / created an entry —
    the interned-signature hit rate the observability layer reports.
    (One integer add per *group*, not per event; not worth gating.)
    """

    __slots__ = ("_table", "hits", "misses")

    def __init__(self) -> None:
        self._table: dict[tuple, Signature] = {}
        self.hits = 0
        self.misses = 0

    def intern(self, key: tuple) -> Signature:
        sig = self._table.get(key)
        if sig is None:
            self.misses += 1
            sig = Signature(key)
            self._table[key] = sig
        else:
            self.hits += 1
        return sig

    def canon(self, sig: Signature) -> Signature:
        """Canonical representative for a foreign Signature (absorbing a
        shard merged in another process/session)."""
        cached = self._table.get(sig.key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        self._table[sig.key] = sig
        return sig


def _loop_signature(counts: IntSequence) -> tuple:
    return ("L", counts.length, tuple(counts.terms))


def _visits_signature(visits: IntSequence) -> tuple:
    return ("B", visits.length, tuple(visits.terms))


def _records_signature(records: list[CompressedRecord]) -> tuple:
    return ("R", tuple((r.key, r.occurrences.length, tuple(r.occurrences.terms)) for r in records))


def _abs_fallback_records(
    records: list[CompressedRecord], rank: int, nranks: int
) -> list[CompressedRecord] | None:
    """Re-encode relative peers that would decode out of ``[0, nranks)``
    for ``rank`` as absolute (copy-on-write; ``None`` when every decode
    is in range — the healthy case, so healthy merges stay
    byte-identical).  An out-of-range REL key can only come from an
    already-damaged CTT (e.g. a corrupted trace file); keeping it
    relative would silently alias onto a *plausible* rank for the other
    members of whatever group it lands in — absolute encoding keeps the
    bogus value rank-independent and loud (replay validation and the
    invariant checker then pinpoint it)."""
    repaired: list[CompressedRecord] | None = None
    for i, record in enumerate(records):
        key = record.key
        if key is None:
            continue
        new_key = None
        for slot in (1, 2):
            enc = key[slot]
            if enc[0] == REL and not 0 <= rank + enc[1] < nranks:
                if new_key is None:
                    new_key = list(key)
                new_key[slot] = (ABS, rank + enc[1])
        if new_key is not None:
            if repaired is None:
                repaired = list(records)
            fixed = record.copy()
            fixed.key = tuple(new_key)
            repaired[i] = fixed
    return repaired


# ---------------------------------------------------------------------------
# Groups.


class Group:
    """One payload shared by a set of ranks at one merged vertex.

    ``ranks`` is a sorted list; member sets of distinct groups at one
    vertex are disjoint.  For leaf (CALL) groups the per-rank timing
    contributions are kept as ``(rank, records)`` references into the
    source CTTs, aligned with ``ranks``; merged records materialize
    lazily, folding statistics in ascending rank order, so the result is
    independent of the merge schedule.
    """

    __slots__ = (
        "signature", "ranks", "counts", "visits",
        "_records", "_sources", "_owns_records", "_rank_seq", "_bytes",
    )

    def __init__(
        self,
        signature,
        ranks: list[int],
        counts: IntSequence | None = None,
        visits: IntSequence | None = None,
        records: list[CompressedRecord] | None = None,
        sources: list[tuple[int, list[CompressedRecord]]] | None = None,
    ) -> None:
        self.signature = signature
        self.ranks = ranks
        self.counts = counts
        self.visits = visits
        self._records = records
        self._sources = sources
        self._owns_records = False
        self._rank_seq: IntSequence | None = None
        self._bytes: int | None = None

    # -- merged records (deferred, canonical rank order) -----------------

    @property
    def records(self) -> list[CompressedRecord] | None:
        rec = self._records
        if rec is None and self._sources is not None:
            rec = self._records = self._materialize()
        return rec

    def _materialize(self) -> list[CompressedRecord]:
        sources = self._sources
        if len(sources) == 1:
            # Borrow the single rank's record list — per-rank CTTs stay
            # immutable; a copy happens only if another rank ever joins.
            return sources[0][1]
        merged = [r.copy() for r in sources[0][1]]
        self._owns_records = True
        for _, recs in sources[1:]:
            for mine, theirs in zip(merged, recs):
                mine.duration.merge(theirs.duration)
                mine.pre_gap.merge(theirs.pre_gap)
        return merged

    def finalize(self) -> None:
        """Materialize merged records and drop per-rank source refs."""
        if self._sources is not None:
            if self._records is None:
                self._records = self._materialize()
            self._sources = None

    # -- absorption ------------------------------------------------------

    def absorb_ranks(self, other: "Group") -> None:
        """Take over ``other``'s (disjoint) member ranks — a linear merge
        of sorted lists, with concat fast paths for the contiguous rank
        chunks a reduction tree produces."""
        a, b = self.ranks, other.ranks
        sa, sb = self._sources, other._sources
        deferred = sa is not None and sb is not None
        if a[-1] < b[0]:
            a.extend(b)
            if deferred:
                sa.extend(sb)
        elif b[-1] < a[0]:
            self.ranks = b + a
            if deferred:
                self._sources = sb + sa
        else:
            self.ranks = sorted(a + b)  # disjoint, rarely interleaved
            if deferred:
                merged_sources = sa + sb
                merged_sources.sort(key=lambda s: s[0])
                self._sources = merged_sources
        if deferred:
            self._records = None
            self._owns_records = False
        else:
            self._absorb_records_eager(other)
        self._rank_seq = None
        self._bytes = None

    def _absorb_records_eager(self, other: "Group") -> None:
        """Fallback stats merge for groups without per-rank sources
        (deserialized traces): copy-on-write, merge in absorb order."""
        mine, theirs = self.records, other.records
        if mine is None or theirs is None:
            return
        if not self._owns_records:
            mine = self._records = [r.copy() for r in mine]
            self._owns_records = True
        for m, t in zip(mine, theirs):
            m.duration.merge(t.duration)
            m.pre_gap.merge(t.pre_gap)

    # -- cached size accounting ------------------------------------------

    def rank_sequence(self) -> IntSequence:
        """Stride-compressed rank set (cached until the group changes)."""
        seq = self._rank_seq
        if seq is None:
            seq = self._rank_seq = IntSequence.from_values(self.ranks)
        return seq

    def approx_bytes(self) -> int:
        total = self._bytes
        if total is None:
            total = self.rank_sequence().approx_bytes()
            if self.counts is not None:
                total += self.counts.approx_bytes()
            if self.visits is not None:
                total += self.visits.approx_bytes()
            records = self.records
            if records is not None:
                total += 2 + sum(r.approx_bytes() for r in records)
            self._bytes = total
        return total


class MergedVertex:
    __slots__ = (
        "gid", "kind", "ast_id", "name", "op", "branch_path",
        "children", "groups", "_by_rank",
    )

    def __init__(self, template: CTTVertex) -> None:
        self.gid = template.gid
        self.kind = template.kind
        self.ast_id = template.ast_id
        self.name = template.name
        self.op = template.op
        self.branch_path = template.branch_path
        self.children = [MergedVertex(c) for c in template.children]
        self.groups: dict[Signature, Group] = {}
        self._by_rank: dict[int, Group] | None = None

    def preorder(self):
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def group_of(self, rank: int) -> Group | None:
        """O(1) rank → group lookup (lazily built map, rebuilt after the
        vertex next changes)."""
        by_rank = self._by_rank
        if by_rank is None:
            by_rank = self._by_rank = {}
            for group in self.groups.values():
                for r in group.ranks:
                    by_rank[r] = group
        return by_rank.get(rank)

    def add_group(self, group: Group) -> None:
        existing = self.groups.get(group.signature)
        if existing is None:
            self.groups[group.signature] = group
        else:
            existing.absorb_ranks(group)
        self._by_rank = None

    def sorted_groups(self) -> list[Group]:
        """Groups in canonical order (by lowest member rank) — member
        sets are disjoint, so this is a schedule-independent total
        order."""
        return sorted(self.groups.values(), key=lambda g: g.ranks[0])

    def approx_bytes(self) -> int:
        return 6 + sum(g.approx_bytes() for g in self.groups.values())


class MergedCTT:
    """The job-wide compressed trace."""

    def __init__(
        self,
        root: MergedVertex,
        nranks_merged: int,
        interns: InternTable | None = None,
    ) -> None:
        self.root = root
        self.nranks_merged = nranks_merged
        self.interns = interns if interns is not None else InternTable()
        self._vertices: list[MergedVertex] | None = None
        #: Populated by ``serialize.loads(..., salvage=True)`` when the
        #: tree was recovered from a damaged file (docs/INTERNALS.md §7).
        self.salvage_info: dict | None = None

    def vertices(self) -> list[MergedVertex]:
        if self._vertices is None:
            self._vertices = list(self.root.preorder())
        return self._vertices

    # -- construction -----------------------------------------------------

    @classmethod
    def from_rank(
        cls,
        ctt: CTT,
        interns: InternTable | None = None,
        nranks: int | None = None,
    ) -> "MergedCTT":
        interns = interns if interns is not None else InternTable()
        intern = interns.intern
        root = MergedVertex(ctt.root)
        rank = ctt.rank
        merged = cls(root, 1, interns)
        for src, dst in zip(ctt.vertices(), merged.vertices()):
            group = None
            if src.kind == LOOP:
                if len(src.loop_counts):
                    group = Group(
                        signature=intern(_loop_signature(src.loop_counts)),
                        ranks=[rank], counts=src.loop_counts,
                    )
            elif src.kind == BRANCH:
                if len(src.visits):
                    group = Group(
                        signature=intern(_visits_signature(src.visits)),
                        ranks=[rank], visits=src.visits,
                    )
            elif src.kind == CALL:
                if src.records:
                    records = src.records
                    if nranks is not None:
                        repaired = _abs_fallback_records(records, rank, nranks)
                        if repaired is not None:
                            records = repaired
                    group = Group(
                        signature=intern(_records_signature(records)),
                        ranks=[rank],
                        sources=[(rank, records)],  # stats merge deferred
                    )
            if group is not None:
                dst.add_group(group)
        return merged

    # -- merging ------------------------------------------------------------

    def absorb(self, other: "MergedCTT") -> "MergedCTT":
        """Merge ``other`` into this tree (O(n) vertex walk)."""
        mine_vertices = self.vertices()
        their_vertices = other.vertices()
        if len(mine_vertices) != len(their_vertices):
            raise MergeError(
                f"structural mismatch: {len(mine_vertices)} vs "
                f"{len(their_vertices)} vertices (different programs?)"
            )
        canon = self.interns.canon
        foreign = other.interns is not self.interns
        for mine, theirs in zip(mine_vertices, their_vertices):
            if mine.gid != theirs.gid or mine.kind != theirs.kind:
                raise MergeError(
                    f"structural mismatch at gid {mine.gid} vs {theirs.gid}"
                )
            if theirs.groups:
                for group in theirs.groups.values():
                    if foreign:
                        group.signature = canon(group.signature)
                    mine.add_group(group)
        self.nranks_merged += other.nranks_merged
        return self

    def finalize(self) -> "MergedCTT":
        """Materialize every group's merged records in canonical rank
        order.  Idempotent; called by :func:`merge_all` so the result is
        bit-identical across schedules."""
        for vertex in self.vertices():
            for group in vertex.groups.values():
                group.finalize()
        return self

    def fold_rank(self, ctt: CTT, nranks: int | None = None) -> "MergedCTT":
        """Incrementally fold one completed rank into this partial tree
        (the budget mode's streaming merge, docs/INTERNALS.md §15).

        Byte-identity invariant: folding ranks one at a time **in
        ascending rank order**, finalizing after each fold, performs the
        exact float-op sequence of :func:`merge_all` — each fold's eager
        stats merge (:meth:`Group._absorb_records_eager`) replays the
        copy-then-merge-ascending recurrence that deferred
        materialization (:meth:`Group._materialize`) runs at the end.
        Folding out of ascending order would reassociate the Welford
        combines and break bit-identity; callers (``IntraProcessCompressor
        .merged``) enforce the ordering.
        """
        self.absorb(MergedCTT.from_rank(ctt, self.interns, nranks=nranks))
        return self.finalize()

    # -- inspection -----------------------------------------------------------

    def vertex_count(self) -> int:
        return len(self.vertices())

    def group_count(self) -> int:
        return sum(len(v.groups) for v in self.vertices())

    def approx_bytes(self) -> int:
        return sum(v.approx_bytes() for v in self.vertices())


# ---------------------------------------------------------------------------
# Schedules.


def _tree_reduce(
    merged: list[MergedCTT], registry=None, level_offset: int = 0
) -> MergedCTT:
    """Binary reduction: level-by-level adjacent pairing.

    With an active metrics ``registry``, each reduction level's wall time
    is recorded as timer ``inter.level.NN`` (two clock reads per *level*,
    so the instrumented and bare paths are the same code)."""
    level = level_offset
    while len(merged) > 1:
        t0 = time.perf_counter() if registry is not None else 0.0
        nxt = []
        for i in range(0, len(merged) - 1, 2):
            nxt.append(merged[i].absorb(merged[i + 1]))
        if len(merged) % 2:
            nxt.append(merged[-1])
        merged = nxt
        if registry is not None:
            registry.observe(
                f"inter.level.{level:02d}", time.perf_counter() - t0
            )
        level += 1
    if registry is not None and level > level_offset:
        registry.gauge_max("inter.levels", float(level))
    return merged[0]


def _merge_shard(payload) -> tuple:
    """Worker entry point: tree-reduce one contiguous chunk of rank CTTs
    (``payload`` is ``(ctts, nranks)``).

    Must stay a module-level function (pickled by ``multiprocessing``).
    The shard is *not* finalized — statistics materialize once, in the
    parent, in global rank order.  Ships ``(merged, stats)`` so the
    parent can aggregate per-worker timings and intern-table hit counts
    (the shard's own intern table also travels inside ``merged``; the
    parent only adds counts for shards whose tables get discarded when
    they are absorbed into shard 0's).
    """
    ctts, nranks = payload
    t0 = time.perf_counter()
    interns = InternTable()
    merged = _tree_reduce(
        [MergedCTT.from_rank(c, interns, nranks=nranks) for c in ctts]
    )
    stats = {
        "elapsed": time.perf_counter() - t0,
        "intern_hits": interns.hits,
        "intern_misses": interns.misses,
    }
    return merged, stats


def _resolve_workers(workers) -> int:
    if workers in (None, 0, 1):
        return 1
    if workers == "auto":
        return os.cpu_count() or 1
    n = int(workers)
    return n if n > 1 else 1


def _next_pow2(n: int) -> int:
    return 1 << max(0, (n - 1).bit_length())


def _parallel_tree_merge(
    ctts: list[CTT],
    nworkers: int,
    retries: int = 1,
    task_timeout: float | None = None,
    fault_plan=None,
    nranks: int | None = None,
) -> MergedCTT | None:
    """Run the reduction tree on a process pool; ``None`` means "fall
    back to serial" (too few chunks to win).

    Chunks are contiguous, power-of-two-sized and aligned, so the work
    partitions exactly along subtree boundaries of the serial reduction
    tree — each worker computes a subtree, the parent folds the shard
    roots level by level.

    Worker failures are handled by the resilient executor
    (:func:`repro.core.respool.run_tasks`): a chunk whose worker raises,
    dies, or exceeds ``task_timeout`` is retried and ultimately
    tree-reduced serially in the parent — ``_merge_shard`` is
    deterministic over immutable per-rank CTTs, so the recovered merge
    is byte-identical to an all-healthy run.
    """
    chunk = _next_pow2(-(-len(ctts) // nworkers))
    chunks = [
        (ctts[i : i + chunk], nranks) for i in range(0, len(ctts), chunk)
    ]
    if len(chunks) < 2:
        return None
    results = run_tasks(
        _merge_shard,
        chunks,
        stage="inter",
        workers=min(nworkers, len(chunks)),
        retries=retries,
        timeout=task_timeout,
        fault_plan=fault_plan,
    )
    shards = [merged for merged, _stats in results]
    registry = obs.active()
    if registry is not None:
        registry.gauge_max("inter.workers", float(len(chunks)))
        for i, (_merged, stats) in enumerate(results):
            registry.observe("inter.worker_seconds", stats["elapsed"])
            if i > 0:  # shard 0's table survives; count the discarded ones
                registry.counter_add("inter.intern_hits", stats["intern_hits"])
                registry.counter_add(
                    "inter.intern_misses", stats["intern_misses"]
                )
        # Parent-side fold levels stack on top of the worker subtrees.
        depth = max(chunk - 1, 0).bit_length()
        return _tree_reduce(shards, registry, level_offset=depth)
    return _tree_reduce(shards)


def merge_all(
    ctts: list[CTT],
    schedule: str = "tree",
    workers: int | str | None = None,
    parallel_threshold: int = 64,
    *,
    retries: int = 1,
    task_timeout: float | None = None,
    fault_plan=None,
    nranks: int | None = None,
) -> MergedCTT:
    """Merge every rank's CTT into the job-wide compressed trace.

    ``schedule='tree'`` is the paper's parallel binary-reduction order
    (O(n log P) critical path); pass ``workers=N`` (or ``"auto"``) to run
    the reduction on a ``multiprocessing`` pool once at least
    ``parallel_threshold`` ranks are being merged.  ``schedule='fold'``
    is the sequential baseline (ablation).  Every schedule produces a
    bit-identical merged trace: group statistics always materialize in
    ascending rank order.

    Pool-worker failures (crash, kill, hang under ``task_timeout``) are
    retried ``retries`` times with backoff, then the failed chunks are
    merged serially in the parent — loudly (``RuntimeWarning`` plus
    ``faults.*`` counters), with the recovered result byte-identical to
    an all-healthy run.  ``fault_plan`` lets tests/CI inject worker
    faults (docs/INTERNALS.md §7).

    With ``nranks`` given, record keys whose relative peer would decode
    outside ``[0, nranks)`` for their rank are re-encoded absolute at
    merge time (copy-on-write; healthy traces are untouched and stay
    byte-identical) so a damaged delta cannot silently alias onto a
    plausible rank after grouping.
    """
    if not ctts:
        raise ValueError("no CTTs to merge")
    if schedule not in ("tree", "fold"):
        raise ValueError(f"unknown merge schedule {schedule!r}")
    registry = obs.active()
    with obs.span("inter.merge"):
        result = _merge_all_impl(ctts, schedule, workers, parallel_threshold,
                                 registry, retries, task_timeout, fault_plan,
                                 nranks)
    if registry is not None:
        _publish_merge_metrics(registry, result)
    return result


def _merge_all_impl(
    ctts, schedule, workers, parallel_threshold, registry,
    retries, task_timeout, fault_plan, nranks=None,
) -> MergedCTT:
    if schedule == "tree":
        nworkers = _resolve_workers(workers)
        if nworkers > 1 and len(ctts) >= parallel_threshold:
            merged = _parallel_tree_merge(
                ctts, nworkers,
                retries=retries, task_timeout=task_timeout,
                fault_plan=fault_plan, nranks=nranks,
            )
            if merged is not None:
                return merged.finalize()
    interns = InternTable()
    merged = [MergedCTT.from_rank(c, interns, nranks=nranks) for c in ctts]
    if schedule == "fold":
        acc = merged[0]
        for m in merged[1:]:
            acc.absorb(m)
        return acc.finalize()
    return _tree_reduce(merged, registry).finalize()


def _publish_merge_metrics(registry, merged: MergedCTT) -> None:
    interns = merged.interns
    registry.counter_add("inter.ranks_merged", merged.nranks_merged)
    registry.counter_add("inter.vertices", merged.vertex_count())
    registry.counter_add("inter.groups", merged.group_count())
    registry.counter_add("inter.intern_hits", interns.hits)
    registry.counter_add("inter.intern_misses", interns.misses)
    hits = registry.counters.get("inter.intern_hits", 0)
    misses = registry.counters.get("inter.intern_misses", 0)
    if hits + misses:
        registry.gauge_set("inter.intern_hit_rate", hits / (hits + misses))
