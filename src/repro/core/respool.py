"""Fault-tolerant worker-pool executor shared by both compression pools.

The intra-process compression shards (:func:`repro.core.intra.
compress_streams`) and the inter-process reduction chunks
(:func:`repro.core.inter.merge_all`) used to run on a bare
``multiprocessing.Pool`` whose every failure — pool creation refused by
a sandbox, a worker OOM-killed, a worker hung — collapsed into one
silent ``except (OSError, ValueError, ImportError)`` that quietly
degraded to serial.  :func:`run_tasks` replaces that with an explicit
recovery ladder (docs/INTERNALS.md §7):

1. **pool attempt** — one forked worker process per task (tasks are
   already worker-count-sized shards), results shipped back over pipes;
   a worker that raises, is killed (pipe closes with no message), or
   blows its per-task ``timeout`` marks only *its* task failed;
2. **bounded retry** — failed tasks are re-run on fresh workers, up to
   ``retries`` rounds with exponential backoff (injected faults fire on
   their configured attempts only, so retries exercise real recovery);
3. **serial re-execution** — tasks still failing after every retry run
   in the parent process, one by one.  Task functions are deterministic
   and side-effect-free on the parent, so the recovered result is
   byte-identical to an all-healthy run; a *deterministic* task error
   (e.g. a strict-mode stream mismatch) re-raises here as itself.

Every degradation is loud: a ``RuntimeWarning`` plus the ``obs``
counters ``faults.retries``, ``faults.task_failures`` and
``faults.pool_fallbacks``.

Fault injection: a seeded :class:`~repro.faults.FaultPlan` threads a
kill/hang/raise action into specific (stage, task, attempt) slots; the
action executes worker-side before the task body, exactly where a real
crash would land.
"""

from __future__ import annotations

import struct
import time
import warnings
from collections import deque
from multiprocessing import connection as _mpconn

from repro import obs
from repro.core.shmring import RingClosed, RingTimeout, ShmRing
from repro.faults.workers import apply_worker_fault


class _PoolUnavailable(Exception):
    """Raised internally when no worker process could be started at all
    (fork refused, no pipes, …) — the caller falls back to serial."""


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` when the
    platform cannot fork.

    Workers rely on fork-inherited state — the task function, payload
    objects and open sinks are *inherited*, never pickled — so quietly
    substituting the platform default (``spawn`` on macOS/Windows)
    would re-import the parent module in every worker and re-pickle
    arguments that were never designed to travel: at best it dies, at
    worst it double-runs work.  Callers treat ``None`` as "take the
    loud serial fallback"."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def fork_available() -> bool:
    """Whether the fork-based pools (pipe and shm transports) can run."""
    try:
        return _fork_context() is not None
    except Exception:
        return False


def _child_main(conn, func, payload, fault_action, hang_seconds) -> None:
    """Worker body: optional injected fault, then the task.  Reports
    ``("ok", result)`` or ``("err", message)`` over the pipe; a killed
    worker reports nothing — the parent sees the pipe close."""
    try:
        apply_worker_fault(fault_action, hang_seconds)
        msg = ("ok", func(payload))
    except BaseException as exc:  # noqa: BLE001 - ship any failure home
        msg = ("err", f"{type(exc).__name__}: {exc}")
    try:
        conn.send(msg)
    except Exception:  # parent already gave up on us
        pass
    finally:
        conn.close()


def _warn_degraded(stage: str, what: str) -> None:
    warnings.warn(
        f"{stage}: {what}",
        RuntimeWarning,
        stacklevel=3,
    )


def _run_wave(
    ctx,
    func,
    payloads,
    indices,
    workers: int,
    timeout: float | None,
    fault_plan,
    stage: str,
    attempt: int,
    hang_seconds: float,
):
    """Run one round of ``indices`` on at most ``workers`` concurrent
    processes.  Returns ``(results, failures)`` where ``failures`` is a
    list of ``(index, reason)``.  Raises :class:`_PoolUnavailable` if
    not even one worker could be started."""
    results: dict[int, object] = {}
    failures: list[tuple[int, str]] = []
    queue = deque(indices)
    running: dict[object, tuple[int, object, float | None]] = {}
    started_any = False

    while queue or running:
        while queue and len(running) < workers:
            i = queue.popleft()
            fault = (
                fault_plan.worker_fault(stage, i, attempt)
                if fault_plan is not None
                else None
            )
            try:
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_main,
                    args=(child_conn, func, payloads[i], fault, hang_seconds),
                )
                proc.start()
            except (OSError, ValueError, ImportError) as exc:
                if not started_any and not running and not results:
                    raise _PoolUnavailable(str(exc)) from exc
                failures.append((i, f"worker spawn failed: {exc}"))
                continue
            started_any = True
            child_conn.close()
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            running[parent_conn] = (i, proc, deadline)
        if not running:
            break
        now = time.monotonic()
        deadlines = [d for (_, _, d) in running.values() if d is not None]
        wait_for = max(0.0, min(deadlines) - now) if deadlines else None
        ready = _mpconn.wait(list(running), timeout=wait_for)
        for conn in ready:
            i, proc, _deadline = running.pop(conn)
            try:
                kind, value = conn.recv()
            except (EOFError, OSError):
                # The pipe closed with no message: the worker died
                # without reporting (SIGKILL / OOM / segfault).
                proc.join()
                kind = "err"
                value = f"worker died (exit code {proc.exitcode})"
            conn.close()
            proc.join()
            if kind == "ok":
                results[i] = value
            else:
                failures.append((i, value))
        now = time.monotonic()
        overdue = [
            conn
            for conn, (_i, _p, d) in running.items()
            if d is not None and d <= now
        ]
        for conn in overdue:
            i, proc, _deadline = running.pop(conn)
            proc.kill()
            proc.join()
            conn.close()
            failures.append((i, f"task exceeded {timeout}s timeout"))
    return results, failures


def run_tasks(
    func,
    payloads,
    *,
    stage: str,
    workers: int,
    retries: int = 1,
    timeout: float | None = None,
    backoff: float = 0.05,
    fault_plan=None,
) -> list:
    """Run ``func`` over every payload with pool → retry → serial
    recovery; returns results in payload order.

    ``func`` must be a module-level function of one argument (the same
    pickling contract the old ``Pool.map`` path had), deterministic, and
    safe to re-execute — all three task functions in this codebase
    compress/merge immutable inputs, so re-running a shard is exact.
    ``timeout`` is per task attempt (``None`` disables — a genuinely
    hung worker then blocks, as it always did).  ``fault_plan`` injects
    worker faults for tests/CI and is never set in production paths.
    """
    ntasks = len(payloads)
    if ntasks == 0:
        return []
    registry = obs.active()
    results: list = [None] * ntasks
    pending = list(range(ntasks))
    reasons: dict[int, str] = {}
    hang_seconds = (
        fault_plan.hang_seconds if fault_plan is not None else 60.0
    )
    try:
        ctx = _fork_context()
        why = "fork start method unavailable on this platform"
    except Exception as exc:  # no multiprocessing at all
        ctx = None
        why = f"pool unavailable ({exc})"
    if ctx is None:
        _warn_degraded(stage, f"{why}; running serially")
        if registry is not None:
            registry.counter_add("faults.pool_fallbacks", ntasks)
        return [func(p) for p in payloads]
    attempt = 0
    while pending and attempt <= retries:
        if attempt:
            time.sleep(backoff * (2 ** (attempt - 1)))
            if registry is not None:
                registry.counter_add("faults.retries", len(pending))
        try:
            wave_results, failures = _run_wave(
                ctx, func, payloads, pending, workers, timeout,
                fault_plan, stage, attempt, hang_seconds,
            )
        except _PoolUnavailable as exc:
            _warn_degraded(
                stage, f"pool unavailable ({exc}); running serially"
            )
            if registry is not None:
                registry.counter_add("faults.pool_fallbacks", len(pending))
            for i in pending:
                results[i] = func(payloads[i])
            return results
        for i, value in wave_results.items():
            results[i] = value
        pending = [i for i, _reason in failures]
        reasons = dict(failures)
        if pending and registry is not None:
            registry.counter_add("faults.task_failures", len(failures))
        attempt += 1
    if pending:
        detail = "; ".join(
            f"task {i}: {reasons[i]}" for i in pending if i in reasons
        )
        _warn_degraded(
            stage,
            f"{len(pending)} pool task(s) failed after {retries} "
            f"retr{'y' if retries == 1 else 'ies'}"
            + (f" ({detail})" if detail else "")
            + "; re-executing serially",
        )
        if registry is not None:
            registry.counter_add("faults.pool_fallbacks", len(pending))
        for i in pending:
            results[i] = func(payloads[i])
    return results


# ---------------------------------------------------------------------------
# Shared-memory transport: persistent warm pool fed over SPSC byte rings.
#
# Where run_tasks() forks one process per task and ships results over a
# pipe, ShmPool forks its workers once and streams *packed* payload
# bytes to them through per-worker ShmRings — hand-off is a memcpy, and
# a warm pool amortizes fork cost across jobs (the bench's steady-state
# number).  The wire grammar per ring is:
#
#     b"J" <Q job_id> <I nitems>      job header
#     b"I" <q key> <Q nbytes> bytes   one item (nitems times)
#     ... next job ... | close_write() = shutdown (EOF)
#
# Results return over a per-worker pipe as ("batch", [frame, ...])
# messages whose frames are ("ok", job_id, result) or
# ("err", job_id, message); a worker holds frames only while its ring
# already queues more work.  Any protocol failure — worker death, ring
# timeout, worker-side exception — raises ShmPoolError in the parent;
# callers fall back to run_tasks(), whose pool → retry → serial ladder
# then owns recovery.  The shm pool itself never retries: one recovery
# ladder in the codebase is enough.
# ---------------------------------------------------------------------------

_JOB_HDR = struct.Struct("<QI")
_ITEM_HDR = struct.Struct("<qQ")
_TAG_JOB = b"J"
_TAG_ITEM = b"I"

#: Per-worker ring size.  Deliberately smaller than a typical packed
#: rank blob so the wraparound path runs constantly in production, not
#: just in tests.
DEFAULT_RING_CAPACITY = 1 << 20

#: How long a worker waits mid-frame before concluding the parent is
#: gone (the idle wait between jobs is unbounded; daemonized workers
#: die with the parent).
_WORKER_FRAME_TIMEOUT = 600.0

#: Result frames per pipe message.  A worker holds finished-job results
#: while more work is already queued on its ring and ships them as one
#: frame — one pickle header + one wakeup for a whole backlog instead
#: of per job.
_RESULT_BATCH = 32


class ShmPoolError(RuntimeError):
    """The shm transport failed; the caller should fall back to the
    pipe transport (:func:`run_tasks`)."""


def _shm_worker_main(ring, conn, func, stage, fault_plan, hang_seconds):
    """Worker body: loop over jobs arriving on ``ring``, feed each
    job's items to ``func`` as a lazy iterator (reads pull bytes from
    the ring — natural backpressure), report results in batched frames:
    a frame flushes when the ring has no further job queued (so the
    parent is never left waiting on a held result) or at
    ``_RESULT_BATCH`` held results."""
    outbox: list = []

    def flush():
        if outbox:
            conn.send(("batch", outbox[:]))
            outbox.clear()

    try:
        while True:
            if outbox and (ring.pending() == 0 or len(outbox) >= _RESULT_BATCH):
                flush()
            try:
                tag = ring.read_exact(1)
            except RingClosed:
                break  # orderly shutdown
            if tag != _TAG_JOB:
                outbox.append(
                    ("err", -1, f"protocol: expected job tag, got {tag!r}")
                )
                break
            job_id, nitems = _JOB_HDR.unpack(
                ring.read_exact(_JOB_HDR.size, timeout=_WORKER_FRAME_TIMEOUT)
            )
            consumed = 0

            def read_item():
                tag = ring.read_exact(1, timeout=_WORKER_FRAME_TIMEOUT)
                if tag != _TAG_ITEM:
                    raise RuntimeError(
                        f"protocol: expected item tag, got {tag!r}"
                    )
                key, nbytes = _ITEM_HDR.unpack(
                    ring.read_exact(_ITEM_HDR.size, timeout=_WORKER_FRAME_TIMEOUT)
                )
                payload = ring.read_exact(nbytes, timeout=_WORKER_FRAME_TIMEOUT)
                return key, payload

            def items():
                nonlocal consumed
                while consumed < nitems:
                    item = read_item()
                    consumed += 1
                    yield item

            try:
                fault = (
                    fault_plan.worker_fault(stage, job_id, 0)
                    if fault_plan is not None
                    else None
                )
                apply_worker_fault(fault, hang_seconds)
                msg = ("ok", job_id, func(items()))
            except BaseException as exc:  # noqa: BLE001 - ship failure home
                msg = ("err", job_id, f"{type(exc).__name__}: {exc}")
            # Drain any items func() left unread so the ring stays framed
            # for the next job.
            while consumed < nitems:
                read_item()
                consumed += 1
            outbox.append(msg)
        flush()
    except (RingClosed, RingTimeout, EOFError, OSError, RuntimeError):
        pass  # parent gone or stream broken: nothing useful left to do
    finally:
        try:
            conn.close()
        except Exception:
            pass


class ShmPool:
    """Persistent fork-inherited worker pool fed over shared-memory
    rings.  ``func`` receives an iterator of ``(key, payload_bytes)``
    per job and returns one picklable result (results still return
    over a pipe — they are small; the payloads were the problem).

    Workers allocate **lazily**: construction only checks that the
    platform can fork, and a worker's ring + process come into being
    the first time a :meth:`run` call actually routes a job to it.  A
    pool sized for the worst case therefore costs nothing until (and
    unless) that much parallelism is used, and ``setup_seconds`` breaks
    the amortized one-time cost into its ``ring_alloc`` and ``fork``
    components for the bench gauges."""

    def __init__(
        self,
        func,
        *,
        stage: str,
        workers: int,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        fault_plan=None,
        hang_seconds: float = 60.0,
    ) -> None:
        ctx = _fork_context()
        if ctx is None:
            raise ShmPoolError("fork start method unavailable")
        self._ctx = ctx
        self.stage = stage
        self.workers = max(1, workers)
        self._func = func
        self._ring_capacity = ring_capacity
        self._fault_plan = fault_plan
        self._hang_seconds = hang_seconds
        self._rings: list[ShmRing] = []
        self._procs: list = []
        self._conns: list = []
        self._closed = False
        #: One-time setup cost actually paid so far, by component.
        self.setup_seconds: dict[str, float] = {"ring_alloc": 0.0, "fork": 0.0}

    def ensure_workers(self, n: int) -> None:
        """Raise the pool's worker capacity to at least ``n``.  Free
        until jobs are routed there — allocation stays lazy."""
        if n > self.workers:
            self.workers = n

    def _materialize(self, n: int) -> None:
        """Fork workers ``len(self._procs)`` .. ``n-1`` (with their
        rings), so the next :meth:`run` can feed them."""
        try:
            while len(self._procs) < n:
                t0 = time.perf_counter()
                ring = ShmRing(self._ring_capacity)
                t1 = time.perf_counter()
                self.setup_seconds["ring_alloc"] += t1 - t0
                self._rings.append(ring)
                parent_conn, child_conn = self._ctx.Pipe(duplex=False)
                proc = self._ctx.Process(
                    target=_shm_worker_main,
                    args=(ring, child_conn, self._func, self.stage,
                          self._fault_plan, self._hang_seconds),
                    daemon=True,
                )
                proc.start()
                self.setup_seconds["fork"] += time.perf_counter() - t1
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except (OSError, ValueError, ImportError) as exc:
            raise ShmPoolError(f"could not start shm pool: {exc}") from exc

    # ------------------------------------------------------------------

    def run(self, jobs, timeout: float | None = None) -> list:
        """Run ``jobs`` (each a list of ``(key, payload_bytes)`` items)
        and return results in job order.  Job *j* goes to worker
        ``j % workers``; feeding is round-robin and non-blocking, so a
        worker with a full ring never stalls the others.  ``timeout``
        is per job-wave (multiplied by the deepest per-worker queue)."""
        if self._closed:
            raise ShmPoolError("pool is closed")
        njobs = len(jobs)
        if njobs == 0:
            return []
        # Only as many workers as there are jobs ever materialize — a
        # 2-shard run on an 8-wide pool forks two processes, not eight.
        used = min(self.workers, njobs)
        self._materialize(used)
        # Queue the wire pieces per worker: headers interleaved with
        # zero-copy payload views.
        queues: list[deque] = [deque() for _ in range(used)]
        for j, items in enumerate(jobs):
            q = queues[j % used]
            q.append(_TAG_JOB + _JOB_HDR.pack(j, len(items)))
            for key, payload in items:
                q.append(_TAG_ITEM + _ITEM_HDR.pack(key, len(payload)))
                q.append(memoryview(payload))
        offsets = [0] * used
        deadline = None
        if timeout is not None:
            waves = (njobs + used - 1) // used
            deadline = time.monotonic() + timeout * max(1, waves)
        results: dict[int, object] = {}
        live = dict(zip(self._conns[:used], self._procs[:used]))
        while len(results) < njobs:
            progress = False
            for w in range(used):
                ring = self._rings[w]
                q = queues[w]
                while q:
                    wrote = ring.try_write(q[0], offsets[w])
                    if wrote == 0:
                        break
                    progress = True
                    offsets[w] += wrote
                    if offsets[w] == len(q[0]):
                        q.popleft()
                        offsets[w] = 0
            feeding = any(queues)
            ready = _mpconn.wait(
                list(live), timeout=0 if feeding and progress else 0.002
            )
            for conn in ready:
                proc = live[conn]
                try:
                    frame = conn.recv()
                except (EOFError, OSError):
                    proc.join(timeout=1.0)
                    raise ShmPoolError(
                        f"{self.stage}: shm worker died "
                        f"(exit code {proc.exitcode})"
                    ) from None
                entries = frame[1] if frame[0] == "batch" else [frame]
                for kind, job_id, value in entries:
                    if kind != "ok":
                        raise ShmPoolError(
                            f"{self.stage}: shm worker failed job {job_id}: "
                            f"{value}"
                        )
                    results[job_id] = value
            if deadline is not None and time.monotonic() > deadline:
                raise ShmPoolError(
                    f"{self.stage}: shm pool exceeded {timeout}s per-wave "
                    f"deadline with {njobs - len(results)} job(s) pending"
                )
        return [results[j] for j in range(njobs)]

    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut workers down (EOF on each ring), join, free segments."""
        if self._closed:
            return
        self._closed = True
        for ring in self._rings:
            try:
                ring.close_write()
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        for ring in self._rings:
            try:
                ring.close()
                ring.unlink()
            except Exception:
                pass

    def __enter__(self) -> "ShmPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
