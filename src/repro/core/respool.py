"""Fault-tolerant worker-pool executor shared by both compression pools.

The intra-process compression shards (:func:`repro.core.intra.
compress_streams`) and the inter-process reduction chunks
(:func:`repro.core.inter.merge_all`) used to run on a bare
``multiprocessing.Pool`` whose every failure — pool creation refused by
a sandbox, a worker OOM-killed, a worker hung — collapsed into one
silent ``except (OSError, ValueError, ImportError)`` that quietly
degraded to serial.  :func:`run_tasks` replaces that with an explicit
recovery ladder (docs/INTERNALS.md §7):

1. **pool attempt** — one forked worker process per task (tasks are
   already worker-count-sized shards), results shipped back over pipes;
   a worker that raises, is killed (pipe closes with no message), or
   blows its per-task ``timeout`` marks only *its* task failed;
2. **bounded retry** — failed tasks are re-run on fresh workers, up to
   ``retries`` rounds with exponential backoff (injected faults fire on
   their configured attempts only, so retries exercise real recovery);
3. **serial re-execution** — tasks still failing after every retry run
   in the parent process, one by one.  Task functions are deterministic
   and side-effect-free on the parent, so the recovered result is
   byte-identical to an all-healthy run; a *deterministic* task error
   (e.g. a strict-mode stream mismatch) re-raises here as itself.

Every degradation is loud: a ``RuntimeWarning`` plus the ``obs``
counters ``faults.retries``, ``faults.task_failures`` and
``faults.pool_fallbacks``.

Fault injection: a seeded :class:`~repro.faults.FaultPlan` threads a
kill/hang/raise action into specific (stage, task, attempt) slots; the
action executes worker-side before the task body, exactly where a real
crash would land.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from multiprocessing import connection as _mpconn

from repro import obs
from repro.faults.workers import apply_worker_fault


class _PoolUnavailable(Exception):
    """Raised internally when no worker process could be started at all
    (fork refused, no pipes, …) — the caller falls back to serial."""


def _fork_context():
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _child_main(conn, func, payload, fault_action, hang_seconds) -> None:
    """Worker body: optional injected fault, then the task.  Reports
    ``("ok", result)`` or ``("err", message)`` over the pipe; a killed
    worker reports nothing — the parent sees the pipe close."""
    try:
        apply_worker_fault(fault_action, hang_seconds)
        msg = ("ok", func(payload))
    except BaseException as exc:  # noqa: BLE001 - ship any failure home
        msg = ("err", f"{type(exc).__name__}: {exc}")
    try:
        conn.send(msg)
    except Exception:  # parent already gave up on us
        pass
    finally:
        conn.close()


def _warn_degraded(stage: str, what: str) -> None:
    warnings.warn(
        f"{stage}: {what}",
        RuntimeWarning,
        stacklevel=3,
    )


def _run_wave(
    ctx,
    func,
    payloads,
    indices,
    workers: int,
    timeout: float | None,
    fault_plan,
    stage: str,
    attempt: int,
    hang_seconds: float,
):
    """Run one round of ``indices`` on at most ``workers`` concurrent
    processes.  Returns ``(results, failures)`` where ``failures`` is a
    list of ``(index, reason)``.  Raises :class:`_PoolUnavailable` if
    not even one worker could be started."""
    results: dict[int, object] = {}
    failures: list[tuple[int, str]] = []
    queue = deque(indices)
    running: dict[object, tuple[int, object, float | None]] = {}
    started_any = False

    while queue or running:
        while queue and len(running) < workers:
            i = queue.popleft()
            fault = (
                fault_plan.worker_fault(stage, i, attempt)
                if fault_plan is not None
                else None
            )
            try:
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_main,
                    args=(child_conn, func, payloads[i], fault, hang_seconds),
                )
                proc.start()
            except (OSError, ValueError, ImportError) as exc:
                if not started_any and not running and not results:
                    raise _PoolUnavailable(str(exc)) from exc
                failures.append((i, f"worker spawn failed: {exc}"))
                continue
            started_any = True
            child_conn.close()
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            running[parent_conn] = (i, proc, deadline)
        if not running:
            break
        now = time.monotonic()
        deadlines = [d for (_, _, d) in running.values() if d is not None]
        wait_for = max(0.0, min(deadlines) - now) if deadlines else None
        ready = _mpconn.wait(list(running), timeout=wait_for)
        for conn in ready:
            i, proc, _deadline = running.pop(conn)
            try:
                kind, value = conn.recv()
            except (EOFError, OSError):
                # The pipe closed with no message: the worker died
                # without reporting (SIGKILL / OOM / segfault).
                proc.join()
                kind = "err"
                value = f"worker died (exit code {proc.exitcode})"
            conn.close()
            proc.join()
            if kind == "ok":
                results[i] = value
            else:
                failures.append((i, value))
        now = time.monotonic()
        overdue = [
            conn
            for conn, (_i, _p, d) in running.items()
            if d is not None and d <= now
        ]
        for conn in overdue:
            i, proc, _deadline = running.pop(conn)
            proc.kill()
            proc.join()
            conn.close()
            failures.append((i, f"task exceeded {timeout}s timeout"))
    return results, failures


def run_tasks(
    func,
    payloads,
    *,
    stage: str,
    workers: int,
    retries: int = 1,
    timeout: float | None = None,
    backoff: float = 0.05,
    fault_plan=None,
) -> list:
    """Run ``func`` over every payload with pool → retry → serial
    recovery; returns results in payload order.

    ``func`` must be a module-level function of one argument (the same
    pickling contract the old ``Pool.map`` path had), deterministic, and
    safe to re-execute — all three task functions in this codebase
    compress/merge immutable inputs, so re-running a shard is exact.
    ``timeout`` is per task attempt (``None`` disables — a genuinely
    hung worker then blocks, as it always did).  ``fault_plan`` injects
    worker faults for tests/CI and is never set in production paths.
    """
    ntasks = len(payloads)
    if ntasks == 0:
        return []
    registry = obs.active()
    results: list = [None] * ntasks
    pending = list(range(ntasks))
    reasons: dict[int, str] = {}
    hang_seconds = (
        fault_plan.hang_seconds if fault_plan is not None else 60.0
    )
    try:
        ctx = _fork_context()
    except Exception as exc:  # no multiprocessing at all
        _warn_degraded(stage, f"pool unavailable ({exc}); running serially")
        if registry is not None:
            registry.counter_add("faults.pool_fallbacks", ntasks)
        return [func(p) for p in payloads]
    attempt = 0
    while pending and attempt <= retries:
        if attempt:
            time.sleep(backoff * (2 ** (attempt - 1)))
            if registry is not None:
                registry.counter_add("faults.retries", len(pending))
        try:
            wave_results, failures = _run_wave(
                ctx, func, payloads, pending, workers, timeout,
                fault_plan, stage, attempt, hang_seconds,
            )
        except _PoolUnavailable as exc:
            _warn_degraded(
                stage, f"pool unavailable ({exc}); running serially"
            )
            if registry is not None:
                registry.counter_add("faults.pool_fallbacks", len(pending))
            for i in pending:
                results[i] = func(payloads[i])
            return results
        for i, value in wave_results.items():
            results[i] = value
        pending = [i for i, _reason in failures]
        reasons = dict(failures)
        if pending and registry is not None:
            registry.counter_add("faults.task_failures", len(failures))
        attempt += 1
    if pending:
        detail = "; ".join(
            f"task {i}: {reasons[i]}" for i in pending if i in reasons
        )
        _warn_degraded(
            stage,
            f"{len(pending)} pool task(s) failed after {retries} "
            f"retr{'y' if retries == 1 else 'ies'}"
            + (f" ({detail})" if detail else "")
            + "; re-executing serially",
        )
        if registry is not None:
            registry.counter_add("faults.pool_fallbacks", len(pending))
        for i in pending:
            results[i] = func(payloads[i])
    return results
