"""CYPRESS error taxonomy.

Every failure the pipeline can diagnose raises a subclass of
:class:`CypressError`, so callers distinguish "the input is wrong" from
"the pipeline is broken" without catching bare ``Exception`` — and can
catch the whole family with one clause when they only care that a stage
failed.

The taxonomy (docs/INTERNALS.md §7):

``CypressError``
    Base class of every pipeline-diagnosed failure.

``StreamMismatchError``
    The dynamic marker/event stream did not match the static CST
    (unknown GID/op, unbalanced structure markers, bad opcode) —
    indicates a static/dynamic inconsistency: a bug, a corrupted
    capture, or an un-instrumented program.  In lenient mode the
    offending *rank* is quarantined instead of the error propagating
    (see :func:`repro.core.intra.compress_streams`).

``MergeError``
    Two trees disagree structurally during the inter-process merge
    (cannot happen for CTTs built from the same CST — indicates a bug
    or mixed programs).

``TraceFormatError``
    The serialized trace bytes are corrupt, truncated, or of an
    unsupported version.  Inherits :class:`ValueError` for one release:
    existing callers that catch ``ValueError`` around
    :func:`repro.core.serialize.loads` keep working, but new code
    should catch :class:`TraceFormatError` (the ``ValueError`` base
    will be dropped).

``DecompressionError``
    The compressed trace is internally inconsistent: replay reached a
    state the payload cannot satisfy (a leaf visit no record covers, an
    exhausted cursor, an out-of-range decoded peer).  Carries the full
    replay context — ``rank``, ``gid``, ``op``, ``visit``, the record
    keys that were tried and the remaining cursor state — so salvage
    reports name the exact divergence instead of just a vertex.

Worker-pool faults deliberately have no exception class of their own:
the resilient executor (:mod:`repro.core.respool`) retries and then
re-executes failed tasks serially in the parent, so the only errors
that ever propagate are the task's own deterministic ones — which
re-raise as themselves.
"""

from __future__ import annotations


class CypressError(Exception):
    """Base class of every failure the CYPRESS pipeline diagnoses."""


class StreamMismatchError(CypressError):
    """The event/marker stream did not match the static CST — indicates
    a static/dynamic inconsistency (a bug, a corrupted capture, or an
    un-instrumented program)."""


class MergeError(CypressError):
    """The two trees disagree structurally (cannot happen for CTTs built
    from the same CST — indicates a bug or mixed programs)."""


class TraceFormatError(CypressError, ValueError):
    """Corrupt, truncated, or unsupported serialized trace bytes.

    Inherits :class:`ValueError` for one release so existing
    ``except ValueError`` callers around ``serialize.loads`` keep
    working; catch :class:`TraceFormatError` going forward.
    """


class DecompressionError(CypressError):
    """The compressed trace is internally inconsistent under replay.

    ``candidates`` holds the record keys that were tried at the failing
    leaf and ``cursors`` the remaining state of each record's occurrence
    cursor as ``(record_index, next_value)`` pairs (``next_value`` is
    ``None`` for an exhausted cursor) — enough to see *which* payload the
    replay expected and what it found instead.
    """

    def __init__(
        self,
        message: str,
        *,
        rank: int | None = None,
        gid: int = -1,
        op: str | None = None,
        visit: int = -1,
        candidates: tuple = (),
        cursors: tuple = (),
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.gid = gid
        self.op = op
        self.visit = visit
        self.candidates = tuple(candidates)
        self.cursors = tuple(cursors)


__all__ = [
    "CypressError",
    "StreamMismatchError",
    "MergeError",
    "TraceFormatError",
    "DecompressionError",
]
