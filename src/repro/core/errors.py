"""CYPRESS error taxonomy.

Every failure the pipeline can diagnose raises a subclass of
:class:`CypressError`, so callers distinguish "the input is wrong" from
"the pipeline is broken" without catching bare ``Exception`` — and can
catch the whole family with one clause when they only care that a stage
failed.

The taxonomy (docs/INTERNALS.md §7):

``CypressError``
    Base class of every pipeline-diagnosed failure.

``StreamMismatchError``
    The dynamic marker/event stream did not match the static CST
    (unknown GID/op, unbalanced structure markers, bad opcode) —
    indicates a static/dynamic inconsistency: a bug, a corrupted
    capture, or an un-instrumented program.  In lenient mode the
    offending *rank* is quarantined instead of the error propagating
    (see :func:`repro.core.intra.compress_streams`).

``MergeError``
    Two trees disagree structurally during the inter-process merge
    (cannot happen for CTTs built from the same CST — indicates a bug
    or mixed programs).

``TraceFormatError``
    The serialized trace bytes are corrupt, truncated, or of an
    unsupported version.  Inherits :class:`ValueError` for one release:
    existing callers that catch ``ValueError`` around
    :func:`repro.core.serialize.loads` keep working, but new code
    should catch :class:`TraceFormatError` (the ``ValueError`` base
    will be dropped).

Worker-pool faults deliberately have no exception class of their own:
the resilient executor (:mod:`repro.core.respool`) retries and then
re-executes failed tasks serially in the parent, so the only errors
that ever propagate are the task's own deterministic ones — which
re-raise as themselves.
"""

from __future__ import annotations


class CypressError(Exception):
    """Base class of every failure the CYPRESS pipeline diagnoses."""


class StreamMismatchError(CypressError):
    """The event/marker stream did not match the static CST — indicates
    a static/dynamic inconsistency (a bug, a corrupted capture, or an
    un-instrumented program)."""


class MergeError(CypressError):
    """The two trees disagree structurally (cannot happen for CTTs built
    from the same CST — indicates a bug or mixed programs)."""


class TraceFormatError(CypressError, ValueError):
    """Corrupt, truncated, or unsupported serialized trace bytes.

    Inherits :class:`ValueError` for one release so existing
    ``except ValueError`` callers around ``serialize.loads`` keep
    working; catch :class:`TraceFormatError` going forward.
    """


__all__ = [
    "CypressError",
    "StreamMismatchError",
    "MergeError",
    "TraceFormatError",
]
