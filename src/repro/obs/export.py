"""Exporters for :class:`~repro.obs.registry.MetricsRegistry`.

Two renderings of the same snapshot:

* :func:`to_json` / :func:`write_json` — the machine-readable form the
  CLI's ``--metrics-out`` writes and CI uploads as an artifact.  The
  document shape is pinned by :data:`METRICS_SCHEMA` (draft 2020-12) so
  consumers — tests, dashboards, the bench harness — can validate it.
* :func:`format_text` — the human-readable summary ``--metrics`` prints:
  the span tree with durations, then counters, gauges and timers.
"""

from __future__ import annotations

import json

from .registry import MetricsRegistry

#: JSON Schema for the exported metrics document (draft 2020-12).
METRICS_SCHEMA: dict = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "CYPRESS pipeline metrics",
    "type": "object",
    "required": ["version", "counters", "gauges", "timers", "spans"],
    "properties": {
        "version": {"const": 1},
        "counters": {
            "type": "object",
            "additionalProperties": {"type": "integer"},
        },
        "gauges": {
            "type": "object",
            "additionalProperties": {"type": "number"},
        },
        "timers": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["count", "total_s", "min_s", "max_s", "mean_s"],
                "properties": {
                    "count": {"type": "integer", "minimum": 0},
                    "total_s": {"type": "number"},
                    "min_s": {"type": "number"},
                    "max_s": {"type": "number"},
                    "mean_s": {"type": "number"},
                },
                "additionalProperties": False,
            },
        },
        "spans": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "path", "start_s", "end_s", "seconds"],
                "properties": {
                    "name": {"type": "string"},
                    "path": {"type": "string"},
                    "start_s": {"type": "number"},
                    "end_s": {"type": "number"},
                    "seconds": {"type": "number"},
                },
                "additionalProperties": False,
            },
        },
    },
    "additionalProperties": False,
}


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    return json.dumps(registry.to_dict(), indent=indent, sort_keys=True) + "\n"


def write_json(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(to_json(registry))


def format_text(registry: MetricsRegistry) -> str:
    """Human-readable snapshot: span tree, counters, gauges, timers."""
    lines: list[str] = []
    if registry.spans:
        lines.append("stage spans:")
        for span in registry.spans:
            depth = span["path"].count("/")
            lines.append(
                f"  {'  ' * depth}{span['name']:<24s} {span['seconds']:10.4f} s"
            )
    if registry.counters:
        lines.append("counters:")
        for name in sorted(registry.counters):
            lines.append(f"  {name:<36s} {registry.counters[name]:>14,d}")
    if registry.gauges:
        lines.append("gauges:")
        for name in sorted(registry.gauges):
            lines.append(f"  {name:<36s} {registry.gauges[name]:>14.4f}")
    if registry.timers:
        lines.append("timers:")
        for name in sorted(registry.timers):
            t = registry.timers[name]
            lines.append(
                f"  {name:<36s} n={t.count:<6d} total={t.total:9.4f}s "
                f"mean={t.total / t.count if t.count else 0.0:9.6f}s"
            )
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
