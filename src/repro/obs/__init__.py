"""Pipeline observability: metrics, stage tracing, profiling hooks.

Usage (the CLI's ``--metrics`` / ``--metrics-out`` do exactly this)::

    from repro import obs

    registry = obs.enable()
    run = run_cypress(source, nprocs=64)
    run.save("trace.cyp")
    obs.disable()
    print(obs.format_text(registry))        # human-readable
    obs.write_json(registry, "m.json")      # schema: obs.METRICS_SCHEMA

When no registry is enabled every hook is a no-op (see
:mod:`repro.obs.registry` for the zero-cost-when-off design notes).
"""

from .export import METRICS_SCHEMA, format_text, to_json, write_json
from .registry import (
    NULL_SPAN,
    MetricsRegistry,
    TimerStat,
    active,
    disable,
    enable,
    enabled,
    span,
)

__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_SPAN",
    "TimerStat",
    "active",
    "disable",
    "enable",
    "enabled",
    "format_text",
    "span",
    "to_json",
    "write_json",
]
