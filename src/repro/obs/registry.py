"""Process-global metrics/tracing registry.

The observability layer has one hard requirement (ROADMAP: "runs as fast
as the hardware allows" presumes you can measure it *without changing
it*): **zero cost when off**.  The design keeps the hot paths honest:

* Instrumentation sites at *stage* granularity (compile, trace, merge,
  serialize, replay) call :func:`span` / :meth:`MetricsRegistry.observe`.
  When no registry is active, :func:`span` returns a shared no-op
  context manager — one module-global load and two empty method calls
  per *stage*, never per event.
* Per-event statistics (mono-cache hit rate, key-interning hit rate,
  fallback entries, wildcard queue depth) are **not** sampled on the hot
  path at all.  The intra-process compressor keeps plain integer
  counters that are incremented only on its *slow* paths (a cache miss
  already costs a dict lookup; one more integer add is noise), and the
  totals they are rated against are derived after the fact from CTT
  state (``leaf_visits`` already counts every dispatched event).  See
  :meth:`repro.core.intra.IntraProcessCompressor.metrics_counters`.

The registry itself is deliberately small: counters (monotonic ints),
gauges (last-write-wins floats with a ``gauge_max`` variant), timers
(count/total/min/max aggregates) and spans (wall-clock stage intervals
with a dotted hierarchy path built from the active span stack).

Cross-process aggregation: worker processes (``--compress-workers`` /
``--merge-workers`` pools) never touch the global registry — they return
plain stat dicts which the parent folds in via :meth:`merge_dict`
(counters sum, gauges max, timers merge, worker spans fold into timers
keyed by their path, since wall-clock offsets are not comparable across
processes).
"""

from __future__ import annotations

import time


class TimerStat:
    """Count/total/min/max aggregate of observed durations (seconds)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds

    def merge(self, other: "TimerStat") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "min_s": self.minimum if self.count else 0.0,
            "max_s": self.maximum,
            "mean_s": self.total / self.count if self.count else 0.0,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimerStat":
        st = cls()
        st.count = data["count"]
        st.total = data["total_s"]
        st.minimum = data["min_s"] if st.count else float("inf")
        st.maximum = data["max_s"]
        return st


class _SpanHandle:
    """Active span: context manager recording one stage interval."""

    __slots__ = ("_registry", "name", "path", "start", "end")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self.name = name
        self.path = name
        self.start = 0.0
        self.end = 0.0

    def __enter__(self) -> "_SpanHandle":
        reg = self._registry
        stack = reg._span_stack
        self.path = f"{stack[-1].path}/{self.name}" if stack else self.name
        stack.append(self)
        self.start = time.perf_counter() - reg._t0
        return self

    def __exit__(self, *exc) -> None:
        reg = self._registry
        self.end = time.perf_counter() - reg._t0
        if reg._span_stack and reg._span_stack[-1] is self:
            reg._span_stack.pop()
        else:  # unbalanced exit (a stage raised through a nested span)
            reg._span_stack = [s for s in reg._span_stack if s is not self]
        reg.spans.append(
            {"name": self.name, "path": self.path,
             "start_s": self.start, "end_s": self.end,
             "seconds": self.end - self.start}
        )


class _NullSpan:
    """Shared no-op context manager returned when observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()


class MetricsRegistry:
    """One process's metric store for one observed pipeline run."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.timers: dict[str, TimerStat] = {}
        self.spans: list[dict] = []
        self._span_stack: list[_SpanHandle] = []
        self._t0 = time.perf_counter()

    # -- counters / gauges ------------------------------------------------

    def counter_add(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    # -- timers / spans ---------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = TimerStat()
        timer.observe(seconds)

    def span(self, name: str) -> _SpanHandle:
        return _SpanHandle(self, name)

    def attribute_span(self, name: str, seconds: float) -> None:
        """Record a stage whose time accumulated piecewise inside an
        enclosing stage (inline intra-process compression interleaves
        with the traced run, so it has no contiguous interval): the span
        ends now and is back-dated by its accumulated duration."""
        now = time.perf_counter() - self._t0
        stack = self._span_stack
        path = f"{stack[-1].path}/{name}" if stack else name
        self.spans.append(
            {"name": name, "path": path, "start_s": now - seconds,
             "end_s": now, "seconds": seconds}
        )

    def span_paths(self) -> list[str]:
        return [s["path"] for s in self.spans]

    # -- aggregation ------------------------------------------------------

    def merge_dict(self, data: dict) -> None:
        """Fold a worker process's :meth:`to_dict` output into this
        registry: counters sum, gauges take the max (they are depths and
        rates), timers merge, and worker spans become timer observations
        keyed by span path — wall-clock offsets from another process are
        not comparable with ours."""
        for name, value in data.get("counters", {}).items():
            self.counter_add(name, value)
        for name, value in data.get("gauges", {}).items():
            self.gauge_max(name, value)
        for name, tdata in data.get("timers", {}).items():
            timer = self.timers.get(name)
            if timer is None:
                timer = self.timers[name] = TimerStat()
            timer.merge(TimerStat.from_dict(tdata))
        for span in data.get("spans", []):
            self.observe(f"span/{span['path']}", span["seconds"])

    # -- export -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {k: t.to_dict() for k, t in self.timers.items()},
            "spans": list(self.spans),
        }


# ---------------------------------------------------------------------------
# Process-global activation.

_ACTIVE: MetricsRegistry | None = None


def active() -> MetricsRegistry | None:
    """The installed registry, or ``None`` when observability is off."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the process-global store."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable() -> MetricsRegistry | None:
    """Turn observability off; returns the registry that was active."""
    global _ACTIVE
    registry, _ACTIVE = _ACTIVE, None
    return registry


def span(name: str):
    """Stage span against the active registry; no-op singleton when off."""
    registry = _ACTIVE
    if registry is None:
        return NULL_SPAN
    return registry.span(name)
