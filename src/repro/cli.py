"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``trace``    — run a workload under CYPRESS and write the compressed trace
* ``compare``  — run one workload with every compression method, print sizes
* ``replay``   — decompress a trace file and print/replay one rank
* ``predict``  — SIM-MPI performance prediction from a trace file
* ``cst``      — compile a MiniMPI file and print its CST
* ``patterns`` — ASCII communication-matrix heatmap of a workload
* ``info``     — per-op summary of a trace file (from the compressed form)
* ``export``   — flatten a trace file to text or CSV
* ``diff``     — compare two trace files by replayed call sequences
* ``verify``   — end-to-end self-check: trace a workload, decompress, and
  compare against ground truth (sequence preservation)
* ``hotspots`` — which loops/call sites dominate communication time
* ``faultsmoke`` — run the seeded fault-injection matrix (worker kill /
  hang / raise, stream corruption, trace truncation) and check every
  degraded mode recovers; writes a JSON report for CI
* ``check``    — trace-integrity suite (docs/INTERNALS.md §8): structural
  invariants over the CST and (merged) CTTs, the wildcard nondeterminism
  audit, and optionally the differential harness and the seeded payload
  fault matrix; exits nonzero on invariant violations
"""

from __future__ import annotations

import argparse
import sys

from repro.workloads import WORKLOADS

#: Exit code for a corrupted/unreadable trace file (distinct from the
#: generic failure 1 and argparse's 2) so scripts can tell "the data is
#: damaged — retry with --salvage" apart from every other failure.
EXIT_CORRUPT_TRACE = 3


def _load_trace(path: str, salvage: bool = False):
    """Load a trace for replay/query/info; a damaged file exits with
    :data:`EXIT_CORRUPT_TRACE` and a one-line ``--salvage`` hint."""
    from repro.core import serialize
    from repro.core.errors import TraceFormatError

    try:
        return serialize.load(path, salvage=salvage)
    except TraceFormatError as exc:
        print(f"error: corrupted trace {path!r}: {exc}", file=sys.stderr)
        if not salvage:
            print("hint: retry with --salvage to recover the longest "
                  "checksum-valid prefix", file=sys.stderr)
        raise SystemExit(EXIT_CORRUPT_TRACE)


def _parse_bytes(value: str) -> int:
    """``'64M'`` / ``'512K'`` / ``'2G'`` / plain integer -> bytes
    (binary units)."""
    s = value.strip().upper()
    mult = 1
    if s and s[-1] in "KMG":
        mult = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}[s[-1]]
        s = s[:-1]
    try:
        return int(s) * mult
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid byte size {value!r}")


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("workload", choices=sorted(WORKLOADS))
    p.add_argument("-n", "--nprocs", type=int, required=True)
    p.add_argument("--scale", type=float, default=1.0,
                   help="iteration-count scale factor (1.0 = repo default)")


def _add_merge_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--merge-schedule", choices=("tree", "fold"), default="tree",
                   help="inter-process merge schedule (default: tree)")
    p.add_argument("--merge-workers", default=None,
                   help="worker processes for the tree merge: an integer "
                        "or 'auto' (default: serial)")


def _add_compress_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--compress-workers", default=None,
                   help="defer compression and shard ranks over this many "
                        "worker processes: an integer or 'auto' "
                        "(default: compress inline while tracing)")
    p.add_argument("--transport", choices=("auto", "shm", "pickle"),
                   default="auto",
                   help="parallel compression hand-off: 'shm' streams "
                        "packed events through shared-memory ring buffers "
                        "to a warm worker pool, 'pickle' uses the fork+pipe "
                        "executor; 'auto' (default) picks shm wherever the "
                        "platform can fork")


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--strict", action="store_true",
                   help="abort on any CST/stream mismatch instead of "
                        "quarantining the offending rank")
    p.add_argument("--retry", type=int, default=1, metavar="N",
                   help="worker-pool retry rounds before serial "
                        "re-execution (default: 1)")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-task timeout for pool workers; a hung worker "
                        "is killed and its task retried (default: none)")
    p.add_argument("--quarantine-out", default=None, metavar="PATH",
                   help="write the QuarantineReport as JSON to PATH")


def _default_procs(w) -> int:
    """Smallest valid rank count >= 4 (else the smallest valid one) —
    big enough for real grouping, small enough for CI."""
    eligible = [p for p in w.valid_procs if p >= 4]
    return min(eligible or w.valid_procs)


def _selfcheck(compiled_cst, merged, nprocs: int) -> int:
    """Shared --selfcheck tail for trace/verify: invariant-check the
    artifacts just produced; returns the number of violations."""
    from repro import obs
    from repro.verify import check_cst, check_merged, publish_verify_metrics

    violations = check_cst(compiled_cst) + check_merged(merged, nranks=nprocs)
    publish_verify_metrics(
        obs.active(), checks=2, violations=len(violations)
    )
    if violations:
        print(f"SELFCHECK FAILED: {len(violations)} violation(s)",
              file=sys.stderr)
        for v in violations[:10]:
            print(f"  [{v.code}] {v.message}", file=sys.stderr)
    else:
        print("selfcheck: trace invariants OK")
    return len(violations)


def _report_quarantine(quarantine, out_path: str | None) -> None:
    if quarantine:
        print(f"WARNING: {quarantine.summary()}", file=sys.stderr)
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(quarantine.to_json())
        print(f"quarantine report -> {out_path}")


def _add_metrics_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--metrics", action="store_true",
                   help="print a pipeline-metrics summary (stage spans, "
                        "counters, cache hit rates) after the command")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write pipeline metrics as JSON to PATH "
                        "(schema: repro.obs.METRICS_SCHEMA)")


def _workers_arg(value) -> int | str | None:
    if value is None or value == "auto":
        return value
    return int(value)


def _merge_workers(args: argparse.Namespace) -> int | str | None:
    return _workers_arg(getattr(args, "merge_workers", None))


def _compress_workers(args: argparse.Namespace) -> int | str | None:
    return _workers_arg(getattr(args, "compress_workers", None))


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.core import run_cypress

    w = WORKLOADS[args.workload]
    w.check_procs(args.nprocs)
    config = None
    compress_workers = _compress_workers(args)
    if args.memory_budget is not None:
        from repro.core.intra import CypressConfig

        config = CypressConfig(memory_budget_bytes=args.memory_budget)
        if compress_workers is None:
            # The incremental fold runs on the deferred (captured-stream)
            # path; budget mode is serial anyway, so one worker.
            compress_workers = 1
    run = run_cypress(
        w.source, args.nprocs, defines=w.defines(args.nprocs, args.scale),
        config=config,
        compress_workers=compress_workers,
        strict=args.strict, retries=args.retry,
        task_timeout=args.task_timeout,
        transport=getattr(args, "transport", "auto"),
    )
    run.merge(schedule=args.merge_schedule, workers=_merge_workers(args),
              retries=args.retry, task_timeout=args.task_timeout)
    nbytes = run.save(args.output, gzip=args.gzip)
    print(f"{args.workload} on {args.nprocs} ranks:")
    print(f"  events traced    : {run.run_result.total_events}")
    print(f"  virtual time     : {run.run_result.elapsed / 1e6:.3f} s")
    print(f"  compressed trace : {nbytes} bytes -> {args.output}")
    _report_quarantine(run.quarantine, args.quarantine_out)
    if args.selfcheck and _selfcheck(run.compiled.cst, run.merge(),
                                     args.nprocs):
        return 1
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis import measure_all_methods

    w = WORKLOADS[args.workload]
    m = measure_all_methods(w, args.nprocs, scale=args.scale)
    print(f"{args.workload} on {args.nprocs} ranks "
          f"({m.app_events} events, base run {m.base_seconds:.2f}s):")
    print(f"  {'method':14s} {'bytes':>10s} {'+gzip':>10s} "
          f"{'intra-ovh':>10s} {'inter':>9s}")
    for name, r in m.methods.items():
        gz = str(r.gzip_bytes) if r.gzip_bytes is not None else "-"
        print(
            f"  {name:14s} {r.trace_bytes:10d} {gz:>10s} "
            f"{m.overhead_pct(name, 'intra'):9.1f}% {r.inter_seconds:8.3f}s"
        )
    return 0


def _report_salvage(merged) -> None:
    info = merged.salvage_info
    if info is None or info["complete"]:
        return
    print(
        "WARNING: trace salvaged — "
        f"{info['vertices_with_payload']}/{info['vertices_total']} vertices "
        f"recovered ({info['error']})",
        file=sys.stderr,
    )


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.core import decompress_merged_rank
    from repro.core.export import format_peer

    merged = _load_trace(args.trace, salvage=args.salvage)
    _report_salvage(merged)
    events = decompress_merged_rank(merged, args.rank)
    print(f"rank {args.rank}: {len(events)} events")
    for ev in events[: args.limit]:
        rendered = format_peer(ev.peer, ev.wildcard)
        peer = f" peer={rendered}" if rendered is not None else ""
        size = f" bytes={ev.nbytes}" if ev.nbytes else ""
        print(f"  {ev.op}{peer}{size} tag={ev.tag}")
    if len(events) > args.limit:
        print(f"  ... and {len(events) - args.limit} more")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    from repro.core import decompress_all
    from repro.replay import fit_loggp, predict

    merged = _load_trace(args.trace, salvage=args.salvage)
    _report_salvage(merged)
    traces = decompress_all(merged)
    params = fit_loggp()
    result = predict(traces, params)
    print(f"ranks          : {len(traces)}")
    print(f"predicted time : {result.elapsed / 1e6:.4f} s")
    print(f"comm fraction  : {result.comm_fraction() * 100:.1f}%")
    bottleneck = result.bottleneck_ranks(3)
    if bottleneck:
        waits = ", ".join(
            f"r{r}={result.wait_fraction(r) * 100:.0f}%" for r in bottleneck
        )
        print(f"least-waiting  : {waits} (likely bottleneck ranks)")
    return 0


def cmd_cst(args: argparse.Namespace) -> int:
    from repro.static import compile_minimpi

    source = open(args.file).read() if args.file != "-" else sys.stdin.read()
    compiled = compile_minimpi(source, source_name=args.file)
    print(compiled.cst.pretty())
    print(f"\n{compiled.cst.size()} vertices, "
          f"compile {compiled.compile_seconds * 1000:.1f} ms")
    return 0


def cmd_patterns(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.analysis import ascii_heatmap, communication_matrix, message_sizes
    from repro.core import run_cypress

    w = WORKLOADS[args.workload]
    w.check_procs(args.nprocs)
    run = run_cypress(
        w.source, args.nprocs, defines=w.defines(args.nprocs, args.scale)
    )
    matrix = communication_matrix(run.merge(), args.nprocs)
    print(f"{args.workload} communication matrix ({args.nprocs} ranks, "
          f"{int(np.sum(matrix)) // 1024} KB total):")
    print(ascii_heatmap(matrix))
    print("message sizes:", dict(sorted(message_sizes(run.merge()).items())))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    from repro.analysis.report import summarize

    merged = _load_trace(args.trace, salvage=args.salvage)
    _report_salvage(merged)
    print(summarize(merged).format())
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.core import export

    merged = _load_trace(args.trace, salvage=args.salvage)
    _report_salvage(merged)
    ranks = [int(r) for r in args.ranks.split(",")] if args.ranks else None
    if args.format == "csv":
        text = export.to_csv(merged, ranks)
    else:
        text = export.to_text(merged, ranks)
    if args.output == "-":
        print(text, end="")
    else:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    return 0


def cmd_hotspots(args: argparse.Namespace) -> int:
    from repro.analysis.hotspots import hotspots, top_leaves

    merged = _load_trace(args.trace, salvage=args.salvage)
    _report_salvage(merged)
    tree = hotspots(merged)
    print(tree.format())
    print("\ntop call sites:")
    for h in top_leaves(merged, args.top):
        print(f"  gid={h.gid:4d} {h.label:<16s} {h.total_us / 1e3:10.2f} ms "
              f"({h.calls} calls)")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.decompress import decompress_merged_rank
    from repro.core.inter import merge_all
    from repro.core.intra import IntraProcessCompressor, compress_streams
    from repro.driver import run_compiled
    from repro.mpisim.pmpi import MultiSink, RecordingSink, StreamCaptureSink
    from repro.static.instrument import compile_minimpi

    w = WORKLOADS[args.workload]
    w.check_procs(args.nprocs)
    compiled = compile_minimpi(w.source)
    recorder = RecordingSink()
    workers = _compress_workers(args)
    if workers is not None:
        capture = StreamCaptureSink()
        run_compiled(
            compiled, args.nprocs, defines=w.defines(args.nprocs, args.scale),
            tracer=MultiSink([recorder, capture]),
        )
        compressor = compress_streams(
            compiled.cst, capture.streams, workers=workers,
            strict=args.strict, retries=args.retry,
            task_timeout=args.task_timeout,
            transport=getattr(args, "transport", "auto"),
        )
    else:
        compressor = IntraProcessCompressor(compiled.cst)
        run_compiled(
            compiled, args.nprocs, defines=w.defines(args.nprocs, args.scale),
            tracer=MultiSink([recorder, compressor]),
        )
    bad_ranks = compressor.quarantine.rank_set()
    _report_quarantine(compressor.quarantine, args.quarantine_out)
    merged = merge_all(
        [compressor.ctt(r) for r in range(args.nprocs) if r not in bad_ranks],
        schedule=args.merge_schedule,
        workers=_merge_workers(args),
        retries=args.retry,
        task_timeout=args.task_timeout,
        nranks=args.nprocs,
    )
    from repro import obs

    registry = obs.active()
    if registry is not None:
        compressor.publish_metrics(registry)
    bad = 0
    total = 0
    for rank in range(args.nprocs):
        if rank in bad_ranks:
            continue
        truth = [e.replay_tuple() for e in recorder.events.get(rank, [])]
        replay = [e.call_tuple() for e in decompress_merged_rank(merged, rank)]
        total += len(truth)
        if replay != truth:
            bad += 1
            print(f"rank {rank}: replay DIVERGES")
    if bad:
        print(f"FAILED: {bad}/{args.nprocs} ranks diverged")
        return 1
    if args.selfcheck and _selfcheck(compiled.cst, merged, args.nprocs):
        return 1
    healthy = args.nprocs - len(bad_ranks)
    print(
        f"OK: {healthy} ranks, {total} events — every healthy rank's exact "
        "sequence reproduced from the compressed trace"
    )
    return 1 if bad_ranks else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the online ingest daemon (docs/INTERNALS.md §14)."""
    import asyncio
    import os

    from repro.server.daemon import CypressTraceServer, ServerConfig

    config = ServerConfig(
        state_dir=args.state_dir,
        out_dir=args.out_dir,
        host=args.host,
        port=args.port,
        high_watermark=args.high_watermark,
        low_watermark=args.low_watermark,
        session_watermark=args.session_watermark,
        checkpoint_interval=args.checkpoint_interval,
        idle_timeout=args.idle_timeout,
        kill_after_batches=args.kill_after_batches,
        kill_after_checkpoints=args.kill_after_checkpoints,
        metrics_json=args.metrics_json,
        memory_budget=args.memory_budget,
    )
    server = CypressTraceServer(config)
    recovered = server.recover()
    if recovered:
        print(f"recovered {recovered} session(s) from {args.state_dir}")

    def _started(srv: CypressTraceServer) -> None:
        print(f"LISTENING {srv.port}", flush=True)
        if args.port_file:
            tmp = args.port_file + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(str(srv.port))
            os.replace(tmp, args.port_file)

    asyncio.run(server.serve(on_started=_started))
    print("drained cleanly")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Capture a workload locally and stream it to a running daemon."""
    from repro.server.client import ClientError, submit_workload

    try:
        summary = submit_workload(
            args.host, args.port,
            job=args.job, workload=args.workload, nprocs=args.nprocs,
            scale=args.scale, batch_events=args.batch_events,
            window=args.window, max_attempts=args.max_attempts,
        )
    except ClientError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(f"{args.job}: {summary['batches']} batches "
          f"({summary['bytes']} bytes) across {args.nprocs} ranks")
    if summary["reconnects"]:
        print(f"  reconnects     : {summary['reconnects']}")
    if summary["throttles_seen"]:
        print(f"  throttles seen : {summary['throttles_seen']}")
    return 0


def cmd_faultsmoke(args: argparse.Namespace) -> int:
    """Seeded fault-injection matrix: every degraded mode must recover.

    Each scenario injects one fault class (worker kill / hang / raise,
    stream corruption, file truncation, bit flips) into an otherwise
    healthy run and checks the documented recovery: pool faults recover
    byte-identically, corruption quarantines exactly the victims,
    damaged files fail loudly and salvage to a checksum-valid prefix.
    """
    import json
    import warnings

    if args.server:
        from repro.server.faultsmoke import run_server_faultsmoke

        return run_server_faultsmoke(args)

    from repro.core import TraceFormatError, run_cypress, serialize
    from repro.core.inter import merge_all
    from repro.faults import FaultPlan, WorkerFault, bitflip, truncate

    w = WORKLOADS[args.workload]
    w.check_procs(args.nprocs)
    defines = w.defines(args.nprocs, args.scale)
    baseline = run_cypress(
        w.source, args.nprocs, defines=defines, compress_workers=2
    )
    base_bytes = serialize.dumps(baseline.merge())
    scenarios: list[dict] = []
    quarantine_dict: dict | None = None

    def run_scenario(name: str, fn) -> None:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            try:
                detail = fn() or "recovered"
                ok = True
            except Exception as exc:  # a scenario must never escape
                detail = f"{type(exc).__name__}: {exc}"
                ok = False
        scenarios.append({
            "scenario": name,
            "ok": ok,
            "detail": detail,
            "warnings": [str(c.message) for c in caught],
        })
        print(f"  {'ok  ' if ok else 'FAIL'} {name}: {detail}")

    def check_identical(run) -> str:
        if run.quarantine:
            raise AssertionError(
                f"unexpected quarantine: {run.quarantine.summary()}"
            )
        if serialize.dumps(run.merge()) != base_bytes:
            raise AssertionError("recovered trace differs from baseline")
        return "byte-identical to healthy baseline"

    def scenario_kill() -> str:
        plan = FaultPlan(seed=args.seed, worker_faults=(
            WorkerFault(stage="intra", task=0, action="kill"),
        ))
        return check_identical(run_cypress(
            w.source, args.nprocs, defines=defines,
            compress_workers=2, fault_plan=plan,
        ))

    def scenario_hang() -> str:
        plan = FaultPlan(seed=args.seed, worker_faults=(
            WorkerFault(stage="intra", task=1, action="hang"),
        ), hang_seconds=30.0)
        return check_identical(run_cypress(
            w.source, args.nprocs, defines=defines,
            compress_workers=2, fault_plan=plan, task_timeout=2.0,
        ))

    def scenario_merge_raise() -> str:
        plan = FaultPlan(seed=args.seed, worker_faults=(
            WorkerFault(stage="inter", task=0, action="raise"),
        ))
        ctts = [baseline.compressor.ctt(r) for r in range(args.nprocs)]
        merged = merge_all(
            ctts, workers=2, parallel_threshold=2, fault_plan=plan,
        )
        if serialize.dumps(merged) != base_bytes:
            raise AssertionError("recovered merge differs from baseline")
        return "byte-identical to healthy baseline"

    def scenario_corrupt() -> str:
        nonlocal quarantine_dict
        victims = (args.nprocs // 2, args.nprocs - 1)
        plan = FaultPlan(seed=args.seed, corrupt_ranks=victims)
        run = run_cypress(
            w.source, args.nprocs, defines=defines,
            compress_workers=2, fault_plan=plan,
        )
        quarantine_dict = run.quarantine.to_dict()
        if run.quarantine.ranks() != sorted(set(victims)):
            raise AssertionError(
                f"quarantined {run.quarantine.ranks()}, "
                f"expected {sorted(set(victims))}"
            )
        merged = run.merge()
        expected = args.nprocs - len(set(victims))
        if merged.nranks_merged != expected:
            raise AssertionError(
                f"merged {merged.nranks_merged} ranks, expected {expected}"
            )
        healthy = next(
            r for r in range(args.nprocs) if r not in run.quarantine.rank_set()
        )
        run.replay(healthy)
        run.replay(sorted(set(victims))[0])  # raw-capture fallback
        return (
            f"quarantined exactly {sorted(set(victims))}; "
            f"{expected} healthy ranks merged and replayed"
        )

    def scenario_truncate() -> str:
        rng = FaultPlan(seed=args.seed).rng("truncate")
        # Small payload chunks so a small trace still spans several
        # sections — the truncation then lands mid-payload and salvage
        # recovers a non-trivial vertex prefix.
        chunked = serialize.dumps(baseline.merge(), chunk_bytes=256)
        cut = truncate(chunked, fraction=0.8, rng=rng)
        try:
            serialize.loads(cut)
            raise AssertionError("truncated trace loaded without error")
        except TraceFormatError:
            pass
        merged = serialize.loads(cut, salvage=True)
        info = merged.salvage_info
        return (
            f"strict load failed loudly; salvage recovered "
            f"{info['vertices_with_payload']}/{info['vertices_total']} "
            "vertices"
        )

    def scenario_bitflips() -> str:
        rng = FaultPlan(seed=args.seed).rng("bitflip")
        for trial in range(args.flips):
            bad = bitflip(base_bytes, rng)
            try:
                serialize.loads(bad)
                raise AssertionError(
                    f"bit flip #{trial} loaded without error"
                )
            except (TraceFormatError, ValueError):
                pass
        return f"all {args.flips} single-bit flips failed loudly"

    print(f"fault-injection smoke: {args.workload} on {args.nprocs} ranks "
          f"(seed {args.seed}, baseline {len(base_bytes)} bytes)")
    run_scenario("worker-kill-intra", scenario_kill)
    run_scenario("worker-hang-timeout", scenario_hang)
    run_scenario("worker-raise-inter", scenario_merge_raise)
    run_scenario("stream-corruption-quarantine", scenario_corrupt)
    run_scenario("truncation-salvage", scenario_truncate)
    run_scenario("bitflip-loudness", scenario_bitflips)
    passed = all(s["ok"] for s in scenarios)
    report = {
        "workload": args.workload,
        "nprocs": args.nprocs,
        "seed": args.seed,
        "baseline_bytes": len(base_bytes),
        "passed": passed,
        "scenarios": scenarios,
        "quarantine": quarantine_dict,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report -> {args.out}")
    print("PASSED" if passed else "FAILED")
    return 0 if passed else 1


def cmd_check(args: argparse.Namespace) -> int:
    """Trace-integrity suite over one workload or the whole registry.

    Always runs the structural invariant checker (CST, every per-rank
    CTT, the merged CTT under each requested merge schedule) and the
    wildcard nondeterminism audit.  ``--differential`` adds the
    cross-implementation harness, ``--fault-matrix`` the seeded
    corruption matrix.  Wildcard findings are informational; the exit
    code reflects invariant violations and matrix/differential failures.
    """
    import json

    from repro import obs
    from repro.core.errors import TraceFormatError
    from repro.core.inter import merge_all
    from repro.core.intra import compress_streams
    from repro.driver import run_compiled
    from repro.mpisim.pmpi import StreamCaptureSink
    from repro.static.instrument import compile_minimpi
    from repro.verify import (
        audit_wildcards,
        check_cst,
        check_ctt,
        check_merged,
        differential_check,
        publish_verify_metrics,
    )
    from repro.verify.faultmatrix import run_fault_matrix

    names = sorted(WORKLOADS) if args.workload == "all" else [args.workload]
    schedules = tuple(s for s in args.schedules.split(",") if s)
    for s in schedules:
        if s not in ("fold", "tree", "parallel"):
            print(f"unknown merge schedule {s!r}", file=sys.stderr)
            return 2
    registry = obs.active()
    failed = False
    workload_reports = []
    for name in names:
        w = WORKLOADS[name]
        nprocs = args.nprocs if args.nprocs is not None else _default_procs(w)
        w.check_procs(nprocs)
        compiled = compile_minimpi(w.source)
        capture = StreamCaptureSink()
        run_compiled(
            compiled, nprocs, defines=w.defines(nprocs, args.scale),
            tracer=capture,
        )
        compressor = compress_streams(compiled.cst, capture.streams)
        ctts = [compressor.ctt(r) for r in range(nprocs)]

        violations = list(check_cst(compiled.cst))
        for ctt in ctts:
            violations += check_ctt(ctt, nranks=nprocs)
        merged = None
        for schedule in schedules:
            merged = merge_all(
                ctts,
                schedule="tree" if schedule == "parallel" else schedule,
                workers=2 if schedule == "parallel" else None,
                parallel_threshold=2,
                nranks=nprocs,
            )
            violations += check_merged(merged, nranks=nprocs)
        audit = audit_wildcards(merged) if merged is not None else None
        findings = audit.findings if audit is not None else []
        checks = 1 + nprocs + len(schedules) + (audit is not None)
        publish_verify_metrics(
            registry, checks=checks, violations=len(violations),
            findings=len(findings),
        )
        entry = {
            "workload": name,
            "nprocs": nprocs,
            "violations": [v.to_dict() for v in violations],
            "wildcard_audit": audit.to_dict() if audit is not None else None,
        }
        status = "ok  " if not violations else "FAIL"
        extra = ""
        if findings:
            extra = f", {len(findings)} wildcard finding(s)"
        print(f"  {status} {name:10s} n={nprocs}: "
              f"{len(violations)} violation(s){extra}")
        for v in violations[:args.limit]:
            print(f"       [{v.code}] {v.message}", file=sys.stderr)
        for f in findings:
            print(f"       note: {f.format()}")
        if violations:
            failed = True

        if args.differential:
            try:
                diff = differential_check(
                    w.source, nprocs, w.defines(nprocs, args.scale),
                    workload=name, schedules=schedules,
                )
            except TraceFormatError as exc:
                # Same contract as replay/query: a corrupt container is
                # exit code 3, not a generic failure.
                print(f"error: corrupted trace container during "
                      f"differential check of {name!r}: {exc}",
                      file=sys.stderr)
                return EXIT_CORRUPT_TRACE
            entry["differential"] = diff.to_dict()
            if diff.ok:
                print(f"       differential: ok ({diff.events} events, "
                      f"{len(diff.variants)} variants)")
            else:
                failed = True
                print(f"       differential: {len(diff.divergences)} "
                      "divergence(s)", file=sys.stderr)
                for d in diff.divergences[:args.limit]:
                    print(f"         {d.format()}", file=sys.stderr)

        if args.fault_matrix:
            try:
                matrix = run_fault_matrix(
                    w.source, nprocs, w.defines(nprocs, args.scale),
                    workload=name, seed=args.seed,
                )
            except TraceFormatError as exc:
                print(f"error: corrupted trace container during fault "
                      f"matrix of {name!r}: {exc}", file=sys.stderr)
                return EXIT_CORRUPT_TRACE
            entry["fault_matrix"] = matrix.to_dict()
            missed = [
                e for e in matrix.entries if not e.detected and not e.skipped
            ]
            skipped = [e for e in matrix.entries if e.skipped]
            if matrix.ok:
                ran = len(matrix.entries) - len(skipped)
                note = f" ({len(skipped)} without a site)" if skipped else ""
                print(f"       fault matrix: all {ran} applicable "
                      f"corruption kinds detected{note}")
            else:
                failed = True
                print(f"       fault matrix: {len(missed)} kind(s) MISSED",
                      file=sys.stderr)
                for e in missed:
                    print(f"         {e.kind}: {e.description}",
                          file=sys.stderr)
        workload_reports.append(entry)

    report = {
        "schedules": list(schedules),
        "seed": args.seed,
        "ok": not failed,
        "workloads": workload_reports,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report -> {args.out}")
    print("PASSED" if not failed else "FAILED")
    return 0 if not failed else 1


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.analysis.diff import diff_traces

    result = diff_traces(
        _load_trace(args.a, salvage=args.salvage),
        _load_trace(args.b, salvage=args.salvage),
    )
    print(result.format())
    return 0 if result.identical else 1


def cmd_query(args: argparse.Namespace) -> int:
    """Run one decompression-free query over a stored trace; optionally
    cross-check it against the replay oracle (`--oracle`) and/or dump the
    result as JSON (`-o`)."""
    import json

    from repro import query

    merged = _load_trace(args.trace, salvage=args.salvage)
    _report_salvage(merged)

    def _require(flag: str, value) -> None:
        if value is None:
            raise SystemExit(f"repro query {args.query}: {flag} is required")

    if args.query == "traffic":
        result = query.traffic(merged, group_by=args.group_by,
                               nprocs=args.nprocs)
        oracle = (query.traffic_via_replay(merged, group_by=args.group_by,
                                           nprocs=args.nprocs)
                  if args.oracle else None)
    elif args.query == "ordering":
        _require("--gid-a", args.gid_a)
        _require("--gid-b", args.gid_b)
        _require("--rank", args.rank)
        result = query.ordering(merged, args.gid_a, args.gid_b, args.rank)
        oracle = (query.ordering_via_replay(merged, args.gid_a, args.gid_b,
                                            args.rank)
                  if args.oracle else None)
    elif args.query == "rank-profile":
        _require("--rank", args.rank)
        result = query.rank_profile(merged, args.rank)
        oracle = (query.rank_profile_via_replay(merged, args.rank)
                  if args.oracle else None)
    else:  # critical-leaves
        result = query.critical_leaves(merged, k=args.top)
        oracle = (query.critical_leaves_via_replay(merged, k=args.top)
                  if args.oracle else None)

    if args.oracle:
        errors = query.agreement_errors(result, oracle, args.query)
        if errors:
            print(f"ORACLE MISMATCH ({len(errors)} differences):",
                  file=sys.stderr)
            for e in errors[:20]:
                print(f"  {e}", file=sys.stderr)
            return 1
        print(f"oracle check: engine == replay ({args.query})",
              file=sys.stderr)

    if args.output:
        payload = json.dumps(query.to_jsonable(result), indent=2,
                             sort_keys=True)
        if args.output == "-":
            print(payload)
        else:
            with open(args.output, "w") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.output}")
        return 0

    if args.query == "traffic":
        print(f"{'key':>24s} {'messages':>10s} {'bytes':>14s}")
        for key in sorted(result, key=repr):
            cell = result[key]
            shown = "->".join(map(str, key)) if isinstance(key, tuple) else key
            print(f"{shown!s:>24s} {cell.messages:10d} {cell.nbytes:14d}")
    elif args.query in ("ordering", "rank-profile"):
        print(result.format())
    else:
        for c in result:
            print(f"  gid={c.gid:4d} {c.op:<16s} {c.total_us / 1e3:10.2f} ms "
                  f"({c.calls} calls)  {c.path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("trace", help="trace a workload with CYPRESS")
    _add_workload_args(p)
    _add_merge_args(p)
    _add_compress_args(p)
    _add_metrics_args(p)
    _add_fault_args(p)
    p.add_argument("-o", "--output", default="trace.cyp")
    p.add_argument("--gzip", action="store_true")
    p.add_argument("--memory-budget", type=_parse_bytes, default=None,
                   metavar="BYTES",
                   help="bounded-memory streaming compression: keep the "
                        "live compressor under this many bytes by folding "
                        "finished ranks into the merge and spilling cold "
                        "ranks to disk (suffixes K/M/G); the output is "
                        "byte-identical to the unbudgeted pipeline")
    p.add_argument("--selfcheck", action="store_true",
                   help="run the structural invariant checker on the "
                        "CST and merged trace before reporting success")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("compare", help="compare all compression methods")
    _add_workload_args(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("replay", help="decompress a trace file")
    p.add_argument("trace")
    p.add_argument("-r", "--rank", type=int, default=0)
    p.add_argument("--limit", type=int, default=30)
    p.add_argument("--salvage", action="store_true",
                   help="recover the longest checksum-valid prefix of a "
                        "damaged trace instead of failing")
    _add_metrics_args(p)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("predict", help="SIM-MPI prediction from a trace")
    p.add_argument("trace")
    p.add_argument("--salvage", action="store_true",
                   help="recover the longest checksum-valid prefix of a "
                        "damaged trace instead of failing")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("cst", help="print a MiniMPI program's CST")
    p.add_argument("file")
    p.set_defaults(func=cmd_cst)

    p = sub.add_parser("patterns", help="communication-matrix heatmap")
    _add_workload_args(p)
    p.set_defaults(func=cmd_patterns)

    p = sub.add_parser("info", help="per-op summary of a trace file")
    p.add_argument("trace")
    p.add_argument("--salvage", action="store_true",
                   help="recover the longest checksum-valid prefix of a "
                        "damaged trace instead of failing")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("hotspots", help="communication-time hotspots by structure")
    p.add_argument("trace")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--salvage", action="store_true",
                   help="recover the longest checksum-valid prefix of a "
                        "damaged trace instead of failing")
    p.set_defaults(func=cmd_hotspots)

    p = sub.add_parser("verify", help="end-to-end sequence-preservation check")
    _add_workload_args(p)
    _add_merge_args(p)
    _add_compress_args(p)
    _add_metrics_args(p)
    _add_fault_args(p)
    p.add_argument("--selfcheck", action="store_true",
                   help="also run the structural invariant checker on the "
                        "CST and merged trace")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "faultsmoke",
        help="seeded fault-injection matrix: verify every degraded mode",
    )
    p.add_argument("workload", nargs="?", default="cg",
                   choices=sorted(WORKLOADS))
    p.add_argument("-n", "--nprocs", type=int, default=8)
    p.add_argument("--scale", type=float, default=0.5,
                   help="iteration-count scale factor (default: 0.5)")
    p.add_argument("--seed", type=int, default=20260807,
                   help="FaultPlan seed (default: 20260807)")
    p.add_argument("--flips", type=int, default=64,
                   help="random single-bit flips to test (default: 64)")
    p.add_argument("--server", action="store_true",
                   help="run the online-ingest matrix instead: seeded "
                        "daemon kills, client disconnects, torn frames, "
                        "stalled ranks, drain — each asserting the "
                        "recovered trace is byte-identical to the batch "
                        "pipeline")
    p.add_argument("--soak", action="store_true",
                   help="with --server: endurance mode (concurrent client "
                        "waves, seeded kills/drops) for the CI soak job")
    p.add_argument("--duration", type=float, default=60.0,
                   help="soak duration in seconds (default: 60)")
    p.add_argument("--clients", type=int, default=8,
                   help="concurrent soak clients per wave (default: 8)")
    p.add_argument("-o", "--out", default=None, metavar="PATH",
                   help="write the JSON report (incl. the QuarantineReport) "
                        "to PATH")
    p.set_defaults(func=cmd_faultsmoke)

    p = sub.add_parser(
        "serve",
        help="run the online ingest daemon (many clients, one live "
             "compressor per job, crash-safe checkpoints)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = pick an ephemeral port; the bound "
                        "port is printed as 'LISTENING <port>')")
    p.add_argument("--state-dir", default="server-state",
                   help="checkpoint directory (batch logs + session meta); "
                        "recovery scans it on startup (default: "
                        "server-state)")
    p.add_argument("--out-dir", default="server-out",
                   help="where finalized merged traces land as <job>.cyp "
                        "(default: server-out)")
    p.add_argument("--high-watermark", type=int, default=8 << 20,
                   help="global buffered-bytes level that throttles "
                        "clients (default: 8 MiB)")
    p.add_argument("--low-watermark", type=int, default=2 << 20,
                   help="buffered-bytes level that resumes reading "
                        "(default: 2 MiB)")
    p.add_argument("--session-watermark", type=int, default=2 << 20,
                   help="per-session buffered-bytes level that forces an "
                        "inline spill (default: 2 MiB)")
    p.add_argument("--checkpoint-interval", type=float, default=0.25,
                   help="seconds between incremental checkpoints of dirty "
                        "sessions (default: 0.25)")
    p.add_argument("--idle-timeout", type=float, default=30.0,
                   help="seconds of rank silence before quarantine "
                        "(default: 30)")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="atomically write the bound port to PATH (test "
                        "harness hand-off)")
    p.add_argument("--metrics-json", default=None, metavar="PATH",
                   help="write the server.* metrics snapshot to PATH at "
                        "drain")
    p.add_argument("--kill-after-batches", type=int, default=None,
                   help="fault injection: hard-exit after the Nth ingested "
                        "batch (faultsmoke --server)")
    p.add_argument("--kill-after-checkpoints", type=int, default=None,
                   help="fault injection: hard-exit after the Nth "
                        "checkpoint (faultsmoke --server)")
    p.add_argument("--memory-budget", type=_parse_bytes, default=None,
                   metavar="BYTES",
                   help="per-job compressor memory budget (suffixes "
                        "K/M/G): finalized ranks fold into the merge "
                        "incrementally, cold ranks spill under "
                        "<state-dir>/spill/, and the ingest watermark "
                        "shrinks under unevictable pressure")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="capture a workload and stream it to a running ingest daemon "
             "(retry/reconnect/resume, exactly-once)",
    )
    _add_workload_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--job", required=True,
                   help="job id (also the output trace name, <job>.cyp)")
    p.add_argument("--batch-events", type=int, default=512,
                   help="callback tuples per batch frame (default: 512)")
    p.add_argument("--window", type=int, default=32,
                   help="max unacked batches in flight (default: 32)")
    p.add_argument("--max-attempts", type=int, default=30,
                   help="connection attempts before giving up "
                        "(default: 30)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "check",
        help="trace-integrity suite: invariants, wildcard audit, and "
             "optional differential / fault-matrix passes",
    )
    p.add_argument("workload", nargs="?", default="all",
                   choices=sorted(WORKLOADS) + ["all"])
    p.add_argument("-n", "--nprocs", type=int, default=None,
                   help="rank count (default: smallest valid count >= 4 "
                        "per workload)")
    p.add_argument("--scale", type=float, default=0.3,
                   help="iteration-count scale factor (default: 0.3)")
    p.add_argument("--schedules", default="fold,tree,parallel",
                   help="comma-separated merge schedules to check "
                        "(default: fold,tree,parallel)")
    p.add_argument("--differential", action="store_true",
                   help="also cross-check fastpath/reference/parallel "
                        "compression and every merge schedule against "
                        "ground truth")
    p.add_argument("--fault-matrix", action="store_true",
                   help="also run the seeded corruption matrix: every "
                        "damage kind must be detected")
    p.add_argument("--seed", type=int, default=20260807,
                   help="fault-matrix seed (default: 20260807)")
    p.add_argument("--limit", type=int, default=10,
                   help="max violations/divergences printed per workload")
    p.add_argument("-o", "--out", default=None, metavar="PATH",
                   help="write the JSON report to PATH")
    _add_metrics_args(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("diff", help="compare two trace files")
    p.add_argument("a")
    p.add_argument("b")
    p.add_argument("--salvage", action="store_true",
                   help="recover the longest checksum-valid prefix of "
                        "damaged traces instead of failing")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "query",
        help="decompression-free queries over a stored trace",
        description="Answer traffic/ordering/profile/hotspot questions "
                    "straight from the compressed structure — no replay. "
                    "--oracle cross-checks the answer against the replay "
                    "twin (exit 1 on mismatch).",
    )
    p.add_argument("trace")
    p.add_argument("query", choices=("traffic", "ordering", "rank-profile",
                                     "critical-leaves"))
    p.add_argument("--group-by", choices=("vertex", "op", "rank_pair"),
                   default="op", help="traffic aggregation key")
    p.add_argument("--gid-a", type=int, default=None,
                   help="first call-site GID (ordering)")
    p.add_argument("--gid-b", type=int, default=None,
                   help="second call-site GID (ordering)")
    p.add_argument("--rank", type=int, default=None,
                   help="rank to query (ordering, rank-profile)")
    p.add_argument("--top", type=int, default=10,
                   help="number of leaves (critical-leaves)")
    p.add_argument("--nprocs", type=int, default=None,
                   help="rank-space size for peer validation "
                        "(default: inferred from the trace)")
    p.add_argument("--oracle", action="store_true",
                   help="cross-check against the replay oracle")
    p.add_argument("--salvage", action="store_true",
                   help="recover the longest checksum-valid prefix of a "
                        "damaged trace instead of failing")
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="write the result as JSON ('-' for stdout)")
    _add_metrics_args(p)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("export", help="flatten a trace file")
    p.add_argument("trace")
    p.add_argument("-f", "--format", choices=("text", "csv"), default="text")
    p.add_argument("-o", "--output", default="-")
    p.add_argument("--ranks", default="", help="comma-separated rank filter")
    p.add_argument("--salvage", action="store_true",
                   help="recover the longest checksum-valid prefix of a "
                        "damaged trace instead of failing")
    p.set_defaults(func=cmd_export)

    args = parser.parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out or getattr(args, "metrics", False):
        from repro import obs

        registry = obs.enable()
        try:
            rc = args.func(args)
        finally:
            obs.disable()
        if metrics_out:
            obs.write_json(registry, metrics_out)
            print(f"metrics -> {metrics_out}")
        if getattr(args, "metrics", False):
            print(obs.format_text(registry))
        return rc
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
