"""Python frontend: trace annotated Python rank functions with CYPRESS
(the mpi4py-adoption path — no MiniMPI involved)."""

from .runner import PythonRun, run_python
from .structure import BuiltStructure, S, Spec, StructureError, build_structure
from .traced import TracedComm

__all__ = [
    "PythonRun",
    "run_python",
    "BuiltStructure",
    "S",
    "Spec",
    "StructureError",
    "build_structure",
    "TracedComm",
]
