"""Declarative communication-structure specs for Python rank functions.

MiniMPI programs get their CST from static analysis; Python rank
functions cannot be analysed that way, so the user *declares* the
structure — which mirrors their code shape — and the runtime validates it
while tracing (a marker that doesn't fit the declared tree raises
:class:`~repro.core.intra.CompressionError`).

This is exactly how one would retrofit CYPRESS onto mpi4py programs: a
PMPI-style wrapper plus lightweight loop/branch annotations.

Example::

    spec = S.root(
        S.call("mpi_init"),
        S.loop("steps",
               S.branch("has_right", S.call("mpi_send")),
               S.branch("has_left", S.call("mpi_recv"))),
        S.call("mpi_finalize"),
    )
    cst = spec.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minilang.builtins import MPI_INTRINSICS
from repro.static.cst import BRANCH, CALL, LOOP, ROOT, CSTNode, assign_gids

# Synthetic ast_id namespace for frontend structures (far above both the
# parser's node ids and the recursion pseudo-loop offset).
_FRONTEND_OFFSET = 10_000_000


@dataclass
class Spec:
    kind: str
    label: str | None = None  # loop/branch label (the runtime marker key)
    name: str | None = None  # intrinsic name for calls
    children: list["Spec"] = field(default_factory=list)
    else_children: list["Spec"] = field(default_factory=list)


class StructureError(Exception):
    """The declared structure is malformed."""


class S:
    """Builders for structure specs."""

    @staticmethod
    def root(*children: Spec) -> Spec:
        return Spec(kind=ROOT, children=list(children))

    @staticmethod
    def loop(label: str, *children: Spec) -> Spec:
        return Spec(kind=LOOP, label=label, children=list(children))

    @staticmethod
    def branch(label: str, *children: Spec, orelse: tuple[Spec, ...] = ()) -> Spec:
        return Spec(
            kind=BRANCH, label=label,
            children=list(children), else_children=list(orelse),
        )

    @staticmethod
    def call(name: str) -> Spec:
        if name not in MPI_INTRINSICS:
            raise StructureError(f"{name!r} is not a traced MPI intrinsic")
        return Spec(kind=CALL, name=name)


@dataclass
class BuiltStructure:
    """A structure spec lowered to a CST plus the label → ast_id map."""

    cst: CSTNode
    label_ids: dict[str, int]
    instrumented: frozenset[int]


def build_structure(spec: Spec) -> BuiltStructure:
    """Lower a spec into a GID-assigned CST (no pruning: the user declares
    only communication-relevant structure)."""
    if spec.kind != ROOT:
        raise StructureError("top-level spec must be S.root(...)")
    label_ids: dict[str, int] = {}
    next_id = [_FRONTEND_OFFSET]

    def ast_id_for(label: str) -> int:
        if label in label_ids:
            return label_ids[label]
        next_id[0] += 1
        label_ids[label] = next_id[0]
        return next_id[0]

    def lower(node: Spec) -> list[CSTNode]:
        if node.kind == CALL:
            return [CSTNode(kind=CALL, name=node.name)]
        if node.kind == LOOP:
            if not node.label:
                raise StructureError("loops need a label")
            out = CSTNode(kind=LOOP, ast_id=ast_id_for(node.label))
            for child in node.children:
                out.children.extend(lower(child))
            return [out]
        if node.kind == BRANCH:
            if not node.label:
                raise StructureError("branches need a label")
            ast_id = ast_id_for(node.label)
            then_v = CSTNode(kind=BRANCH, ast_id=ast_id, branch_path=0)
            for child in node.children:
                then_v.children.extend(lower(child))
            out = [then_v]
            if node.else_children:
                else_v = CSTNode(kind=BRANCH, ast_id=ast_id, branch_path=1)
                for child in node.else_children:
                    else_v.children.extend(lower(child))
                out.append(else_v)
            return out
        raise StructureError(f"unexpected spec kind {node.kind!r}")

    root = CSTNode(kind=ROOT, name="<python>")
    for child in spec.children:
        root.children.extend(lower(child))
    assign_gids(root)
    instrumented = frozenset(
        n.ast_id for n in root.preorder()
        if n.kind in (LOOP, BRANCH) and n.ast_id is not None
    )
    return BuiltStructure(cst=root, label_ids=label_ids, instrumented=instrumented)
