"""Run annotated Python rank functions under the CYPRESS tracer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro import obs
from repro.core.decompress import ReplayEvent, decompress_merged_rank
from repro.core.inter import MergedCTT, merge_all
from repro.core.intra import CypressConfig, IntraProcessCompressor, compress_streams
from repro.core import serialize
from repro.mpisim.netmodel import NetworkModel
from repro.mpisim.pmpi import MultiSink, StreamCaptureSink, TraceSink
from repro.mpisim.runtime import Runtime, RunResult

from .structure import BuiltStructure, Spec, build_structure
from .traced import TracedComm

RankFunction = Callable[[TracedComm], Iterator[None]]


@dataclass
class PythonRun:
    """Result of tracing a Python rank function."""

    structure: BuiltStructure
    nprocs: int
    compressor: IntraProcessCompressor
    run_result: RunResult
    capture: StreamCaptureSink | None = field(default=None, repr=False)
    _merged: MergedCTT | None = field(default=None, repr=False)

    def compress(self, workers: int | str | None = None) -> IntraProcessCompressor:
        """(Re-)compress the captured streams (see
        :meth:`repro.core.api.CypressRun.compress`)."""
        if self.capture is None:
            raise ValueError(
                "no captured streams: run with compress_workers= to defer "
                "compression"
            )
        self.compressor = compress_streams(
            self.structure.cst,
            self.capture.streams,
            config=self.compressor.config,
            workers=workers,
        )
        self._merged = None
        return self.compressor

    def merge(
        self, schedule: str = "tree", workers: int | str | None = None
    ) -> MergedCTT:
        if self._merged is None:
            ctts = [self.compressor.ctt(r) for r in range(self.nprocs)]
            self._merged = merge_all(ctts, schedule=schedule, workers=workers)
        return self._merged

    def trace_bytes(self, gzip: bool = False) -> int:
        return len(serialize.dumps(self.merge(), gzip=gzip))

    def save(self, path: str, gzip: bool = False) -> int:
        return serialize.save(self.merge(), path, gzip=gzip)

    def replay(self, rank: int) -> list[ReplayEvent]:
        return decompress_merged_rank(self.merge(), rank)


def run_python(
    rank_fn: RankFunction,
    structure: Spec | BuiltStructure,
    nprocs: int,
    config: CypressConfig | None = None,
    extra_sinks: list[TraceSink] | None = None,
    network: NetworkModel | None = None,
    compress_workers: int | str | None = None,
) -> PythonRun:
    """Execute ``rank_fn`` on every simulated rank with CYPRESS attached.

    ``rank_fn(tc)`` must be a generator function taking a
    :class:`TracedComm`; ``structure`` is the declared communication
    structure (see :class:`repro.frontend.structure.S`).

    ``compress_workers`` defers compression: the run is traced into a
    stream capture and compressed afterwards on that many worker
    processes (``"auto"`` = all cores), byte-identical to inline
    compression.
    """
    registry = obs.active()
    built = (
        structure
        if isinstance(structure, BuiltStructure)
        else build_structure(structure)
    )
    capture: StreamCaptureSink | None = None
    if compress_workers is not None:
        capture = StreamCaptureSink()
        sink: TraceSink = capture
    else:
        compressor = IntraProcessCompressor(built.cst, config=config)
        sink = compressor
    if extra_sinks:
        sink = MultiSink([sink, *extra_sinks])
    runtime = Runtime(nprocs, network=network, tracer=sink)

    def rank_main(comm):
        return rank_fn(TracedComm(comm, built))

    with obs.span("trace.run"):
        result = runtime.run(rank_main)
    if capture is not None:
        with obs.span("intra.compress"):
            compressor = compress_streams(
                built.cst, capture.streams, config=config,
                workers=compress_workers,
            )
    if registry is not None:
        compressor.publish_metrics(registry)
        registry.counter_add("trace.total_events", result.total_events)
    return PythonRun(
        structure=built,
        nprocs=nprocs,
        compressor=compressor,
        run_result=result,
        capture=capture,
    )
