"""Run annotated Python rank functions under the CYPRESS tracer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.decompress import ReplayEvent, decompress_merged_rank
from repro.core.inter import MergedCTT, merge_all
from repro.core.intra import CypressConfig, IntraProcessCompressor
from repro.core import serialize
from repro.mpisim.netmodel import NetworkModel
from repro.mpisim.pmpi import MultiSink, TraceSink
from repro.mpisim.runtime import Runtime, RunResult

from .structure import BuiltStructure, Spec, build_structure
from .traced import TracedComm

RankFunction = Callable[[TracedComm], Iterator[None]]


@dataclass
class PythonRun:
    """Result of tracing a Python rank function."""

    structure: BuiltStructure
    nprocs: int
    compressor: IntraProcessCompressor
    run_result: RunResult
    _merged: MergedCTT | None = field(default=None, repr=False)

    def merge(
        self, schedule: str = "tree", workers: int | str | None = None
    ) -> MergedCTT:
        if self._merged is None:
            ctts = [self.compressor.ctt(r) for r in range(self.nprocs)]
            self._merged = merge_all(ctts, schedule=schedule, workers=workers)
        return self._merged

    def trace_bytes(self, gzip: bool = False) -> int:
        return len(serialize.dumps(self.merge(), gzip=gzip))

    def save(self, path: str, gzip: bool = False) -> int:
        return serialize.save(self.merge(), path, gzip=gzip)

    def replay(self, rank: int) -> list[ReplayEvent]:
        return decompress_merged_rank(self.merge(), rank)


def run_python(
    rank_fn: RankFunction,
    structure: Spec | BuiltStructure,
    nprocs: int,
    config: CypressConfig | None = None,
    extra_sinks: list[TraceSink] | None = None,
    network: NetworkModel | None = None,
) -> PythonRun:
    """Execute ``rank_fn`` on every simulated rank with CYPRESS attached.

    ``rank_fn(tc)`` must be a generator function taking a
    :class:`TracedComm`; ``structure`` is the declared communication
    structure (see :class:`repro.frontend.structure.S`).
    """
    built = (
        structure
        if isinstance(structure, BuiltStructure)
        else build_structure(structure)
    )
    compressor = IntraProcessCompressor(built.cst, config=config)
    sink: TraceSink = compressor
    if extra_sinks:
        sink = MultiSink([compressor, *extra_sinks])
    runtime = Runtime(nprocs, network=network, tracer=sink)

    def rank_main(comm):
        return rank_fn(TracedComm(comm, built))

    result = runtime.run(rank_main)
    return PythonRun(
        structure=built,
        nprocs=nprocs,
        compressor=compressor,
        run_result=result,
    )
