"""TracedComm: the annotated communication handle for Python rank
functions.

Wraps a :class:`~repro.mpisim.comm.RankComm` and forwards MPI calls,
while emitting CYPRESS structure markers for the loops and branches the
user declared (:mod:`repro.frontend.structure`).  The rank function is a
generator (like any simulated rank), using ``yield from`` for MPI calls::

    def rank_main(tc: TracedComm):
        yield from tc.mpi("mpi_init")
        rank, size = tc.rank, tc.size
        for _ in tc.loop("steps", range(50)):
            if tc.branch("has_right", rank < size - 1):
                yield from tc.mpi("mpi_send", rank + 1, 8192, 0)
            tc.end_branch("has_right")
        yield from tc.mpi("mpi_finalize")

``loop`` brackets the iterable with push/iter/pop markers; ``branch``
emits the enter marker for the taken path and returns the condition (the
matching ``end_branch`` emits the exit).  For ``with``-style scoping use
:meth:`branch_scope`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.frontend.structure import BuiltStructure, StructureError


class TracedComm:
    """Per-rank handle combining communication and structure markers."""

    def __init__(self, comm, structure: BuiltStructure) -> None:
        self._comm = comm
        self._structure = structure
        self._tracer = comm.runtime.tracer
        self._emit = self._tracer.wants_markers

    # -- identity -----------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def size(self) -> int:
        return self._comm.runtime.nprocs

    @property
    def clock(self) -> float:
        return self._comm.clock

    def compute(self, us: float) -> None:
        """Advance this rank's virtual clock (models local computation)."""
        if us < 0:
            raise ValueError("compute() needs a non-negative time")
        self._comm.clock += us

    # -- communication ------------------------------------------------------

    def mpi(self, name: str, *args):
        """Issue one MPI intrinsic (generator; use ``yield from``)."""
        result = yield from self._comm.call(name, list(args))
        return result

    # -- structure markers ---------------------------------------------------

    def _ast_id(self, label: str) -> int:
        try:
            return self._structure.label_ids[label]
        except KeyError:
            raise StructureError(
                f"label {label!r} was not declared in the structure spec"
            ) from None

    def loop(self, label: str, iterable: Iterable) -> Iterator:
        """Bracket an iteration over ``iterable`` with loop markers."""
        ast_id = self._ast_id(label)
        if self._emit:
            self._tracer.on_loop_push(self.rank, ast_id)
        try:
            for item in iterable:
                if self._emit:
                    self._tracer.on_loop_iter(self.rank, ast_id)
                yield item
        finally:
            if self._emit:
                self._tracer.on_loop_pop(self.rank, ast_id)

    def branch(self, label: str, condition) -> bool:
        """Record a branch outcome; pair with :meth:`end_branch`."""
        ast_id = self._ast_id(label)
        taken = bool(condition)
        if self._emit:
            self._tracer.on_branch_enter(self.rank, ast_id, 0 if taken else 1)
        return taken

    def end_branch(self, label: str) -> None:
        if self._emit:
            self._tracer.on_branch_exit(self.rank, self._ast_id(label))

    @contextmanager
    def branch_scope(self, label: str, condition):
        """``with tc.branch_scope("edge", cond) as taken:`` convenience."""
        taken = self.branch(label, condition)
        try:
            yield taken
        finally:
            self.end_branch(label)
