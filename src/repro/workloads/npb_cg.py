"""CG-like kernel: conjugate gradient with row-group reductions and a
transpose exchange.

NPB CG partitions the sparse matrix on a nprows×npcols grid.  Each CG
iteration does (a) a large q = A·p exchange with the transpose partner,
and (b) log2(npcols) butterfly stages of small dot-product
send/recv pairs within the row group.  Messages are two-scale (one big,
many tiny), loop structure is deep and regular.

Runs on power-of-two process counts (paper: 64, 128, 256, 512).
"""

from __future__ import annotations

from .base import Workload, is_pow2, scaled

SOURCE = """
// CG-like kernel.  Row groups of npcols ranks, aligned on npcols
// boundaries (npcols is a power of two), so XOR butterflies stay in-group.
func reduce_exch(partner, nbytes, tag) {
  var r[2];
  r[0] = mpi_irecv(partner, nbytes, tag);
  r[1] = mpi_isend(partner, nbytes, tag);
  mpi_waitall(r, 2);
}

func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  var row = rank / npcols;
  var col = rank % npcols;
  // Transpose partner (square grids swap row/col; rectangular grids pair
  // half-row blocks, the NPB l2npcols trick).
  var exch;
  if (nprows == npcols) {
    exch = col * npcols + row;
  } else {
    exch = (rank + size / 2) % size;
  }
  var qmsg = 8 * (na / nprows);
  for (var it = 0; it < niter; it = it + 1) {
    for (var cgit = 0; cgit < cgitmax; cgit = cgit + 1) {
      // q = A.p transpose exchange
      if (exch != rank) {
        reduce_exch(exch, qmsg, 40);
      }
      // dot products: XOR butterfly over the row group (symmetric pairs)
      for (var j = 0; j < l2npcols; j = j + 1) {
        var d = pow2(j);
        var peer;
        if ((col / d) % 2 == 0) { peer = col + d; } else { peer = col - d; }
        reduce_exch(row * npcols + peer, 8, 50 + j);
      }
      compute(ctime);
    }
    // residual norm butterfly
    for (var j = 0; j < l2npcols; j = j + 1) {
      var d = pow2(j);
      var peer;
      if ((col / d) % 2 == 0) { peer = col + d; } else { peer = col - d; }
      reduce_exch(row * npcols + peer, 8, 70 + j);
    }
  }
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    if not is_pow2(nprocs):
        raise ValueError(f"CG needs a power-of-two process count, got {nprocs}")
    k = nprocs.bit_length() - 1
    npcols = 1 << ((k + 1) // 2)
    nprows = nprocs // npcols
    return {
        "na": 1_500_000,  # CLASS D matrix order
        "npcols": npcols,
        "nprows": nprows,
        "l2npcols": npcols.bit_length() - 1,
        "niter": scaled(6, scale),  # CLASS D: 100
        "cgitmax": scaled(8, scale),  # inner CG iterations: 25
        "ctime": 300,
    }


WORKLOAD = Workload(
    name="cg",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(1 << k for k in range(2, 13)),
    paper_procs=(64, 128, 256, 512),
    description="Conjugate gradient; transpose exchange + butterfly reductions",
)
