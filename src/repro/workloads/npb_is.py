"""IS-like kernel: parallel integer (bucket) sort.

Not part of the paper's evaluation grid (the paper uses the other eight
NPB codes), included as an extension: NPB IS stresses collectives with
*data-dependent* volumes — per iteration an allreduce over the bucket
histograms, an alltoall of bucket counts, and the key redistribution
(alltoallv in NPB; modelled here as an alltoall of the dominant bucket
size, which varies per iteration).  It also verifies partial ordering
with neighbour sends at the end.

Runs on power-of-two process counts.
"""

from __future__ import annotations

from .base import Workload, is_pow2, scaled

SOURCE = """
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  var keys_per_rank = nkeys / size;
  for (var it = 0; it < niter; it = it + 1) {
    compute(ctime);                        // local bucket counting
    mpi_allreduce(4 * nbuckets);           // global bucket histogram
    mpi_alltoall(4 * (nbuckets / size));   // bucket-count exchange
    // key redistribution: volume wobbles with the iteration (keys move
    // between buckets as the random walk advances)
    mpi_alltoall(4 * (keys_per_rank / size + 16 * (it % 3)));
    compute(ctime / 2);                    // local rank computation
  }
  // partial verification: boundary keys flow to the neighbour rank
  if (rank < size - 1) { mpi_send(rank + 1, 4 * 128, 77); }
  if (rank > 0)        { mpi_recv(rank - 1, 4 * 128, 77); }
  mpi_reduce(0, 4);                        // verification counter
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    if not is_pow2(nprocs):
        raise ValueError(f"IS needs a power-of-two process count, got {nprocs}")
    return {
        "nkeys": 1 << 25,  # CLASS D: 2^31 keys, scaled down
        "nbuckets": 1024,
        "niter": scaled(10, scale),
        "ctime": 800,
    }


WORKLOAD = Workload(
    name="is",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(1 << k for k in range(1, 13)),
    paper_procs=(),  # extension; not in the paper's Fig. 15 grid
    description="Integer bucket sort; collective-heavy, data-dependent volumes",
)
