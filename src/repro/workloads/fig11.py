"""The paper's Fig. 11 shape as a first-class workload.

One loop whose body alternates a branch pair (send on even ranks, recv
on odd) with a collective — the canonical CYPRESS compression shape the
micro-benchmarks and the ingest server's fault-smoke matrix use.  Raw
trace size grows linearly with ``iters`` while the compressed form stays
O(1) stride tuples, which makes it the cheapest workload that still
exercises loops, branches, point-to-point and collective records.
"""

from __future__ import annotations

from .base import Workload, scaled

SOURCE = """
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var i = 0; i < iters; i = i + 1) {
    if (rank % 2 == 0) {
      mpi_send((rank + 1) % size, 4096, 7);
    } else {
      mpi_recv((rank + size - 1) % size, 4096, 7);
    }
    mpi_allreduce(8);
  }
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    del nprocs
    return {"iters": scaled(200, scale)}


WORKLOAD = Workload(
    name="fig11",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(range(2, 4097)),
    paper_procs=(),  # illustration shape, not in the paper's grid
    description="Paper Fig. 11 loop: branch pair + collective per iteration",
)
