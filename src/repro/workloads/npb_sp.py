"""SP-like kernel: scalar-pentadiagonal ADI with *non-uniform* messages.

NPB SP has the same multi-partition sweep structure as BT but exchanges
more, smaller messages whose sizes and tags vary per sweep stage and per
rank — the adversarial case the paper calls out: "for some loops in SP,
the message sizes and the message tags of sending and receiving
communications are varied for each process" (§VII-B).  This defeats
record merging keyed on exact parameters (CYPRESS, ScalaTrace) while
ScalaTrace-2's elastic encoding absorbs it — SP is the one benchmark
where ScalaTrace-2+Gzip beats CYPRESS on size (Fig. 15h), at higher
compression overhead (Fig. 16f / 18).

Runs on perfect-square process counts (paper: 64, 121, 256, 400).
"""

from __future__ import annotations

from .base import Workload, is_square, scaled

SOURCE = """
// SP-like ADI kernel with per-stage, per-rank varied message sizes/tags.
func stage(dst, src, msg, tag, ctime) {
  var r[2];
  r[0] = mpi_irecv(src, msg, tag);
  r[1] = mpi_isend(dst, msg, tag);
  mpi_waitall(r, 2);
  compute(ctime);
}

func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  var p = isqrt(size);
  var row = rank / p;
  var col = rank % p;
  var cell = probsize / p;
  var base = cell * cell * 8;
  for (var it = 0; it < niter; it = it + 1) {
    // Three sub-stages per direction, message size depends on the stage,
    // the iteration, and the rank's grid position (non-uniform!).
    for (var s = 0; s < 3; s = s + 1) {
      var mx = base + 8 * (s * 5 + it % 7) + 16 * col;
      stage(row * p + (col + 1) % p, row * p + (col + p - 1) % p,
            mx, 100 + s * 10 + it % 4, ctime);
      var my = base + 8 * (s * 3 + it % 5) + 16 * row;
      stage(((row + 1) % p) * p + col, ((row + p - 1) % p) * p + col,
            my, 200 + s * 10 + it % 4, ctime);
      var mz = base + 8 * (s * 2 + it % 3) + 8 * (row + col);
      stage(((row + 1) % p) * p + (col + 1) % p,
            ((row + p - 1) % p) * p + (col + p - 1) % p,
            mz, 300 + s * 10 + it % 4, ctime);
    }
  }
  mpi_allreduce(40);
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    if not is_square(nprocs):
        raise ValueError(f"SP needs a square process count, got {nprocs}")
    return {
        "probsize": 408,
        "niter": scaled(16, scale),  # CLASS D: 500
        "ctime": 150,
    }


WORKLOAD = Workload(
    name="sp",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(p * p for p in range(2, 33)),
    paper_procs=(64, 121, 256, 400),
    description="Scalar-pentadiagonal ADI; varied sizes/tags per rank and stage",
)
