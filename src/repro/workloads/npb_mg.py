"""MG-like kernel: V-cycle multigrid with nested-torus communication.

NPB MG solves a 3D Poisson equation with a multigrid V-cycle.  At each
level the active ranks exchange halos with their ±x/±y/±z neighbours at a
level-dependent stride; at coarse levels only every ``2^level``-th rank
participates — the "nested 3D torus for some particular communication
processes, which results in irregular communication operations between
different processes" (paper §VII-B, Fig. 17a).  The rank-dependent
participation branches and level-varying message sizes are what blow up
dynamic-only compressors (ScalaTrace's 400% overhead case, Fig. 16e).

Runs on power-of-two process counts (paper: 64, 128, 256, 512).
"""

from __future__ import annotations

from .base import Workload, grid_3d, is_pow2, scaled

SOURCE = """
// MG-like V-cycle.  3D grid px x py x pz; level-l active ranks are those
// whose coordinates are multiples of 2^l (clamped per dimension).
func halo(axis_extent, coord, stride, delta, msg, tag) {
  // exchange with the +stride and -stride neighbours along one axis
  // (periodic), where delta converts axis steps into rank steps.
  var r[4];
  var up = ((coord + stride) % axis_extent - coord) * delta;
  var dn = ((coord + axis_extent - stride) % axis_extent - coord) * delta;
  var rank = mpi_comm_rank();
  if (up != 0) {
    r[0] = mpi_irecv(rank + dn, msg, tag);
    r[1] = mpi_irecv(rank + up, msg, tag);
    r[2] = mpi_isend(rank + up, msg, tag);
    r[3] = mpi_isend(rank + dn, msg, tag);
    mpi_waitall(r, 4);
  }
}

func level_exchange(level, msg) {
  var rank = mpi_comm_rank();
  var x = rank % px;
  var y = (rank / px) % py;
  var z = rank / (px * py);
  var sx = min(pow2(level), px / 2);
  var sy = min(pow2(level), py / 2);
  var sz = min(pow2(level), pz / 2);
  var active = 0;
  if (sx > 0 && sy > 0 && sz > 0) {
    if (x % sx == 0 && y % sy == 0 && z % sz == 0) {
      active = 1;
    }
  }
  if (active == 1) {
    halo(px, x, sx, 1, msg, 80 + level);
    halo(py, y, sy, px, msg, 90 + level);
    halo(pz, z, sz, px * py, msg, 100 + level);
  }
}

func main() {
  mpi_init();
  for (var it = 0; it < niter; it = it + 1) {
    // down the V: restrict; message sizes shrink with the level
    for (var l = 0; l < nlevels; l = l + 1) {
      level_exchange(l, max(msgbase / pow2(2 * l), 64));
      compute(ctime);
    }
    // up the V: prolongate
    for (var l = 0; l < nlevels; l = l + 1) {
      var lev = nlevels - 1 - l;
      level_exchange(lev, max(msgbase / pow2(2 * lev), 64));
      compute(ctime);
    }
    // residual norm
    mpi_allreduce(8);
  }
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    if not is_pow2(nprocs):
        raise ValueError(f"MG needs a power-of-two process count, got {nprocs}")
    px, py, pz = grid_3d(nprocs)
    return {
        "px": px,
        "py": py,
        "pz": pz,
        "nlevels": 4,  # CLASS D: 10 levels
        "msgbase": 1 << 17,  # finest-level halo bytes
        "niter": scaled(10, scale),  # CLASS D: 50
        "ctime": 200,
    }


WORKLOAD = Workload(
    name="mg",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(1 << k for k in range(3, 13)),
    paper_procs=(64, 128, 256, 512),
    description="V-cycle multigrid; nested-torus, level-dependent participation",
)
