"""LU-like kernel: SSOR wavefront pipelining on a 2D process grid.

NPB LU factorises with lower/upper triangular sweeps pipelined over the
k-planes of the grid: per plane each rank receives a pencil from its
north and west neighbours, computes, and forwards south and east; the
upper sweep runs the reverse wavefront.  Per time step this emits
``2 · nz · 4`` *small* blocking messages — LU produces by far the largest
raw traces in the paper's grid (Fig. 15f, ~10^8 KB at 512 ranks for Gzip)
while compressing to near-constant size under CYPRESS.

Runs on power-of-two process counts (paper: 64, 128, 256, 512).
"""

from __future__ import annotations

from .base import Workload, grid_2d, is_pow2, scaled

SOURCE = """
// LU-like SSOR wavefront: px x py grid, pencil messages per k-plane.
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var row = rank / px;
  var col = rank % px;
  var pencil = 8 * 5 * (nx / px);   // 5 doubles per pencil point
  for (var it = 0; it < niter; it = it + 1) {
    // lower-triangular sweep (blts): wavefront from (0,0)
    for (var k = 0; k < nz; k = k + 1) {
      if (row > 0) { mpi_recv(rank - px, pencil, 30); }
      if (col > 0) { mpi_recv(rank - 1, pencil, 31); }
      compute(ctime);
      if (row < py - 1) { mpi_send(rank + px, pencil, 30); }
      if (col < px - 1) { mpi_send(rank + 1, pencil, 31); }
    }
    // upper-triangular sweep (buts): wavefront from (py-1, px-1)
    for (var k = 0; k < nz; k = k + 1) {
      if (row < py - 1) { mpi_recv(rank + px, pencil, 32); }
      if (col < px - 1) { mpi_recv(rank + 1, pencil, 33); }
      compute(ctime);
      if (row > 0) { mpi_send(rank - px, pencil, 32); }
      if (col > 0) { mpi_send(rank - 1, pencil, 33); }
    }
    // halo exchange of the full solution slab (exchange_3)
    var halo = 8 * 5 * nx / px * 2;
    var r[4];
    var nreq = 0;
    if (row > 0)      { r[nreq] = mpi_irecv(rank - px, halo, 34); nreq = nreq + 1; }
    if (row < py - 1) { r[nreq] = mpi_irecv(rank + px, halo, 34); nreq = nreq + 1; }
    if (row > 0)      { mpi_send(rank - px, halo, 34); }
    if (row < py - 1) { mpi_send(rank + px, halo, 34); }
    mpi_waitall(r, nreq);
    // residual norm every inorm steps
    if (it % inorm == 0) {
      mpi_allreduce(40);
    }
  }
  mpi_allreduce(40);
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    if not is_pow2(nprocs):
        raise ValueError(f"LU needs a power-of-two process count, got {nprocs}")
    px, py = grid_2d(nprocs)
    return {
        "px": px,
        "py": py,
        "nx": 408,  # CLASS D edge
        "nz": scaled(10, scale),  # CLASS D: 408 planes
        "niter": scaled(12, scale),  # CLASS D: 300
        "inorm": 4,
        "ctime": 60,
    }


WORKLOAD = Workload(
    name="lu",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(1 << k for k in range(2, 13)),
    paper_procs=(64, 128, 256, 512),
    description="SSOR wavefront; thousands of small pipelined messages",
)
