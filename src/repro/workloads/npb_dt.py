"""DT-like kernel: data-traffic graph (quad-tree shuffle + sink gather).

NPB DT streams data through a task graph.  This kernel builds a quad-tree
over the ranks: the root scatters a payload down the tree, leaves reduce
their answers back to rank 0 — which collects them with **wildcard
receives** (``MPI_ANY_SOURCE``), exercising the non-deterministic-event
path of every compressor.  There is no outer time-step loop, so traces
are tiny and essentially constant in P (paper Fig. 15c).

Runs on any process count >= 5 (paper: 48, 64, 128, 256).
"""

from __future__ import annotations

from .base import Workload

SOURCE = """
// DT-like quad-tree data-flow graph.
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  // Downward pass: receive the payload from the quad-tree parent,
  // forward shrunk copies to up to 4 children.
  if (rank > 0) {
    mpi_recv((rank - 1) / 4, payload, 5);
  }
  var nchildren = 0;
  for (var c = 1; c <= 4; c = c + 1) {
    var child = 4 * rank + c;
    if (child < size) {
      mpi_send(child, payload, 5);
      nchildren = nchildren + 1;
    }
  }
  compute(ctime);
  // Leaves report to the sink (rank 0), which gathers with ANY_SOURCE.
  if (rank == 0) {
    var nleaves = 0;
    for (var i = 0; i < size; i = i + 1) {
      if (4 * i + 1 >= size) {
        nleaves = nleaves + 1;
      }
    }
    for (var i = 0; i < nleaves; i = i + 1) {
      mpi_recv(-1, result, 9);
    }
  } else {
    if (4 * rank + 1 >= size) {
      mpi_send(0, result, 9);
    }
  }
  mpi_barrier();
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    del scale  # DT has no time-step loop to scale
    return {
        "payload": 1 << 16,  # 64 KB feature chunk
        "result": 64,
        "ctime": 500,
    }


WORKLOAD = Workload(
    name="dt",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(range(5, 1025)),
    paper_procs=(48, 64, 128, 256),
    description="Data-traffic quad-tree graph; wildcard receives at the sink",
)
