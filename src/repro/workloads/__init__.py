"""NPB-like communication kernels and the LESlie3d proxy (MiniMPI)."""

from .base import Workload, grid_2d, grid_3d, is_pow2, is_square
from .registry import NPB_NAMES, WORKLOADS, get

__all__ = [
    "Workload",
    "WORKLOADS",
    "NPB_NAMES",
    "get",
    "grid_2d",
    "grid_3d",
    "is_pow2",
    "is_square",
]
