"""LESlie3d proxy: 3D CFD stencil (Large-Eddy Simulation code).

The paper's real-world case study (§VII-D).  LESlie3d decomposes the
193³ grid over a 3D process grid and exchanges 6-neighbour halos each
time step — with exactly *two* distinct message sizes (the paper observes
43 KB and 83 KB) and strong communication locality: non-periodic
boundaries mean rank 0 talks only to ranks 1, 2 and 8 at P=32 (Fig. 20a,
matching a (2, 4, 4)-factor decomposition with rank steps 1, 2, 8).

This proxy reproduces the decomposition, the two message sizes, the
locality, and a periodic residual allreduce.

Runs on power-of-two process counts (paper: 32 … 512).
"""

from __future__ import annotations

from .base import Workload, is_pow2, scaled


def _leslie_grid(nprocs: int) -> tuple[int, int, int]:
    """Decomposition with px the *fastest* axis: (px, py, pz) such that
    rank = x + px*y + px*py*z and px <= py <= pz (so rank 0's neighbours
    are 1, px, px*py — the 1/2/8 pattern at P=32 with (2, 4, 4))."""
    if not is_pow2(nprocs):
        raise ValueError(f"LESlie3d proxy needs a power of two, got {nprocs}")
    k = nprocs.bit_length() - 1
    kx = k // 3
    ky = (k + 1) // 3
    kz = (k + 2) // 3
    return (1 << kx, 1 << ky, 1 << kz)


SOURCE = """
// LESlie3d-like 3D stencil: non-periodic 6-neighbour halo exchange.
func face(cond, peer, msg, tag, r, nreq) {
  if (cond == 1) {
    r[nreq] = mpi_irecv(peer, msg, tag);
    r[nreq + 1] = mpi_isend(peer, msg, tag);
    return nreq + 2;
  }
  return nreq;
}

func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var x = rank % px;
  var y = (rank / px) % py;
  var z = rank / (px * py);
  var r[12];
  for (var it = 0; it < niter; it = it + 1) {
    var nreq = 0;
    // x faces carry the small (43KB) halo, y/z the large (83KB) one.
    nreq = face(x > 0, rank - 1, msgx, 1, r, nreq);
    nreq = face(x < px - 1, rank + 1, msgx, 1, r, nreq);
    nreq = face(y > 0, rank - px, msgyz, 2, r, nreq);
    nreq = face(y < py - 1, rank + px, msgyz, 2, r, nreq);
    nreq = face(z > 0, rank - px * py, msgyz, 3, r, nreq);
    nreq = face(z < pz - 1, rank + px * py, msgyz, 3, r, nreq);
    mpi_waitall(r, nreq);
    compute(ctime);
    if (it % nres == 0) {
      mpi_allreduce(8);
    }
  }
  mpi_allreduce(48);
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    px, py, pz = _leslie_grid(nprocs)
    return {
        "px": px,
        "py": py,
        "pz": pz,
        "msgx": 43 * 1024,  # the paper's two observed message sizes
        "msgyz": 83 * 1024,
        "niter": scaled(25, scale),
        "nres": 5,
        # Strong scaling: the 193^3 grid is fixed, so per-rank computation
        # shrinks ~1/P — this is why the paper's communication fraction
        # climbs from 2.85% (32p) to 32.47% (512p) in Fig. 21.
        "ctime": max(60, 38400 // nprocs),
    }


WORKLOAD = Workload(
    name="leslie3d",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(1 << k for k in range(3, 13)),
    paper_procs=(32, 64, 128, 256, 512),
    description="LESlie3d CFD proxy; 6-neighbour halos, two message sizes",
)
