"""AMR-like workload: halo exchange with phase changes (extension).

Adaptive mesh refinement periodically *regrids*: after each regrid the
communication pattern changes — message sizes grow where the mesh
refined, and refined ranks gain diagonal neighbours.  Time-varying
patterns are a classic stressor for trace compressors: bottom-up tools
see their repeating window broken at every phase boundary, while the CTT
records per-phase parameter changes as a handful of extra records with
stride-compressed occurrence sets.

Runs on perfect-square process counts.
"""

from __future__ import annotations

from .base import Workload, is_square, scaled

SOURCE = """
// AMR-like 2D halo exchange with regridding phase changes.
func xchg(peer, nbytes, tag, r, nreq) {
  r[nreq] = mpi_irecv(peer, nbytes, tag);
  r[nreq + 1] = mpi_isend(peer, nbytes, tag);
  return nreq + 2;
}

func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  var p = isqrt(size);
  var row = rank / p;
  var col = rank % p;
  var r[12];
  for (var it = 0; it < niter; it = it + 1) {
    // refinement level of this rank's patch: the lower-left quadrant
    // refines at each regrid (its messages double)
    var phase = it / regrid;
    var level = 0;
    if (row < p / 2 && col < p / 2) {
      level = min(phase, 3);
    }
    var msg = base * pow2(level);
    var nreq = 0;
    if (col > 0)     { nreq = xchg(rank - 1, msg, 1, r, nreq); }
    if (col < p - 1) { nreq = xchg(rank + 1, msg, 1, r, nreq); }
    if (row > 0)     { nreq = xchg(rank - p, msg, 2, r, nreq); }
    if (row < p - 1) { nreq = xchg(rank + p, msg, 2, r, nreq); }
    // refined patches also exchange diagonals (flux correction) — only
    // with partners that are themselves refined (inside the quadrant)
    if (level > 0) {
      if (row > 0 && col > 0) {
        nreq = xchg(rank - p - 1, msg / 4, 3, r, nreq);
      }
      if (row < p / 2 - 1 && col < p / 2 - 1) {
        nreq = xchg(rank + p + 1, msg / 4, 3, r, nreq);
      }
    }
    mpi_waitall(r, nreq);
    compute(ctime);
    if (it % regrid == regrid - 1) {
      mpi_allreduce(8 * size);  // load-balance metric exchange
    }
  }
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    if not is_square(nprocs):
        raise ValueError(f"AMR needs a square process count, got {nprocs}")
    return {
        "base": 8192,
        "regrid": 6,
        "niter": scaled(24, scale),
        "ctime": 250,
    }


WORKLOAD = Workload(
    name="amr",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(q * q for q in range(2, 33)),
    paper_procs=(),  # extension; not in the paper's grid
    description="AMR-style halo exchange; regridding changes sizes and partners",
)
