"""Workload registry infrastructure.

Each workload is a MiniMPI program (one source for all process counts)
plus a ``defines`` function computing its compile-time constants for a
given process count and scale factor.  ``scale=1.0`` is the repo default
(iteration counts reduced from NPB CLASS D so the full evaluation grid
runs in minutes — documented in DESIGN.md); benchmarks can raise it.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isqrt
from typing import Callable


@dataclass(frozen=True)
class Workload:
    name: str
    source: str
    defines: Callable[[int, float], dict[str, int]]  # (nprocs, scale) -> defines
    valid_procs: tuple[int, ...]
    description: str
    paper_procs: tuple[int, ...] = ()  # the process counts Fig. 15 uses

    def check_procs(self, nprocs: int) -> None:
        if nprocs not in self.valid_procs:
            raise ValueError(
                f"{self.name} does not run on {nprocs} processes "
                f"(valid: {self.valid_procs})"
            )


def is_square(n: int) -> bool:
    r = isqrt(n)
    return r * r == n


def is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def grid_3d(nprocs: int) -> tuple[int, int, int]:
    """Factor a power-of-two process count into a near-cubic 3D grid
    (px >= py >= pz), the decomposition NPB MG and LESlie3d use."""
    if not is_pow2(nprocs):
        raise ValueError(f"3D grid needs a power of two, got {nprocs}")
    k = nprocs.bit_length() - 1
    kx = (k + 2) // 3
    ky = (k + 1) // 3
    kz = k // 3
    return (1 << kx, 1 << ky, 1 << kz)


def grid_2d(nprocs: int) -> tuple[int, int]:
    """Near-square 2D grid for a power-of-two process count (LU)."""
    if not is_pow2(nprocs):
        raise ValueError(f"2D grid needs a power of two, got {nprocs}")
    k = nprocs.bit_length() - 1
    kx = (k + 1) // 2
    return (1 << kx, 1 << (k - kx))


def scaled(base: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(base * scale)))
