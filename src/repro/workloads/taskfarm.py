"""Task-farm workload: master/worker with wildcard receives (extension).

Not an NPB code — added to exercise the paper's non-deterministic-event
machinery (§IV-A) under realistic pressure: the master serves work
requests with ``MPI_ANY_SOURCE`` receives, so *every* master-side record
depends on runtime arrival order, and its replies have data-dependent
destinations.  Compression degrades gracefully (per-source record
groups) instead of exploding, and replay must reproduce the exact
recorded arrival order.

Workers run fixed request/receive rounds with rank-skewed computation, so
arrival order is non-trivial but the trace stays deterministic for the
simulated machine.

Runs on any process count >= 2.
"""

from __future__ import annotations

from .base import Workload, scaled

SOURCE = """
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  if (rank == 0) {
    // master: serve every request in arrival order
    for (var t = 0; t < (size - 1) * rounds; t = t + 1) {
      var src = mpi_recv(-1, 8, 1);   // work request (ANY_SOURCE)
      mpi_send(src, chunk, 2);        // task payload to the requester
    }
  } else {
    for (var j = 0; j < rounds; j = j + 1) {
      mpi_send(0, 8, 1);              // ask for work
      mpi_recv(0, chunk, 2);          // receive the task
      compute(wtime + (rank * 37) % 29 + 7 * (j % 3));  // skewed work
    }
  }
  mpi_reduce(0, 8);
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    del nprocs
    return {
        "rounds": scaled(12, scale),
        "chunk": 32 * 1024,
        "wtime": 120,
    }


WORKLOAD = Workload(
    name="farm",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(range(2, 4097)),
    paper_procs=(),  # extension; not in the paper's grid
    description="Master/worker task farm; wildcard receives, data-dependent replies",
)
