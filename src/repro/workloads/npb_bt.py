"""BT-like kernel: multi-partition ADI on a square process grid.

NPB BT solves block-tridiagonal systems with three alternating-direction
sweeps per time step.  In the multi-partition scheme every rank exchanges
one cell face per sweep direction with its successor/predecessor along
rows, columns and wrapped diagonals of the p×p grid.  Messages are large
and uniform — the friendly case for every compressor (paper Fig. 15a).

Runs on perfect-square process counts (paper: 64, 121, 256, 400).
"""

from __future__ import annotations

from math import isqrt

from .base import Workload, is_square, scaled

SOURCE = """
// BT-like multi-partition ADI kernel.
func sweep(dst, src, msg, tag, ctime) {
  var r[2];
  r[0] = mpi_irecv(src, msg, tag);
  r[1] = mpi_isend(dst, msg, tag);
  mpi_waitall(r, 2);
  compute(ctime);
}

func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  var p = isqrt(size);
  var row = rank / p;
  var col = rank % p;
  var cell = probsize / p;
  var msg = cell * cell * 40;   // 5 doubles per face point
  for (var it = 0; it < niter; it = it + 1) {
    // x sweep: successor along the row (wrapped)
    sweep(row * p + (col + 1) % p, row * p + (col + p - 1) % p, msg, 10, ctime);
    // y sweep: successor along the column (wrapped)
    sweep(((row + 1) % p) * p + col, ((row + p - 1) % p) * p + col, msg, 11, ctime);
    // z sweep: wrapped diagonal (multi-partition ownership shift)
    sweep(((row + 1) % p) * p + (col + 1) % p,
          ((row + p - 1) % p) * p + (col + p - 1) % p, msg, 12, ctime);
  }
  mpi_allreduce(40);   // solution verification norms
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    if not is_square(nprocs):
        raise ValueError(f"BT needs a square process count, got {nprocs}")
    return {
        "probsize": 408,  # CLASS D grid edge
        "niter": scaled(20, scale),  # CLASS D: 250
        "ctime": 400,  # us of computation per sweep
    }


WORKLOAD = Workload(
    name="bt",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(p * p for p in range(2, 33)),
    paper_procs=(64, 121, 256, 400),
    description="Block-tridiagonal ADI, multi-partition; large uniform messages",
)
