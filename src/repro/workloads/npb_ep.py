"""EP-like kernel: embarrassingly parallel random-number statistics.

NPB EP computes Gaussian pairs independently on every rank; the only
communication is a handful of small allreduces combining the sums and the
annulus counts at the end.  Traces are minuscule and constant in P
(paper Fig. 15d) — the floor case for every compressor.

Runs on any process count (paper: 64, 128, 256, 512).
"""

from __future__ import annotations

from .base import Workload, scaled

SOURCE = """
func main() {
  mpi_init();
  // Independent computation batches (the only structure EP has).
  for (var b = 0; b < nbatches; b = b + 1) {
    compute(ctime);
  }
  // Combine sx, sy and the 10 annulus counts.
  mpi_allreduce(8);
  mpi_allreduce(8);
  mpi_allreduce(80);
  mpi_barrier();
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    del nprocs
    return {
        "nbatches": scaled(16, scale),
        "ctime": 2000,
    }


WORKLOAD = Workload(
    name="ep",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(range(1, 4097)),
    paper_procs=(64, 128, 256, 512),
    description="Embarrassingly parallel; three final allreduces only",
)
