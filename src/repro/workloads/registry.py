"""Name-indexed registry of all workloads."""

from __future__ import annotations

from .amr import WORKLOAD as AMR
from .base import Workload
from .fig11 import WORKLOAD as FIG11
from .leslie3d import WORKLOAD as LESLIE3D
from .npb_bt import WORKLOAD as BT
from .npb_cg import WORKLOAD as CG
from .npb_dt import WORKLOAD as DT
from .npb_ep import WORKLOAD as EP
from .npb_ft import WORKLOAD as FT
from .npb_is import WORKLOAD as IS
from .npb_lu import WORKLOAD as LU
from .npb_mg import WORKLOAD as MG
from .npb_sp import WORKLOAD as SP
from .taskfarm import WORKLOAD as FARM

WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (BT, CG, DT, EP, FT, IS, LU, MG, SP, LESLIE3D, FARM, AMR, FIG11)
}

NPB_NAMES = ("bt", "cg", "dt", "ep", "ft", "lu", "mg", "sp")


def get(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
