"""FT-like kernel: 3D FFT with all-to-all transposes.

NPB FT evolves a spectral PDE: each time step performs a global transpose
(MPI_Alltoall of the local slab) followed by a checksum reduction.  The
communication is pure collectives — trace structure is trivial, but the
*volume* moved is enormous, so raw traces stay small while timing-heavy.
(Paper Fig. 15e: near-constant compressed sizes.)

Runs on power-of-two process counts (paper: 64, 128, 256, 512).
"""

from __future__ import annotations

from .base import Workload, is_pow2, scaled

SOURCE = """
func main() {
  mpi_init();
  var size = mpi_comm_size();
  // total complex grid points / P^2 per pairwise chunk
  var chunk = (ntotal / size) / size * 16;
  // warm-up transpose of the initial state
  mpi_alltoall(chunk);
  for (var it = 0; it < niter; it = it + 1) {
    compute(ctime);             // evolve + local FFTs
    mpi_alltoall(chunk);        // global transpose
    mpi_allreduce(16);          // complex checksum
  }
  mpi_finalize();
}
"""


def defines(nprocs: int, scale: float = 1.0) -> dict[str, int]:
    if not is_pow2(nprocs):
        raise ValueError(f"FT needs a power-of-two process count, got {nprocs}")
    return {
        "ntotal": 2048 * 1024 * 1024 // 1024,  # CLASS D points, scaled down 1024x
        "niter": scaled(12, scale),  # CLASS D: 25
        "ctime": 1500,
    }


WORKLOAD = Workload(
    name="ft",
    source=SOURCE,
    defines=defines,
    valid_procs=tuple(1 << k for k in range(2, 13)),
    paper_procs=(64, 128, 256, 512),
    description="3D FFT; alltoall transpose + checksum allreduce per step",
)
