"""Per-``(job, rank)`` session state and its crash-safe persistence.

A session's durable footprint is two small files in the server's state
directory, both built from the same CRC32-framed section container the
v5/v6 trace format uses (:mod:`repro.core.serialize`):

* ``{job}__r{rank}.log`` — the **batch log**: an append-only sequence
  of framed BATCH sections (``seq u64 | CYPK blob``).  Appends are
  fsynced; a crash mid-append tears at most the last section, and
  recovery keeps the longest checksum-valid prefix (the same salvage
  scan the trace container uses).  The log is the source of truth: a
  batch is *durable* exactly when its section survives the prefix scan.
* ``{job}__r{rank}.meta.a`` / ``.b`` — the **meta checkpoint**,
  written whole (temp file + fsync + ``os.replace``) into alternating
  slots with a monotonically increasing generation counter.  Recovery
  reads both slots and keeps the newest one that validates — a torn or
  corrupt checkpoint silently loses one generation, never the session.

The in-memory :class:`SessionState` buffers acked-but-not-yet-durable
batches; :meth:`SessionStore.checkpoint` appends them to the log,
advances the meta generation, and releases the memory — which is what
lets the daemon's backpressure spill a firehose session to disk and
keep its buffered-bytes gauge under the watermark.
"""

from __future__ import annotations

import json
import os
import re
import struct
import time
from dataclasses import dataclass, field

from repro.core.errors import TraceFormatError
from repro.core.quarantine import QuarantinedRank
from repro.core.serialize import ByteWriter, _read_sections, _write_section

_LOG_MAGIC = b"CYSL"
_META_MAGIC = b"CYSM"
_VERSION = 1

#: Section kinds inside the session files.
SEC_END = 0
SEC_META = 1
SEC_BATCH = 2

_SEQ = struct.Struct("<Q")

_JOB_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,127}$")


class SessionFormatError(TraceFormatError):
    """A session file that is damaged beyond salvage."""


def check_job_id(job: str) -> str:
    """Validate a job id (it becomes part of file names)."""
    if not isinstance(job, str) or not _JOB_RE.match(job):
        raise ValueError(
            f"bad job id {job!r}: want [A-Za-z0-9][A-Za-z0-9_.-]*, <=128 chars"
        )
    return job


@dataclass
class SessionState:
    """One live ``(job, rank)`` ingest session."""

    job: str
    rank: int
    nranks: int
    #: Registered workload name + scale — the job's identity; recovery
    #: rebuilds the CST (and thus the compressor) from these.
    workload: str = ""
    scale: float = 1.0
    #: Highest contiguous batch sequence number ingested (acked to the
    #: client).  Starts at 0; batch ``seq`` must equal ``acked_seq + 1``.
    acked_seq: int = 0
    #: Highest batch sequence number durable in the batch log.
    durable_seq: int = 0
    #: Acked batches not yet appended to the log, in seq order.
    mem_batches: list[tuple[int, bytes]] = field(default_factory=list)
    #: Bytes held by ``mem_batches`` — the session's share of the
    #: server's buffered-bytes gauge.
    buffered_bytes: int = 0
    #: EOS received: the total batch count the client declared, or None.
    eos_seq: int | None = None
    #: Set when the idle reaper quarantined this rank (lenient path).
    quarantined: QuarantinedRank | None = None
    generation: int = 0
    last_activity: float = field(default_factory=time.monotonic)

    @property
    def finalized(self) -> bool:
        """The client sent EOS and every declared batch was ingested."""
        return self.eos_seq is not None and self.acked_seq >= self.eos_seq

    @property
    def dirty(self) -> bool:
        """Anything acked (batches or EOS/quarantine state) not yet on
        disk — the checkpoint loop's work predicate."""
        return bool(self.mem_batches) or self.acked_seq > self.durable_seq \
            or self.generation == 0 or self._meta_dirty

    _meta_dirty: bool = False

    def touch(self) -> None:
        self.last_activity = time.monotonic()

    def mark_meta_dirty(self) -> None:
        self._meta_dirty = True

    def accept(self, seq: int, blob: bytes) -> bool:
        """Ack one batch; returns False for a duplicate (seq already
        acked — the exactly-once dedup), raises on a gap."""
        if seq <= self.acked_seq:
            return False
        if seq != self.acked_seq + 1:
            raise ValueError(
                f"out-of-order batch {seq} (expected {self.acked_seq + 1})"
            )
        self.mem_batches.append((seq, blob))
        self.buffered_bytes += len(blob)
        self.acked_seq = seq
        self.touch()
        return True

    def meta_dict(self) -> dict:
        return {
            "job": self.job,
            "rank": self.rank,
            "nranks": self.nranks,
            "workload": self.workload,
            "scale": self.scale,
            "acked_seq": self.acked_seq,
            "eos_seq": self.eos_seq,
            "generation": self.generation,
            "quarantined": (
                self.quarantined.to_dict() if self.quarantined else None
            ),
        }


@dataclass
class RecoveredSession:
    """What :meth:`SessionStore.load_all` salvages for one session."""

    job: str
    rank: int
    meta: dict
    #: Durable batches, contiguous from seq 1, in order.
    batches: list[tuple[int, bytes]]

    def to_state(self) -> SessionState:
        durable = self.batches[-1][0] if self.batches else 0
        qd = self.meta.get("quarantined")
        quarantined = QuarantinedRank.from_dict(qd) if qd else None
        eos_seq = self.meta.get("eos_seq")
        if eos_seq is not None and durable < eos_seq:
            # The EOS outlived its tail batches (meta checkpointed, log
            # tail torn): the client must re-send from ``durable``, so
            # the EOS mark is forgotten along with the lost batches.
            eos_seq = None
        return SessionState(
            job=self.job,
            rank=self.rank,
            nranks=self.meta["nranks"],
            workload=self.meta.get("workload", ""),
            scale=self.meta.get("scale", 1.0),
            acked_seq=durable,
            durable_seq=durable,
            eos_seq=eos_seq,
            quarantined=quarantined,
            generation=self.meta.get("generation", 0),
        )


# ---------------------------------------------------------------------------


class SessionStore:
    """Durable home of every session's batch log + meta checkpoint."""

    def __init__(self, state_dir: str) -> None:
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)

    # -- paths -----------------------------------------------------------

    def _base(self, job: str, rank: int) -> str:
        return os.path.join(self.state_dir, f"{job}__r{rank}")

    def log_path(self, job: str, rank: int) -> str:
        return self._base(job, rank) + ".log"

    def meta_paths(self, job: str, rank: int) -> tuple[str, str]:
        base = self._base(job, rank)
        return base + ".meta.a", base + ".meta.b"

    # -- write side ------------------------------------------------------

    def append_batches(
        self, job: str, rank: int, batches: list[tuple[int, bytes]]
    ) -> None:
        """Append framed batch sections to the log and fsync.  A crash
        mid-call tears at most the final section (prefix salvage)."""
        if not batches:
            return
        w = ByteWriter()
        for seq, blob in batches:
            _write_section(w, SEC_BATCH, _SEQ.pack(seq) + blob)
        path = self.log_path(job, rank)
        new = not os.path.exists(path)
        with open(path, "ab") as fh:
            if new:
                fh.write(_LOG_MAGIC + bytes([_VERSION]))
            fh.write(w.bytes())
            fh.flush()
            os.fsync(fh.fileno())

    def write_meta(self, session: SessionState) -> None:
        """Atomically persist the session meta into the older of the two
        alternating slots, bumping the generation counter."""
        session.generation += 1
        slot_a, slot_b = self.meta_paths(session.job, session.rank)
        target = slot_a if session.generation % 2 else slot_b
        w = ByteWriter()
        w.raw(_META_MAGIC + bytes([_VERSION]))
        payload = json.dumps(session.meta_dict(), sort_keys=True).encode()
        _write_section(w, SEC_META, payload)
        ew = ByteWriter()
        ew.u(1)
        _write_section(w, SEC_END, ew.bytes())
        tmp = target + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(w.bytes())
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        session._meta_dirty = False

    def checkpoint(self, session: SessionState) -> int:
        """Make everything acked durable and release the batch memory;
        returns the bytes spilled to the log."""
        spilled = session.buffered_bytes
        self.append_batches(session.job, session.rank, session.mem_batches)
        session.durable_seq = session.acked_seq
        session.mem_batches.clear()
        session.buffered_bytes = 0
        self.write_meta(session)
        return spilled

    def remove(self, job: str, rank: int) -> None:
        for path in (self.log_path(job, rank), *self.meta_paths(job, rank)):
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- read side -------------------------------------------------------

    def read_log_batches(self, job: str, rank: int) -> list[tuple[int, bytes]]:
        """The durable batches: longest checksum-valid prefix of the
        log, kept only while sequence numbers stay contiguous from 1."""
        path = self.log_path(job, rank)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            return []
        if data[:4] != _LOG_MAGIC:
            return []
        sections, _complete, _error = _read_sections(data, 5, salvage=True)
        batches: list[tuple[int, bytes]] = []
        expect = 1
        for kind, payload in sections:
            if kind != SEC_BATCH or len(payload) < _SEQ.size:
                break
            seq = _SEQ.unpack_from(payload)[0]
            if seq != expect:
                break
            batches.append((seq, payload[_SEQ.size:]))
            expect += 1
        return batches

    def _read_meta(self, path: str) -> dict | None:
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            return None
        if data[:4] != _META_MAGIC or len(data) < 5:
            return None
        try:
            sections, complete, _error = _read_sections(data, 5, salvage=False)
        except TraceFormatError:
            return None
        if not complete or not sections or sections[0][0] != SEC_META:
            return None
        try:
            meta = json.loads(sections[0][1].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return meta if isinstance(meta, dict) else None

    def read_meta(self, job: str, rank: int) -> dict | None:
        """The newest valid meta checkpoint of the two slots."""
        candidates = [
            m for m in map(self._read_meta, self.meta_paths(job, rank))
            if m is not None
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda m: m.get("generation", 0))

    def discover(self) -> list[tuple[str, int]]:
        """Every ``(job, rank)`` with any file in the state dir."""
        seen: set[tuple[str, int]] = set()
        pat = re.compile(r"^(.+)__r(\d+)\.(log|meta\.[ab])$")
        try:
            names = os.listdir(self.state_dir)
        except OSError:
            return []
        for name in names:
            m = pat.match(name)
            if m:
                seen.add((m.group(1), int(m.group(2))))
        return sorted(seen)

    def load_all(self) -> list[RecoveredSession]:
        """Salvage every session: newest valid meta + durable batch
        prefix.  A session with a log but no readable meta is dropped
        (nranks unknown — the client will re-HELLO and restart it)."""
        out: list[RecoveredSession] = []
        for job, rank in self.discover():
            meta = self.read_meta(job, rank)
            if meta is None:
                continue
            out.append(RecoveredSession(
                job=job, rank=rank, meta=meta,
                batches=self.read_log_batches(job, rank),
            ))
        return out
