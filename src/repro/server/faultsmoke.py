"""``repro faultsmoke --server``: the online-ingest fault matrix.

Every scenario drives real daemon subprocesses (``python -m repro
serve``) through a seeded fault — SIGKILL at a chosen batch count,
client disconnects, torn frames, a rank stalled past the idle timeout,
SIGTERM drain mid-ingest, watermark pressure — and then asserts the
recovered, finalized merged trace is **byte-identical** to what the
offline batch pipeline (:func:`repro.core.run_cypress`) produces for
the same workload.  ``--soak`` runs the CI endurance mode: N seconds of
concurrent client waves with seeded daemon kills and client drops,
verifying every completed job and emitting a metrics JSON artifact.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import repro
from repro.core import run_cypress, serialize
from repro.faults import FaultPlan
from repro.workloads import get as get_workload

from .client import submit_workload

#: The byte-identity matrix: (workload, nprocs, scale).
MATRIX = (
    ("fig11", 8, 0.3),
    ("cg", 8, 0.3),
    ("farm", 7, 0.3),
)

_BATCH_EVENTS = 48  # small batches -> many seqs -> meaningful kill points


class DaemonProc:
    """One ``repro serve`` subprocess bound to a known port."""

    def __init__(self, state_dir: str, out_dir: str, *, port: int = 0,
                 idle_timeout: float = 30.0,
                 checkpoint_interval: float = 0.05,
                 high_watermark: int | None = None,
                 low_watermark: int | None = None,
                 session_watermark: int | None = None,
                 kill_after_batches: int | None = None,
                 metrics_json: str | None = None) -> None:
        self.state_dir, self.out_dir = state_dir, out_dir
        self.port_file = os.path.join(state_dir, "port")
        try:
            os.unlink(self.port_file)
        except OSError:
            pass
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--state-dir", state_dir, "--out-dir", out_dir,
            "--port", str(port), "--port-file", self.port_file,
            "--idle-timeout", str(idle_timeout),
            "--checkpoint-interval", str(checkpoint_interval),
        ]
        if high_watermark is not None:
            argv += ["--high-watermark", str(high_watermark)]
        if low_watermark is not None:
            argv += ["--low-watermark", str(low_watermark)]
        if session_watermark is not None:
            argv += ["--session-watermark", str(session_watermark)]
        if kill_after_batches is not None:
            argv += ["--kill-after-batches", str(kill_after_batches)]
        if metrics_json is not None:
            argv += ["--metrics-json", metrics_json]
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__
        )))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            argv, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        self.port: int | None = None

    def start(self, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(self.port_file):
                try:
                    text = open(self.port_file).read().strip()
                    if text:
                        self.port = int(text)
                        return self.port
                except (OSError, ValueError):
                    pass
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon exited rc={self.proc.returncode} before binding"
                )
            time.sleep(0.02)
        raise RuntimeError("daemon did not report its port in time")

    def alive(self) -> bool:
        return self.proc.poll() is None

    def wait_exit(self, timeout: float = 60.0) -> int:
        return self.proc.wait(timeout=timeout)

    def terminate(self, timeout: float = 60.0) -> int:
        """Graceful drain via SIGTERM."""
        if self.alive():
            self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        if self.alive():
            self.proc.kill()
            self.proc.wait(timeout=30)


# ---------------------------------------------------------------------------


_ORACLES: dict[tuple, bytes] = {}


def oracle_bytes(workload: str, nprocs: int, scale: float) -> bytes:
    """Batch-pipeline ground truth for one job (cached per identity)."""
    key = (workload, nprocs, scale)
    if key not in _ORACLES:
        w = get_workload(workload)
        run = run_cypress(
            w.source, nprocs, defines=w.defines(nprocs, scale)
        )
        _ORACLES[key] = serialize.dumps(run.merge(schedule="tree"))
    return _ORACLES[key]


def _dirs(root: str, name: str) -> tuple[str, str]:
    state = os.path.join(root, name, "state")
    out = os.path.join(root, name, "out")
    os.makedirs(state, exist_ok=True)
    os.makedirs(out, exist_ok=True)
    return state, out


def _wait_file(path: str, timeout: float = 60.0) -> bytes:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return open(path, "rb").read()
        time.sleep(0.05)
    raise AssertionError(f"finalized trace {path} never appeared")


def _check_identity(out_dir: str, job: str, workload: str, nprocs: int,
                    scale: float, timeout: float = 60.0) -> str:
    got = _wait_file(os.path.join(out_dir, f"{job}.cyp"), timeout)
    want = oracle_bytes(workload, nprocs, scale)
    if got != want:
        raise AssertionError(
            f"{job}: server trace ({len(got)}B) differs from batch "
            f"pipeline ({len(want)}B)"
        )
    return f"byte-identical to batch pipeline ({len(want)} bytes)"


def _submit_async(port: int, **kwargs) -> tuple[threading.Thread, dict]:
    """Run submit_workload on a thread; the dict fills in at the end."""
    result: dict = {}

    def _go() -> None:
        try:
            result.update(submit_workload("127.0.0.1", port, **kwargs))
        except BaseException as exc:
            result["error"] = f"{type(exc).__name__}: {exc}"

    t = threading.Thread(target=_go, daemon=True)
    t.start()
    return t, result


def _finish(thread: threading.Thread, result: dict,
            timeout: float = 240.0) -> dict:
    thread.join(timeout)
    if thread.is_alive():
        raise AssertionError("client did not finish in time")
    if "error" in result:
        raise AssertionError(f"client failed: {result['error']}")
    return result


# ---------------------------------------------------------------------------
# Scenarios.  Each returns a human-readable detail string or raises.


def scenario_kill_recover(root: str, seed: int, workload: str, nprocs: int,
                          scale: float, kills: int = 1) -> str:
    """SIGKILL the daemon at seeded ingest points mid-stream; restarted
    daemons recover from checkpoints and clients resume exactly-once."""
    name = f"kill-{workload}-{kills}"
    state, out = _dirs(root, name)
    rng = FaultPlan(seed=seed).rng("server-kill", workload, kills)
    kill_at = rng.randrange(4, 13)
    d = DaemonProc(state, out, kill_after_batches=kill_at)
    try:
        port = d.start()
        thread, result = _submit_async(
            port, job=name, workload=workload, nprocs=nprocs, scale=scale,
            batch_events=_BATCH_EVENTS, max_attempts=60,
        )
        kill_points = [kill_at]
        rc = d.wait_exit()
        if rc != 137:
            raise AssertionError(
                f"daemon exit rc={rc}, expected injected 137"
            )
        for round_no in range(1, kills):
            next_kill = rng.randrange(4, 13)
            kill_points.append(next_kill)
            d = DaemonProc(
                state, out, port=port, kill_after_batches=next_kill
            )
            d.start()
            rc = d.wait_exit()
            if rc != 137:
                raise AssertionError(
                    f"daemon restart #{round_no} exit rc={rc}, expected 137"
                )
        d = DaemonProc(state, out, port=port)
        d.start()
        _finish(thread, result)
        detail = _check_identity(out, name, workload, nprocs, scale)
        d.terminate()
        return f"{detail}; kill points {kill_points}, " \
               f"reconnects {result['reconnects']}"
    finally:
        d.kill()


def scenario_client_disconnect(root: str, seed: int) -> str:
    """Two clients hard-drop their sockets mid-stream, reconnect, and
    resume from the server's acked sequence."""
    workload, nprocs, scale = MATRIX[0]
    name = "client-disconnect"
    state, out = _dirs(root, name)
    rng = FaultPlan(seed=seed).rng("client-drop")
    d = DaemonProc(state, out)
    try:
        port = d.start()
        overrides = {
            0: {"drop_after_batches": rng.randrange(1, 4)},
            nprocs // 2: {"drop_after_batches": rng.randrange(1, 4)},
        }
        thread, result = _submit_async(
            port, job=name, workload=workload, nprocs=nprocs, scale=scale,
            batch_events=_BATCH_EVENTS, client_overrides=overrides,
        )
        _finish(thread, result)
        if result["reconnects"] < 2:
            raise AssertionError(
                f"expected >=2 reconnects, saw {result['reconnects']}"
            )
        detail = _check_identity(out, name, workload, nprocs, scale)
        d.terminate()
        return f"{detail}; {result['reconnects']} reconnects"
    finally:
        d.kill()


def scenario_torn_frame(root: str, seed: int) -> str:
    """A client tears a frame in half and dies; the server must shrug
    (no wedge, no partial state) and the retry resumes cleanly."""
    workload, nprocs, scale = MATRIX[0]
    name = "torn-frame"
    state, out = _dirs(root, name)
    rng = FaultPlan(seed=seed).rng("torn-frame")
    d = DaemonProc(state, out)
    try:
        port = d.start()
        overrides = {
            0: {"torn_frame": True,
                "drop_after_batches": rng.randrange(1, 4)},
        }
        thread, result = _submit_async(
            port, job=name, workload=workload, nprocs=nprocs, scale=scale,
            batch_events=_BATCH_EVENTS, client_overrides=overrides,
        )
        _finish(thread, result)
        detail = _check_identity(out, name, workload, nprocs, scale)
        d.terminate()
        return detail
    finally:
        d.kill()


def scenario_stalled_rank(root: str, seed: int) -> str:
    """One rank goes silent past the idle timeout (quarantined through
    the lenient path), then comes back: revived, resumed, and the final
    trace still matches the batch pipeline for *all* ranks."""
    workload, nprocs, scale = MATRIX[0]
    name = "stalled-rank"
    state, out = _dirs(root, name)
    metrics = os.path.join(root, name, "metrics.json")
    d = DaemonProc(state, out, idle_timeout=0.5, metrics_json=metrics)
    try:
        port = d.start()
        overrides = {
            # Rank 0 stalls well past the idle timeout after 2 batches...
            0: {"drop_after_batches": 2, "stall_seconds": 1.5},
            # ...while rank 1 trickles tiny batches at a cadence safely
            # inside the timeout, keeping the job unfinished long enough
            # that the revival happens before the job could finalize
            # without rank 0.
            1: {"batch_events": 8, "batch_delay": 0.25},
        }
        thread, result = _submit_async(
            port, job=name, workload=workload, nprocs=nprocs, scale=scale,
            batch_events=_BATCH_EVENTS, client_overrides=overrides,
        )
        _finish(thread, result)
        detail = _check_identity(out, name, workload, nprocs, scale)
        d.terminate()
        snap = json.load(open(metrics))
        if snap.get("server.idle_quarantines", 0) < 1:
            raise AssertionError("stalled rank was never idle-quarantined")
        if snap.get("server.revivals", 0) < 1:
            raise AssertionError("quarantined rank was never revived")
        return f"{detail}; quarantined then revived"
    finally:
        d.kill()


def scenario_drain_resume(root: str, seed: int) -> str:
    """SIGTERM mid-ingest: graceful drain checkpoints everything, so no
    client ever observes an acked batch regress after the restart."""
    workload, nprocs, scale = MATRIX[1]
    name = "drain-resume"
    state, out = _dirs(root, name)
    d = DaemonProc(state, out)
    try:
        port = d.start()
        overrides = {r: {"batch_delay": 0.05} for r in range(nprocs)}
        thread, result = _submit_async(
            port, job=name, workload=workload, nprocs=nprocs, scale=scale,
            batch_events=_BATCH_EVENTS, client_overrides=overrides,
            max_attempts=60,
        )
        time.sleep(1.0)  # let the ingest get well underway
        rc = d.terminate()
        if rc != 0:
            raise AssertionError(f"drain exit rc={rc}, expected 0")
        d = DaemonProc(state, out, port=port)
        d.start()
        _finish(thread, result)
        if result["acked_regressions"] != 0:
            raise AssertionError(
                f"{result['acked_regressions']} acked batches regressed "
                "across a graceful drain"
            )
        detail = _check_identity(out, name, workload, nprocs, scale)
        d.terminate()
        return f"{detail}; zero acked batches lost across drain"
    finally:
        d.kill()


def scenario_backpressure(root: str, seed: int) -> str:
    """Tiny watermarks + a firehose: THROTTLE frames must be emitted and
    the buffered-bytes gauge must stay bounded by the watermark plus at
    most one in-flight batch per connection."""
    workload, nprocs, scale = MATRIX[0]
    name = "backpressure"
    state, out = _dirs(root, name)
    metrics = os.path.join(root, name, "metrics.json")
    high, low = 24 * 1024, 4 * 1024
    d = DaemonProc(
        state, out, high_watermark=high, low_watermark=low,
        session_watermark=1 << 20, checkpoint_interval=0.2,
        metrics_json=metrics,
    )
    try:
        port = d.start()
        result = submit_workload(
            "127.0.0.1", port, job=name, workload=workload, nprocs=nprocs,
            scale=scale, batch_events=_BATCH_EVENTS,
        )
        detail = _check_identity(out, name, workload, nprocs, scale)
        d.terminate()
        snap = json.load(open(metrics))
        throttles = snap.get("server.throttles", 0)
        if throttles < 1:
            raise AssertionError("no THROTTLE was ever emitted")
        bound = high + nprocs * result["max_batch_bytes"]
        peak = snap.get("server.buffered_bytes_max", 0)
        if peak > bound:
            raise AssertionError(
                f"buffered bytes peaked at {peak}, above bound {bound}"
            )
        return (f"{detail}; {int(throttles)} throttle(s), "
                f"peak {int(peak)}B <= bound {bound}B")
    finally:
        d.kill()


# ---------------------------------------------------------------------------


def run_server_faultsmoke(args) -> int:
    """The ``faultsmoke --server`` matrix (or ``--soak``)."""
    import tempfile

    if getattr(args, "soak", False):
        return run_server_soak(args)
    seed = args.seed
    scenarios: list[dict] = []

    def run_scenario(name: str, fn, *fnargs) -> None:
        try:
            detail = fn(*fnargs)
            ok = True
        except Exception as exc:  # a scenario must never escape
            detail = f"{type(exc).__name__}: {exc}"
            ok = False
        scenarios.append({"scenario": name, "ok": ok, "detail": detail})
        print(f"  {'ok  ' if ok else 'FAIL'} {name}: {detail}")

    with tempfile.TemporaryDirectory(prefix="srv-faultsmoke-") as root:
        print(f"server fault-injection smoke (seed {seed})")
        for workload, nprocs, scale in MATRIX:
            run_scenario(
                f"kill-recover-{workload}", scenario_kill_recover,
                root, seed, workload, nprocs, scale,
            )
        run_scenario(
            "double-kill-fig11", scenario_kill_recover,
            root, seed, *MATRIX[0], 2,
        )
        run_scenario("client-disconnect", scenario_client_disconnect,
                     root, seed)
        run_scenario("torn-frame", scenario_torn_frame, root, seed)
        run_scenario("stalled-rank-revival", scenario_stalled_rank,
                     root, seed)
        run_scenario("drain-resume", scenario_drain_resume, root, seed)
        run_scenario("backpressure", scenario_backpressure, root, seed)
    passed = all(s["ok"] for s in scenarios)
    report = {
        "mode": "server",
        "seed": seed,
        "passed": passed,
        "scenarios": scenarios,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report -> {args.out}")
    print("PASSED" if passed else "FAILED")
    return 0 if passed else 1


def run_server_soak(args) -> int:
    """CI endurance mode: concurrent client waves against one daemon,
    with seeded kills and client drops, verifying every finished job."""
    import tempfile

    duration = args.duration
    nclients = args.clients
    seed = args.seed
    rng = FaultPlan(seed=seed).rng("server-soak")
    jobs_verified = 0
    failures: list[str] = []
    kills_done = 0
    waves = 0
    with tempfile.TemporaryDirectory(prefix="srv-soak-") as root:
        state, out = _dirs(root, "soak")
        metrics = os.path.join(root, "soak", "server-metrics.json")
        d = DaemonProc(state, out, metrics_json=metrics)
        port = d.start()
        t0 = time.monotonic()
        kill_times = sorted(
            rng.uniform(0.2, 0.8) * duration for _ in range(2)
        )
        stop = threading.Event()

        def _chaos() -> None:
            nonlocal kills_done, d
            for at in kill_times:
                delay = t0 + at - time.monotonic()
                if delay > 0 and stop.wait(delay):
                    return
                if stop.is_set():
                    return
                d.kill()
                kills_done += 1
                d = DaemonProc(state, out, port=port, metrics_json=metrics)
                try:
                    d.start()
                except RuntimeError as exc:
                    failures.append(f"restart failed: {exc}")
                    return

        chaos = threading.Thread(target=_chaos, daemon=True)
        chaos.start()
        specs = [
            ("fig11", 8, 0.2), ("cg", 8, 0.2), ("farm", 7, 0.2),
        ]
        while time.monotonic() - t0 < duration:
            wave = waves
            waves += 1
            pending = []
            for c in range(nclients):
                workload, nprocs, scale = specs[c % len(specs)]
                job = f"soak-w{wave}-c{c}"
                overrides = {}
                if wave == 0 and c < 2:  # the two seeded client drops
                    overrides = {0: {
                        "drop_after_batches": rng.randrange(1, 4)
                    }}
                thread, result = _submit_async(
                    port, job=job, workload=workload, nprocs=nprocs,
                    scale=scale, batch_events=_BATCH_EVENTS,
                    max_attempts=120, client_overrides=overrides,
                )
                pending.append((job, workload, nprocs, scale,
                                thread, result))
            for job, workload, nprocs, scale, thread, result in pending:
                try:
                    _finish(thread, result)
                    _check_identity(out, job, workload, nprocs, scale)
                    jobs_verified += 1
                except AssertionError as exc:
                    failures.append(f"{job}: {exc}")
        stop.set()
        chaos.join(timeout=10)
        rc = d.terminate()
        if rc != 0:
            failures.append(f"final drain exited rc={rc}")
        try:
            server_metrics = json.load(open(metrics))
        except (OSError, json.JSONDecodeError) as exc:
            server_metrics = None
            failures.append(f"no server metrics artifact: {exc}")
    passed = not failures and jobs_verified > 0 and kills_done == 2
    report = {
        "mode": "server-soak",
        "seed": seed,
        "duration": duration,
        "clients": nclients,
        "waves": waves,
        "jobs_verified": jobs_verified,
        "daemon_kills": kills_done,
        "failures": failures,
        "passed": passed,
        "server_metrics": server_metrics,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report -> {args.out}")
    print(f"soak: {waves} wave(s), {jobs_verified} job(s) verified "
          f"byte-identical, {kills_done} daemon kill(s), "
          f"{len(failures)} failure(s)")
    for f in failures[:10]:
        print(f"  FAIL {f}")
    print("PASSED" if passed else "FAILED")
    return 0 if passed else 1
