"""Wire protocol of the ingest server: CRC-framed, length-prefixed.

Every message on the socket is one frame::

    kind u8 | length u32 | payload[length] | crc32 u32

with the CRC taken over ``kind | length | payload`` — the same
"checksum everything, fail loudly" discipline as the v5/v6 trace
container (docs/INTERNALS.md §7).  A torn frame (connection cut
mid-payload) is indistinguishable from a dead peer and surfaces as
:class:`ConnectionError`; a frame whose CRC does not match raises
:class:`ProtocolError` — the server answers with an ERROR frame and
drops the connection, and the client reconnects and resumes from the
server's acked sequence number.

Control frames carry UTF-8 JSON payloads (HELLO, HELLO_ACK, EOS_ACK,
STATUS, ERROR, THROTTLE); the hot BATCH frame is binary: a ``u64``
sequence number followed by a CYPK packed-stream blob
(:mod:`repro.core.packed`).  Sequence numbers start at 1 and are the
exactly-once contract: the server acks each batch it ingested, dedups
anything at or below its acked counter, and rejects gaps — a client
that reconnects asks HELLO, learns the acked counter, and re-sends
from there.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib

PROTO_VERSION = 1

# Client -> server.
HELLO = 1
BATCH = 2
EOS = 3
HEARTBEAT = 4
STATUS = 5

# Server -> client.
HELLO_ACK = 129
BATCH_ACK = 130
THROTTLE = 131
RESUME = 132
EOS_ACK = 133
STATUS_ACK = 134
ERROR = 135

KIND_NAMES = {
    HELLO: "HELLO", BATCH: "BATCH", EOS: "EOS", HEARTBEAT: "HEARTBEAT",
    STATUS: "STATUS", HELLO_ACK: "HELLO_ACK", BATCH_ACK: "BATCH_ACK",
    THROTTLE: "THROTTLE", RESUME: "RESUME", EOS_ACK: "EOS_ACK",
    STATUS_ACK: "STATUS_ACK", ERROR: "ERROR",
}

_HDR = struct.Struct("<BI")
_CRC = struct.Struct("<I")
_SEQ = struct.Struct("<Q")

#: Hard ceiling on a single frame's payload — a corrupted length field
#: must never make a reader allocate gigabytes.
MAX_FRAME_BYTES = 64 << 20


class ProtocolError(Exception):
    """Malformed frame: bad CRC, oversized length, or unexpected kind."""


def encode_frame(kind: int, payload: bytes = b"") -> bytes:
    """One wire frame for ``payload`` (CRC over header + payload)."""
    head = _HDR.pack(kind, len(payload))
    return head + payload + _CRC.pack(zlib.crc32(head + payload) & 0xFFFFFFFF)


def control_frame(kind: int, **fields) -> bytes:
    """A JSON control frame."""
    return encode_frame(kind, json.dumps(fields, sort_keys=True).encode())


def batch_frame(seq: int, blob: bytes) -> bytes:
    """The hot frame: ``seq`` + CYPK blob."""
    return encode_frame(BATCH, _SEQ.pack(seq) + blob)


def decode_control(payload: bytes) -> dict:
    try:
        fields = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad control payload: {exc}") from exc
    if not isinstance(fields, dict):
        raise ProtocolError("control payload is not a JSON object")
    return fields


def decode_batch(payload: bytes) -> tuple[int, bytes]:
    if len(payload) < _SEQ.size:
        raise ProtocolError("batch frame shorter than its sequence number")
    return _SEQ.unpack_from(payload)[0], payload[_SEQ.size:]


def check_frame(kind: int, length: int, payload: bytes, crc: int) -> None:
    """Validate a frame read piecewise off a stream."""
    head = _HDR.pack(kind, length)
    if zlib.crc32(head + payload) & 0xFFFFFFFF != crc:
        raise ProtocolError(
            f"frame checksum mismatch on {KIND_NAMES.get(kind, kind)}"
        )


def frame_lengths(header: bytes) -> tuple[int, int]:
    """Parse a frame header; returns ``(kind, payload_length)``."""
    kind, length = _HDR.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the protocol cap")
    return kind, length


HEADER_SIZE = _HDR.size
CRC_SIZE = _CRC.size


# ---------------------------------------------------------------------------
# Synchronous (socket) reader — the client side; the server uses asyncio
# stream primitives with the same check_frame/decode helpers.


def read_frame(sock: socket.socket) -> tuple[int, bytes]:
    """Read one validated frame; raises :class:`ConnectionError` on EOF
    or a torn frame, :class:`ProtocolError` on corruption."""
    header = _recv_exact(sock, HEADER_SIZE)
    kind, length = frame_lengths(header)
    payload = _recv_exact(sock, length)
    (crc,) = _CRC.unpack(_recv_exact(sock, CRC_SIZE))
    check_frame(kind, length, payload, crc)
    return kind, payload


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({len(buf)}/{n} bytes)"
            )
        buf += chunk
    return bytes(buf)
