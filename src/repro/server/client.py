"""The retry/reconnect/resume client behind ``repro submit``.

A :class:`TraceClient` streams one rank's captured opcode stream to the
daemon as CYPK batch blobs.  The contract is exactly-once by sequence
number: the client keeps every batch until the server acks it durable
enough (the ack means *ingested*; durability follows at the next server
checkpoint), and on any connection loss it reconnects with bounded
exponential backoff, learns the server's acked sequence from HELLO_ACK,
and re-sends from there — the server dedups anything it already has,
so a kill-and-restart of either side never duplicates or drops a batch.

Flow control: up to ``window`` batches may be in flight unacked; a
THROTTLE frame pauses sending until the matching RESUME (acks keep
arriving while paused, since the server drains its buffered bytes to
the checkpoint log).
"""

from __future__ import annotations

import socket
import threading
import time

from repro.core import packed
from repro.driver import run_compiled
from repro.mpisim.pmpi import StreamCaptureSink
from repro.static.instrument import compile_minimpi
from repro.workloads import get as get_workload

from . import protocol as proto


def split_batches(stream: list, batch_events: int) -> list[bytes]:
    """Slice one rank's opcode-tuple stream into CYPK blobs of at most
    ``batch_events`` tuples each (markers count — the slicing unit is
    the callback tuple, so any split point is valid)."""
    if batch_events <= 0:
        raise ValueError("batch_events must be positive")
    blobs: list[bytes] = []
    for start in range(0, len(stream), batch_events):
        chunk = stream[start:start + batch_events]
        blobs.append(packed.encode_stream(chunk).to_bytes())
    if not blobs:
        blobs.append(packed.encode_stream([]).to_bytes())
    return blobs


class ClientError(Exception):
    """The client exhausted its reconnect budget or was rejected."""


class _JobFinalized(Exception):
    """HELLO rejected because the job already finalized — everything
    this rank acked is in the output; the send is complete."""


class TraceClient:
    """Stream one ``(job, rank)``'s batches with resume-on-reconnect."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        job: str,
        rank: int,
        nranks: int,
        workload: str,
        scale: float = 1.0,
        window: int = 32,
        max_attempts: int = 30,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        connect_timeout: float = 5.0,
        io_timeout: float = 60.0,
        drop_after_batches: int | None = None,
        torn_frame: bool = False,
        batch_delay: float = 0.0,
        stall_seconds: float | None = None,
    ) -> None:
        self.host, self.port = host, port
        self.job, self.rank, self.nranks = job, rank, nranks
        self.workload, self.scale = workload, scale
        self.window = window
        self.max_attempts = max_attempts
        self.backoff, self.backoff_cap = backoff, backoff_cap
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        #: Fault injection: hard-close the socket after sending this
        #: many batches on the *first* connection (client-disconnect
        #: scenario); ``torn_frame`` sends half a frame first (torn-frame
        #: scenario).  Both then reconnect and resume normally.
        self.drop_after_batches = drop_after_batches
        self.torn_frame = torn_frame
        #: Fault injection: sleep after each batch send (trickle sender
        #: for the stalled-rank scenario's *live* peer) / sleep once
        #: after the injected disconnect before reconnecting (the stall
        #: itself — long enough for the server's idle reaper to fire).
        self.batch_delay = batch_delay
        self.stall_seconds = stall_seconds
        self._stalled = False
        self.acked_seq = 0
        self.reconnects = 0
        self.throttles_seen = 0
        #: Times a reconnect found the server acked *less* than we had
        #: seen acked — expected after a hard crash (acked-not-durable
        #: batches are re-sent), must be zero across a graceful drain.
        self.acked_regressions = 0

    # -- one connection attempt -----------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.io_timeout)
        return sock

    def _hello(self, sock: socket.socket) -> int:
        sock.sendall(proto.control_frame(
            proto.HELLO,
            job=self.job, rank=self.rank, nranks=self.nranks,
            workload=self.workload, scale=self.scale,
        ))
        kind, payload = proto.read_frame(sock)
        fields = proto.decode_control(payload)
        if kind == proto.ERROR:
            if fields.get("code") == "finalized":
                raise _JobFinalized(fields.get("error", ""))
            raise ClientError(f"server rejected HELLO: {fields.get('error')}")
        if kind != proto.HELLO_ACK:
            raise proto.ProtocolError(
                f"expected HELLO_ACK, got {proto.KIND_NAMES.get(kind, kind)}"
            )
        return int(fields["acked_seq"])

    def _stream_once(self, sock: socket.socket, blobs: list[bytes],
                     first_connection: bool) -> None:
        """Send everything past the server's acked seq; raises
        ConnectionError/ProtocolError on trouble (caller reconnects)."""
        acked = self._hello(sock)
        if acked > len(blobs):
            raise ClientError(
                f"server acked {acked} batches but only {len(blobs)} exist"
            )
        if acked < self.acked_seq:
            self.acked_regressions += 1
        self.acked_seq = acked
        next_seq = acked + 1
        throttled = False
        sent_on_conn = 0
        while self.acked_seq < len(blobs):
            # Fill the window, then block on one server frame.
            while (
                not throttled
                and next_seq <= len(blobs)
                and next_seq - self.acked_seq <= self.window
            ):
                if first_connection and self.torn_frame and \
                        sent_on_conn == (self.drop_after_batches or 0):
                    frame = proto.batch_frame(next_seq, blobs[next_seq - 1])
                    sock.sendall(frame[:max(1, len(frame) // 2)])
                    sock.close()
                    raise ConnectionError("injected torn frame")
                sock.sendall(proto.batch_frame(next_seq, blobs[next_seq - 1]))
                next_seq += 1
                sent_on_conn += 1
                if self.batch_delay:
                    time.sleep(self.batch_delay)
                if first_connection and not self.torn_frame and \
                        self.drop_after_batches is not None and \
                        sent_on_conn >= self.drop_after_batches:
                    sock.close()
                    raise ConnectionError("injected disconnect")
            kind, payload = proto.read_frame(sock)
            if kind == proto.BATCH_ACK:
                fields = proto.decode_control(payload)
                self.acked_seq = max(self.acked_seq, int(fields["acked_seq"]))
            elif kind == proto.THROTTLE:
                throttled = True
                self.throttles_seen += 1
            elif kind == proto.RESUME:
                throttled = False
            elif kind == proto.ERROR:
                fields = proto.decode_control(payload)
                raise ClientError(f"server error: {fields.get('error')}")
            # other kinds (none today) are ignored
        # Everything acked: declare the end of stream.
        sock.sendall(proto.control_frame(proto.EOS, total=len(blobs)))
        while True:
            kind, payload = proto.read_frame(sock)
            if kind == proto.EOS_ACK:
                fields = proto.decode_control(payload)
                if not fields.get("final"):
                    raise ClientError("EOS not final despite full ack")
                return
            if kind == proto.ERROR:
                fields = proto.decode_control(payload)
                raise ClientError(f"server error: {fields.get('error')}")
            # THROTTLE/RESUME may still arrive; ignore

    # -- public API ------------------------------------------------------

    def send(self, blobs: list[bytes]) -> int:
        """Deliver all ``blobs`` exactly-once; returns the reconnect
        count.  Raises :class:`ClientError` after ``max_attempts``
        failed connections (backoff-capped) or a server rejection."""
        delay = self.backoff
        first = True
        for attempt in range(self.max_attempts):
            sock = None
            try:
                sock = self._connect()
                self._stream_once(sock, blobs, first)
                return self.reconnects
            except _JobFinalized:
                return self.reconnects
            except ClientError:
                raise
            except (ConnectionError, proto.ProtocolError, OSError,
                    socket.timeout):
                self.reconnects += 1
                first = False
                if self.stall_seconds is not None and not self._stalled:
                    self._stalled = True
                    time.sleep(self.stall_seconds)
                else:
                    time.sleep(delay)
                    delay = min(delay * 2, self.backoff_cap)
            finally:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
        raise ClientError(
            f"gave up after {self.max_attempts} attempts "
            f"(job={self.job} rank={self.rank}, acked={self.acked_seq})"
        )

    def status(self) -> dict:
        """One-shot STATUS query (no session needed)."""
        with self._connect() as sock:
            sock.sendall(proto.control_frame(proto.STATUS))
            kind, payload = proto.read_frame(sock)
            if kind != proto.STATUS_ACK:
                raise proto.ProtocolError(
                    f"expected STATUS_ACK, got "
                    f"{proto.KIND_NAMES.get(kind, kind)}"
                )
            return proto.decode_control(payload)


def capture_workload(workload: str, nprocs: int, scale: float = 1.0
                     ) -> dict[int, list]:
    """Run a registered workload under the capture sink (no local
    compression) — the per-rank opcode streams a client submits."""
    w = get_workload(workload)
    w.check_procs(nprocs)
    compiled = compile_minimpi(w.source)
    capture = StreamCaptureSink()
    run_compiled(
        compiled, nprocs, defines=w.defines(nprocs, scale), tracer=capture
    )
    return capture.streams


def submit_workload(
    host: str,
    port: int,
    *,
    job: str,
    workload: str,
    nprocs: int,
    scale: float = 1.0,
    batch_events: int = 512,
    window: int = 32,
    max_attempts: int = 30,
    backoff: float = 0.05,
    parallel: bool = True,
    client_overrides: dict[int, dict] | None = None,
) -> dict:
    """Capture ``workload`` locally and stream every rank to the daemon;
    returns a summary dict.  ``client_overrides`` maps rank -> extra
    :class:`TraceClient` kwargs (the fault-injection knobs); the special
    key ``batch_events`` overrides that rank's batch size instead."""
    overrides = {r: dict(kw) for r, kw in (client_overrides or {}).items()}
    streams = capture_workload(workload, nprocs, scale)
    per_rank_blobs = {
        rank: split_batches(
            stream,
            overrides.get(rank, {}).pop("batch_events", batch_events),
        )
        for rank, stream in streams.items()
    }
    clients: dict[int, TraceClient] = {}
    errors: list[BaseException] = []

    def _send(rank: int) -> None:
        kwargs = dict(
            job=job, rank=rank, nranks=nprocs, workload=workload,
            scale=scale, window=window, max_attempts=max_attempts,
            backoff=backoff,
        )
        kwargs.update(overrides.get(rank, {}))
        client = TraceClient(host, port, **kwargs)
        clients[rank] = client
        try:
            client.send(per_rank_blobs[rank])
        except BaseException as exc:  # surfaced to the caller below
            errors.append(exc)

    ranks = sorted(per_rank_blobs)
    if parallel:
        threads = [
            threading.Thread(target=_send, args=(r,), daemon=True)
            for r in ranks
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    else:
        for r in ranks:
            _send(r)
    if errors:
        raise errors[0]
    return {
        "job": job,
        "workload": workload,
        "nprocs": nprocs,
        "batches": sum(len(b) for b in per_rank_blobs.values()),
        "bytes": sum(len(x) for b in per_rank_blobs.values() for x in b),
        "max_batch_bytes": max(
            (len(x) for b in per_rank_blobs.values() for x in b), default=0
        ),
        "reconnects": sum(c.reconnects for c in clients.values()),
        "throttles_seen": sum(c.throttles_seen for c in clients.values()),
        "acked_regressions": sum(
            c.acked_regressions for c in clients.values()
        ),
    }
