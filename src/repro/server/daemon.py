"""The asyncio ingest daemon behind ``repro serve``.

One process, one event loop, many concurrent clients.  Each connection
speaks the framed protocol (:mod:`repro.server.protocol`) on behalf of
one ``(job, rank)``; the daemon keeps a live
:class:`~repro.core.intra.IntraProcessCompressor` per job and ingests
every acked batch immediately, so the invariant at all times — live or
after crash recovery — is *compressor state equals batches 1..acked*.

Robustness machinery (docs/INTERNALS.md §14):

* **Backpressure** — acked-but-not-durable batch bytes are bounded by a
  high/low watermark pair.  Crossing the high watermark broadcasts a
  THROTTLE frame and parks every reader on a gate (the daemon stops
  reading sockets — kernel TCP flow control does the rest); the
  checkpoint loop spills the buffered batches to the session logs,
  and dropping under the low watermark broadcasts RESUME and reopens
  the gate.  A single firehose session is additionally spilled inline
  when it alone crosses the per-session watermark.  No queue anywhere
  is unbounded.
* **Idle quarantine** — a rank silent past the idle timeout is
  quarantined through PR 4's lenient path (stage ``"server"``); the
  job can finalize without it.  A quarantined rank that reconnects
  before its job finalizes is revived and resumes exactly where its
  durable log ends.
* **Checkpoints** — every dirty session is checkpointed on a short
  period (append+fsync batch log, atomic meta with a generation
  counter); crash recovery salvages the newest valid checkpoint per
  session, re-ingests the durable batches, and tells each returning
  client its acked sequence so the stream resumes exactly-once.
* **Drain** — SIGTERM stops the listener, checkpoints everything,
  finalizes complete jobs (merge + atomic trace save), and exits;
  acked batches are never lost.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import struct
import threading
import time
from dataclasses import dataclass, field

from repro import obs
from repro.core import packed, serialize
from repro.core.errors import StreamMismatchError
from repro.core.inter import merge_all
from repro.core.intra import CypressConfig, IntraProcessCompressor
from repro.core.quarantine import QuarantinedRank, QuarantineReport
from repro.static.instrument import compile_minimpi
from repro.workloads import get as get_workload

from . import protocol as proto
from .session import SessionState, SessionStore, check_job_id

_CRC = struct.Struct("<I")


@dataclass
class ServerConfig:
    """Tunables of the ingest daemon."""

    state_dir: str
    out_dir: str
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is reported back
    #: Global watermarks on acked-but-not-durable batch bytes.
    high_watermark: int = 8 << 20
    low_watermark: int = 2 << 20
    #: One session alone crossing this is spilled inline.
    session_watermark: int = 2 << 20
    checkpoint_interval: float = 0.25
    idle_timeout: float = 30.0
    #: Fault injection (faultsmoke --server): hard-exit the process
    #: after the Nth ingested batch / Nth checkpoint — simulates a
    #: crash at a seeded point, bypassing every cleanup path.
    kill_after_batches: int | None = None
    kill_after_checkpoints: int | None = None
    metrics_json: str | None = None
    #: Per-job compressor memory budget (bytes).  Arms the bounded
    #: streaming mode: finalized ranks fold incrementally into a partial
    #: merge, cold ranks spill under ``state_dir/spill/<job>/``, and the
    #: ingest watermark shrinks by any unevictable overage so TCP
    #: backpressure slows clients instead of the daemon ballooning.
    memory_budget: int | None = None


@dataclass
class JobState:
    """One job: its compressor plus every rank's session."""

    job: str
    workload: str
    scale: float
    nranks: int
    compressor: IntraProcessCompressor
    sessions: dict[int, SessionState] = field(default_factory=dict)
    finalized: bool = False

    def complete(self) -> bool:
        """Every rank present and either finalized or quarantined."""
        if len(self.sessions) < self.nranks:
            return False
        return all(
            s.finalized or s.quarantined is not None
            for s in self.sessions.values()
        )


def _build_compressor(
    workload: str,
    nranks: int | None = None,
    server_config: ServerConfig | None = None,
    jobid: str | None = None,
) -> IntraProcessCompressor:
    w = get_workload(workload)
    compiled = compile_minimpi(w.source)
    config = None
    if server_config is not None and server_config.memory_budget is not None:
        config = CypressConfig(
            memory_budget_bytes=server_config.memory_budget,
            spill_dir=os.path.join(
                server_config.state_dir, "spill", jobid or "job"
            ),
        )
    comp = IntraProcessCompressor(compiled.cst, config=config)
    if config is not None and nranks is not None:
        # The fold domain is every rank of the job — quarantined ranks
        # simply never seal; finalize folds around them explicitly.
        comp.enable_incremental_fold(
            nranks=nranks, domain=range(nranks)
        )
    return comp


class CypressTraceServer:
    """The daemon.  Construct, optionally :meth:`recover`, then
    :meth:`serve` (or use :class:`ServerThread` from tests)."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.store = SessionStore(config.state_dir)
        os.makedirs(config.out_dir, exist_ok=True)
        self.jobs: dict[str, JobState] = {}
        self.metrics: dict[str, float] = {}
        self._buffered = 0
        self._throttled = False
        self._gate = asyncio.Event()
        self._gate.set()
        self._drain_event = asyncio.Event()
        self._writers: set[asyncio.StreamWriter] = set()
        self._server: asyncio.base_events.Server | None = None
        self._batches_ingested = 0
        self._checkpoints_done = 0
        self.port: int | None = None

    # -- metrics ---------------------------------------------------------

    def _count(self, name: str, n: float = 1) -> None:
        self.metrics[name] = self.metrics.get(name, 0) + n
        reg = obs.active()
        if reg is not None:
            reg.counter_add(name, n)

    def _gauge(self, name: str, value: float) -> None:
        self.metrics[name] = value
        reg = obs.active()
        if reg is not None:
            reg.gauge_set(name, value)

    def _gauge_max(self, name: str, value: float) -> None:
        if value > self.metrics.get(name, 0):
            self.metrics[name] = value
        reg = obs.active()
        if reg is not None:
            reg.gauge_max(name, value)

    def metrics_snapshot(self) -> dict:
        snap = dict(self.metrics)
        snap["server.sessions"] = sum(
            len(j.sessions) for j in self.jobs.values()
        )
        snap["server.jobs"] = len(self.jobs)
        snap["server.buffered_bytes"] = self._buffered
        budget: dict[str, int] = {}
        for job in self.jobs.values():
            bc = job.compressor.budget_counters
            if bc is not None:
                for key, value in bc.as_metrics().items():
                    budget[key] = budget.get(key, 0) + value
        snap.update(budget)
        return snap

    def _effective_high_watermark(self) -> int:
        """The high watermark, shrunk by any compressor live-bytes
        overage the budget enforcer could not evict (pending wildcard
        receives pin their ranks in memory).  Never below the low
        watermark: gating ingest entirely on unevictable state would
        deadlock the very batches that resolve the wildcards."""
        cfg = self.config
        high = cfg.high_watermark
        if cfg.memory_budget is None:
            return high
        over = 0
        for job in self.jobs.values():
            bc = job.compressor.budget_counters
            if bc is not None:
                over += max(0, bc.live_bytes - cfg.memory_budget)
        if over:
            high = max(cfg.low_watermark, high - over)
        return high

    # -- recovery --------------------------------------------------------

    def recover(self) -> int:
        """Rebuild every session from the newest valid checkpoint and
        re-ingest its durable batches; returns the session count."""
        recovered = 0
        for rec in self.store.load_all():
            session = rec.to_state()
            if not session.workload:
                continue  # pre-identity checkpoint; client will restart
            job = self._job_for(session)
            job.sessions[session.rank] = session
            for _seq, blob in rec.batches:
                self._ingest_blob(job, session, blob)
            if session.finalized and session.quarantined is None:
                # Recovered ranks whose streams already ended fold into
                # the partial merge exactly as their live EOS did.
                job.compressor.seal_rank(session.rank)
            recovered += 1
            self._count("server.recoveries")
        for job in self.jobs.values():
            self._maybe_finalize_job(job)
        return recovered

    def _job_for(self, session: SessionState) -> JobState:
        job = self.jobs.get(session.job)
        if job is None:
            job = JobState(
                job=session.job,
                workload=session.workload,
                scale=session.scale,
                nranks=session.nranks,
                compressor=_build_compressor(
                    session.workload, nranks=session.nranks,
                    server_config=self.config, jobid=session.job,
                ),
            )
            self.jobs[session.job] = job
        return job

    # -- ingest ----------------------------------------------------------

    def _ingest_blob(self, job: JobState, session: SessionState,
                     blob: bytes) -> None:
        """Feed one acked batch into the job compressor.  A CST/stream
        mismatch quarantines the rank (lenient path); later batches for
        a mismatch-quarantined rank are acked but not ingested."""
        if session.quarantined is not None and \
                session.quarantined.stage == "intra":
            session.quarantined.events += packed.event_count(blob)
            return
        try:
            job.compressor.ingest_stream(
                session.rank, packed.decode_stream(blob)
            )
        except StreamMismatchError as exc:
            # A mismatch quarantine is permanent (never revived), so the
            # rank also leaves the fold domain — this unstalls the
            # ascending fold barrier for the ranks behind it.
            job.compressor.discard_rank(session.rank)
            session.quarantined = QuarantinedRank(
                rank=session.rank, stage="intra", error=str(exc),
                events=packed.event_count(blob),
            )
            session.mark_meta_dirty()
            self._count("server.quarantines")

    @staticmethod
    def _validate_blob(blob: bytes) -> None:
        """Reject a non-CYPK batch payload before it can be acked (and
        thus before it can poison the durable batch log)."""
        if not packed.is_packed(blob):
            raise proto.ProtocolError("batch payload is not a CYPK stream")
        try:
            packed.decode_stream(blob)
        except (*packed.ENCODE_ERRORS, ValueError, IndexError) as exc:
            raise proto.ProtocolError(f"undecodable batch payload: {exc}")

    def _maybe_resume(self) -> None:
        if self._throttled and self._buffered <= self.config.low_watermark:
            self._throttled = False
            self._gate.set()
            self._broadcast(proto.control_frame(
                proto.RESUME, buffered=self._buffered,
            ))

    def _broadcast(self, frame: bytes) -> None:
        for writer in list(self._writers):
            try:
                writer.write(frame)
            except Exception:
                pass

    # -- checkpoints -----------------------------------------------------

    def _checkpoint_session(self, session: SessionState) -> None:
        spilled = self.store.checkpoint(session)
        self._buffered -= spilled
        self._gauge("server.buffered_bytes", self._buffered)
        self._count("server.checkpoints")
        self._checkpoints_done += 1
        kac = self.config.kill_after_checkpoints
        if kac is not None and self._checkpoints_done >= kac:
            os._exit(137)
        self._maybe_resume()

    def checkpoint_all(self) -> int:
        done = 0
        for job in self.jobs.values():
            for session in job.sessions.values():
                if session.dirty:
                    self._checkpoint_session(session)
                    done += 1
        return done

    async def _checkpoint_loop(self) -> None:
        while not self._drain_event.is_set():
            await asyncio.sleep(self.config.checkpoint_interval)
            self.checkpoint_all()

    # -- idle reaper -----------------------------------------------------

    def _reap_idle(self) -> None:
        now = time.monotonic()
        timeout = self.config.idle_timeout
        for job in self.jobs.values():
            if job.finalized:
                continue
            stalled_job = True
            for session in job.sessions.values():
                idle = now - session.last_activity
                if session.finalized or session.quarantined is not None:
                    continue
                if idle <= timeout:
                    stalled_job = False
                    continue
                session.quarantined = QuarantinedRank(
                    rank=session.rank, stage="server",
                    error=f"idle timeout after {timeout:g}s",
                    events=0,
                )
                session.mark_meta_dirty()
                self._count("server.quarantines")
                self._count("server.idle_quarantines")
            # Ranks that never connected: once every present rank is
            # settled and the job has been idle past the timeout, the
            # missing ranks are quarantined so the job can finalize.
            if job.sessions and stalled_job and \
                    len(job.sessions) < job.nranks:
                last = max(s.last_activity for s in job.sessions.values())
                if now - last > timeout:
                    for rank in range(job.nranks):
                        if rank in job.sessions:
                            continue
                        session = SessionState(
                            job=job.job, rank=rank, nranks=job.nranks,
                            workload=job.workload, scale=job.scale,
                        )
                        session.quarantined = QuarantinedRank(
                            rank=rank, stage="server",
                            error="rank never connected before idle "
                                  f"timeout ({timeout:g}s)",
                            events=0,
                        )
                        session.mark_meta_dirty()
                        job.sessions[rank] = session
                        self._count("server.quarantines")
                        self._count("server.idle_quarantines")
            self._maybe_finalize_job(job)

    async def _reaper_loop(self) -> None:
        period = max(0.05, self.config.idle_timeout / 4)
        while not self._drain_event.is_set():
            await asyncio.sleep(period)
            self._reap_idle()

    # -- finalize --------------------------------------------------------

    def out_path(self, job: str) -> str:
        return os.path.join(self.config.out_dir, f"{job}.cyp")

    def _maybe_finalize_job(self, job: JobState) -> None:
        if job.finalized or not job.complete():
            return
        healthy = [
            r for r in range(job.nranks)
            if job.sessions[r].quarantined is None
        ]
        if not healthy:
            return  # nothing mergeable; sessions stay for inspection
        for session in job.sessions.values():
            if session.dirty:
                self._checkpoint_session(session)
        if self.config.memory_budget is not None:
            # Budgeted path: finish the incremental fold over the healthy
            # survivors — byte-identical to the merge_all below.
            merged = job.compressor.merged(
                nranks=job.nranks, ranks=healthy
            )
            job.compressor.close_spill()
        else:
            merged = merge_all(
                [job.compressor.ctt(r) for r in healthy],
                schedule="tree", nranks=job.nranks,
            )
        serialize.save(merged, self.out_path(job.job))
        report = QuarantineReport()
        for session in job.sessions.values():
            if session.quarantined is not None:
                report.add(session.quarantined)
        if report:
            qpath = os.path.join(
                self.config.out_dir, f"{job.job}.quarantine.json"
            )
            tmp = qpath + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(report.to_json())
            os.replace(tmp, qpath)
        job.finalized = True
        self._count("server.jobs_finalized")

    # -- connection handling ---------------------------------------------

    async def _read_frame(self, reader: asyncio.StreamReader
                          ) -> tuple[int, bytes]:
        header = await reader.readexactly(proto.HEADER_SIZE)
        kind, length = proto.frame_lengths(header)
        payload = await reader.readexactly(length)
        (crc,) = _CRC.unpack(await reader.readexactly(proto.CRC_SIZE))
        proto.check_frame(kind, length, payload, crc)
        return kind, payload

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        session: SessionState | None = None
        job: JobState | None = None
        try:
            while not self._drain_event.is_set():
                await self._gate.wait()
                kind, payload = await self._read_frame(reader)
                if kind == proto.HELLO:
                    session, job = self._on_hello(
                        proto.decode_control(payload), writer
                    )
                elif session is None or job is None:
                    writer.write(proto.control_frame(
                        proto.ERROR, error="HELLO required first"
                    ))
                    if kind in (proto.HEARTBEAT, proto.STATUS):
                        # A probe before HELLO is harmless — answer the
                        # ERROR and keep the reader task alive so the
                        # client can still identify itself.
                        await writer.drain()
                        continue
                    break  # data frames without identity are fatal
                elif kind == proto.BATCH:
                    self._on_batch(job, session, payload, writer)
                elif kind == proto.EOS:
                    self._on_eos(
                        job, session, proto.decode_control(payload), writer
                    )
                elif kind == proto.HEARTBEAT:
                    session.touch()
                elif kind == proto.STATUS:
                    writer.write(proto.control_frame(
                        proto.STATUS_ACK, **{
                            k: v for k, v in
                            self.metrics_snapshot().items()
                        }
                    ))
                else:
                    writer.write(proto.control_frame(
                        proto.ERROR,
                        error=f"unexpected frame kind {kind}",
                    ))
                    break
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # peer gone / torn frame: session state is preserved
        except proto.ProtocolError as exc:
            self._count("server.protocol_errors")
            try:
                writer.write(proto.control_frame(
                    proto.ERROR, error=str(exc)
                ))
                await writer.drain()
            except Exception:
                pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    def _on_hello(self, fields: dict, writer: asyncio.StreamWriter
                  ) -> tuple[SessionState, JobState]:
        jobid = check_job_id(fields["job"])
        rank = int(fields["rank"])
        nranks = int(fields["nranks"])
        workload = str(fields["workload"])
        scale = float(fields.get("scale", 1.0))
        get_workload(workload)  # validate before creating state
        jobstate = self.jobs.get(jobid)
        if jobstate is not None and jobstate.finalized:
            writer.write(proto.control_frame(
                proto.ERROR, code="finalized",
                error=f"job {jobid!r} already finalized",
            ))
            raise ConnectionError("late HELLO on finalized job")
        session = None if jobstate is None else jobstate.sessions.get(rank)
        if session is None:
            session = SessionState(
                job=jobid, rank=rank, nranks=nranks,
                workload=workload, scale=scale,
            )
            jobstate = self._job_for(session)
            jobstate.sessions[rank] = session
        session.touch()
        revived = False
        if session.quarantined is not None and \
                session.quarantined.stage == "server":
            session.quarantined = None
            session.mark_meta_dirty()
            revived = True
            self._count("server.revivals")
        writer.write(proto.control_frame(
            proto.HELLO_ACK,
            proto_version=proto.PROTO_VERSION,
            acked_seq=session.acked_seq,
            throttled=self._throttled,
            revived=revived,
        ))
        self._count("server.hellos")
        return session, jobstate

    def _on_batch(self, job: JobState, session: SessionState,
                  payload: bytes, writer: asyncio.StreamWriter) -> None:
        seq, blob = proto.decode_batch(payload)
        if session.quarantined is not None and \
                session.quarantined.stage == "server":
            # The stalled rank woke up on its existing connection.
            session.quarantined = None
            session.mark_meta_dirty()
            self._count("server.revivals")
        if seq > session.acked_seq:
            self._validate_blob(blob)
        try:
            fresh = session.accept(seq, blob)
        except ValueError as exc:  # sequence gap: client bug or replay skew
            raise proto.ProtocolError(str(exc))
        if fresh:
            self._ingest_blob(job, session, blob)
            self._buffered += len(blob)
            self._count("server.batches")
            self._batches_ingested += 1
            kab = self.config.kill_after_batches
            if kab is not None and self._batches_ingested >= kab:
                os._exit(137)  # seeded crash point, pre-ack
            self._gauge("server.buffered_bytes", self._buffered)
            self._gauge_max("server.buffered_bytes_max", self._buffered)
            cfg = self.config
            if session.buffered_bytes >= cfg.session_watermark:
                self._checkpoint_session(session)
            high = self._effective_high_watermark()
            if self._buffered >= high and not self._throttled:
                self._throttled = True
                self._gate.clear()
                self._count("server.throttles")
                self._broadcast(proto.control_frame(
                    proto.THROTTLE, buffered=self._buffered,
                    high=high,
                ))
        else:
            self._count("server.dup_batches")
        writer.write(proto.control_frame(
            proto.BATCH_ACK, seq=seq, acked_seq=session.acked_seq,
            dup=not fresh,
        ))

    def _on_eos(self, job: JobState, session: SessionState,
                fields: dict, writer: asyncio.StreamWriter) -> None:
        total = int(fields["total"])
        if total < session.acked_seq:
            writer.write(proto.control_frame(
                proto.ERROR,
                error=f"EOS total {total} below acked {session.acked_seq}",
            ))
            return
        session.eos_seq = total
        session.mark_meta_dirty()
        session.touch()
        final = session.finalized
        # Make the EOS (and with it every batch of this session) durable
        # *before* acking it: once the client sees ``final`` it is free
        # to exit, so a later crash must find the whole session on disk
        # and be able to re-finalize the job from recovery alone.
        self._checkpoint_session(session)
        writer.write(proto.control_frame(
            proto.EOS_ACK, acked_seq=session.acked_seq, final=final,
        ))
        if final:
            if session.quarantined is None:
                # Stream complete and durable: fold it into the partial
                # merge (no-op unless the budget armed the fold).
                job.compressor.seal_rank(session.rank)
            self._maybe_finalize_job(job)

    # -- lifecycle -------------------------------------------------------

    def request_drain(self) -> None:
        self._drain_event.set()
        self._gate.set()  # unpark readers so they observe the drain

    async def serve(self, *, install_signals: bool = True,
                    on_started=None) -> None:
        """Run until drained (SIGTERM / :meth:`request_drain`)."""
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_drain)
                except (NotImplementedError, RuntimeError):
                    pass
        if on_started is not None:
            on_started(self)
        tasks = [
            asyncio.ensure_future(self._checkpoint_loop()),
            asyncio.ensure_future(self._reaper_loop()),
        ]
        try:
            await self._drain_event.wait()
        finally:
            await self._drain()
            for t in tasks:
                t.cancel()
            for t in tasks:
                try:
                    await t
                except (asyncio.CancelledError, Exception):
                    pass

    async def _drain(self) -> None:
        """Stop accepting, flush + checkpoint + finalize, hang up."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Hang up silently: clients see a plain connection loss, retry
        # with backoff, and resume against the restarted daemon (an
        # ERROR frame here would read as a fatal rejection).
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        self.checkpoint_all()
        for job in self.jobs.values():
            self._maybe_finalize_job(job)
        self._count("server.drains")
        if self.config.metrics_json:
            snap = self.metrics_snapshot()
            tmp = self.config.metrics_json + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(snap, fh, indent=2, sort_keys=True)
            os.replace(tmp, self.config.metrics_json)


# ---------------------------------------------------------------------------
# In-process harness for tests: the daemon on a background thread.


class ServerThread:
    """Run a :class:`CypressTraceServer` on its own thread + loop."""

    def __init__(self, config: ServerConfig, *, recover: bool = True) -> None:
        self.server = CypressTraceServer(config)
        if recover:
            self.server.recover()
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.serve(
            install_signals=False,
            on_started=lambda _srv: self._ready.set(),
        )

    def start(self) -> int:
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start")
        assert self.server.port is not None
        return self.server.port

    def stop(self, timeout: float = 30) -> None:
        """Graceful drain (checkpoints + finalize), then join."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.request_drain)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not drain in time")

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
