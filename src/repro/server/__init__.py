"""Trace-compression-as-a-service: the online ingest layer.

The batch pipeline (``repro trace``) assumes every rank's capture is
already on the local machine.  This package turns the same CTT
machinery into a long-running service (docs/INTERNALS.md §14):

* :mod:`repro.server.protocol` — the CRC-framed wire protocol clients
  speak (HELLO / BATCH / EOS control flow, THROTTLE backpressure,
  exactly-once sequence numbering);
* :mod:`repro.server.session` — per-``(job, rank)`` session state with
  crash-safe checkpoint/batch-log files and prefix-salvage recovery;
* :mod:`repro.server.daemon` — the asyncio TCP daemon behind
  ``repro serve``: bounded buffering with high/low watermarks, idle
  quarantine, periodic checkpoints, graceful drain, crash recovery;
* :mod:`repro.server.client` — the retry/reconnect/resume client
  library behind ``repro submit``;
* :mod:`repro.server.faultsmoke` — the ``faultsmoke --server`` matrix:
  seeded daemon kills, client disconnects, torn frames and stalled
  ranks, all asserting byte-identity against the batch pipeline.
"""

from .client import TraceClient, split_batches, submit_workload
from .daemon import CypressTraceServer, ServerConfig
from .protocol import ProtocolError

__all__ = [
    "CypressTraceServer",
    "ProtocolError",
    "ServerConfig",
    "TraceClient",
    "split_batches",
    "submit_workload",
]
