"""Collective decomposition into point-to-point operations (paper §V,
citing Zhang et al. [23]).

SIM-MPI does not model collectives natively: each collective is decomposed
into a schedule of point-to-point messages, and its cost is the LogGP cost
of that schedule's critical path.  The schedule generators are exposed for
tests and for users who want per-message detail; the ``*_cost`` functions
evaluate the critical path.
"""

from __future__ import annotations

from math import ceil, log2

from .loggp import LogGPParams


def _rounds(nprocs: int) -> int:
    return max(1, ceil(log2(max(2, nprocs))))


def binomial_bcast_schedule(nprocs: int, root: int = 0) -> list[list[tuple[int, int]]]:
    """Rounds of (src, dst) pairs for a binomial-tree broadcast."""
    # Work in root-relative numbering, translate at the end.
    schedule: list[list[tuple[int, int]]] = []
    have = 1
    while have < nprocs:
        round_pairs = []
        for src in range(min(have, nprocs)):
            dst = src + have
            if dst < nprocs:
                round_pairs.append(
                    ((src + root) % nprocs, (dst + root) % nprocs)
                )
        schedule.append(round_pairs)
        have *= 2
    return schedule


def recursive_doubling_schedule(nprocs: int) -> list[list[tuple[int, int]]]:
    """Rounds of symmetric exchanges for allgather/allreduce (power-of-two
    pattern; non-powers fall back to the next tree size)."""
    schedule: list[list[tuple[int, int]]] = []
    dist = 1
    while dist < nprocs:
        pairs = []
        for r in range(nprocs):
            peer = r ^ dist
            if peer < nprocs and r < peer:
                pairs.append((r, peer))
        schedule.append(pairs)
        dist *= 2
    return schedule


def pairwise_alltoall_schedule(nprocs: int) -> list[list[tuple[int, int]]]:
    """P-1 rounds of pairwise exchange (XOR schedule for powers of two,
    rotation otherwise)."""
    schedule = []
    for step in range(1, nprocs):
        pairs = []
        for r in range(nprocs):
            peer = (r + step) % nprocs
            pairs.append((r, peer))
        schedule.append(pairs)
    return schedule


# ---------------------------------------------------------------------------
# Critical-path costs under LogGP.
# ---------------------------------------------------------------------------


def collective_cost(
    params: LogGPParams, op: str, nbytes: int, nprocs: int
) -> float:
    """LogGP critical-path cost of the decomposed collective, measured from
    the moment every rank has arrived."""
    rounds = _rounds(nprocs)
    if op == "MPI_Barrier":
        return rounds * params.p2p_time(0)
    if op in ("MPI_Bcast", "MPI_Reduce", "MPI_Scatter", "MPI_Gather"):
        # Binomial tree: log2(P) sequential hops of the full payload.
        return rounds * params.p2p_time(nbytes)
    if op == "MPI_Allreduce":
        # Reduce + broadcast down the same tree.
        return 2 * rounds * params.p2p_time(nbytes)
    if op == "MPI_Scan":
        return rounds * params.p2p_time(nbytes)
    if op == "MPI_Reduce_scatter":
        return (rounds + 1) * params.p2p_time(nbytes)
    if op == "MPI_Allgather":
        # Recursive doubling: message doubles each round.
        total = 0.0
        chunk = nbytes
        for _ in range(rounds):
            total += params.p2p_time(chunk)
            chunk *= 2
        return total
    if op == "MPI_Alltoall":
        # Pairwise: P-1 rounds, nbytes per pair, g-limited injection.
        per_round = max(params.p2p_time(nbytes), params.g)
        return (nprocs - 1) * per_round
    raise ValueError(f"unknown collective {op!r}")
