"""LogGP communication model (Alexandrov et al. [22]) — the cost model of
the SIM-MPI trace-driven simulator (paper §V).

A point-to-point message of ``k`` bytes costs the sender ``o``, spends
``L + (k-1)·G`` on the wire, and costs the receiver ``o``; ``g`` bounds
per-message injection rate.  Collectives are *decomposed into
point-to-point operations* (paper §V citing [23]); the decomposition
schedules live in :mod:`repro.replay.decomposition`.

Parameters are *fitted* from ping-pong measurements on the target machine
(see :mod:`repro.replay.calibrate`) rather than copied from the machine
model — SIM-MPI predicts a machine it can only observe, which is why the
paper reports a 5.9% average prediction error rather than zero.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LogGPParams:
    """All times in microseconds; G in us/byte."""

    L: float = 2.0  # latency
    o: float = 0.7  # per-message CPU overhead (each side)
    g: float = 0.5  # gap between consecutive messages
    G: float = 0.0004  # gap per byte (1/bandwidth)

    def p2p_time(self, nbytes: int) -> float:
        """End-to-end time of one message: send overhead to receive done."""
        wire = self.L + max(0, nbytes - 1) * self.G
        return self.o + wire + self.o

    def sender_busy(self, nbytes: int) -> float:
        """Time the sender's CPU is occupied."""
        return max(self.o, self.g)

    def receiver_busy(self, _nbytes: int) -> float:
        return self.o
