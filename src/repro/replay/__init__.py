"""SIM-MPI: trace-driven performance prediction under LogGP."""

from .loggp import LogGPParams
from .simmpi import SimMPI, SimResult, predict
from .calibrate import fit_loggp, measure_pingpong
from .decomposition import collective_cost

__all__ = [
    "LogGPParams",
    "SimMPI",
    "SimResult",
    "predict",
    "fit_loggp",
    "measure_pingpong",
    "collective_cost",
]
