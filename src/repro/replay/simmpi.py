"""SIM-MPI: trace-driven performance prediction (paper §V, Fig. 14).

Replays decompressed communication traces under the LogGP model:

* the recorded *pre-gap* of each event is the sequential computation time
  between communication operations (obtained in the paper by
  deterministic replay on one node; here recorded during tracing);
* point-to-point operations are simulated with message matching and LogGP
  costs;
* collectives are synchronised and charged their decomposed critical-path
  cost (:mod:`repro.replay.decomposition`).

The output is the predicted per-rank execution time, compared in Fig. 21
against the "measured" time of the simulated machine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.decompress import ReplayEvent
from repro.mpisim.collectives import CommRegistry
from repro.mpisim.errors import DeadlockError
from repro.mpisim.matching import Mailbox, Message

from .decomposition import collective_cost
from .loggp import LogGPParams

_COLLECTIVES = {
    "MPI_Barrier",
    "MPI_Bcast",
    "MPI_Reduce",
    "MPI_Allreduce",
    "MPI_Gather",
    "MPI_Scatter",
    "MPI_Allgather",
    "MPI_Alltoall",
    "MPI_Scan",
    "MPI_Reduce_scatter",
    "MPI_Comm_split",
}


@dataclass
class SimResult:
    finish_times: list[float]
    comm_times: list[float]  # per-rank time spent inside MPI
    wait_times: list[float] | None = None  # per-rank blocked-on-peer time

    @property
    def elapsed(self) -> float:
        return max(self.finish_times) if self.finish_times else 0.0

    def comm_fraction(self) -> float:
        total = sum(self.finish_times)
        return sum(self.comm_times) / total if total else 0.0

    def wait_fraction(self, rank: int) -> float:
        """Share of a rank's time spent *waiting* for peers (late senders,
        collective stragglers) — the imbalance signal the paper's
        performance-analysis use case looks for (§VII-D)."""
        if self.wait_times is None or not self.finish_times[rank]:
            return 0.0
        return self.wait_times[rank] / self.finish_times[rank]

    def bottleneck_ranks(self, top: int = 3) -> list[int]:
        """Ranks with the *lowest* wait share — the ones everyone else is
        waiting for."""
        if self.wait_times is None:
            return []
        order = sorted(
            range(len(self.finish_times)), key=lambda r: self.wait_fraction(r)
        )
        return order[:top]


@dataclass
class _CollectiveSlot:
    op: str
    size: int
    nbytes: int = 0
    arrived: dict[int, float] = field(default_factory=dict)
    payload: dict[int, tuple] = field(default_factory=dict)
    done: bool = False
    completion: float = 0.0
    cost: float = 0.0  # critical-path cost (completion - last arrival)


@dataclass
class _PostedRecv:
    gid: int
    src: int
    tag: int
    nbytes: int
    post_time: float
    complete: bool = False
    completion: float = 0.0


class SimMPI:
    """Event-driven replay of per-rank traces under LogGP."""

    def __init__(
        self,
        traces: dict[int, list[ReplayEvent]],
        params: LogGPParams | None = None,
    ) -> None:
        self.traces = traces
        self.params = params or LogGPParams()
        self.nprocs = (max(traces) + 1) if traces else 0
        self._mailboxes = [Mailbox(r) for r in range(self.nprocs)]
        self._posted: list[list[_PostedRecv]] = [[] for _ in range(self.nprocs)]
        self._pending_by_gid: list[dict[int, deque[_PostedRecv]]] = [
            {} for _ in range(self.nprocs)
        ]
        self._comms = CommRegistry(self.nprocs)
        self._slots: dict[tuple[int, int], _CollectiveSlot] = {}
        self._counters: dict[tuple[int, int], int] = {}
        self._send_seq = 0
        self._progress = 0
        self.clocks = [0.0] * self.nprocs
        self.comm_time = [0.0] * self.nprocs
        self.wait_time = [0.0] * self.nprocs

    # -- plumbing --------------------------------------------------------

    def _send(self, src: int, dst: int, tag: int, nbytes: int, t: float) -> None:
        self._send_seq += 1
        arrival = t + self.params.o + self.params.L + max(0, nbytes - 1) * self.params.G
        self._mailboxes[dst].deliver(
            Message(
                src=src, dst=dst, tag=tag, nbytes=nbytes, comm=0,
                send_time=t, arrival_time=arrival, seq=self._send_seq,
            )
        )
        self._progress += 1
        self._match(dst)

    def _match(self, rank: int) -> None:
        posted = self._posted[rank]
        if not posted:
            return
        mailbox = self._mailboxes[rank]
        remaining: list[_PostedRecv] = []
        for recv in posted:
            msg = mailbox.match(recv.src, recv.tag, 0)
            if msg is None:
                remaining.append(recv)
                continue
            recv.complete = True
            recv.completion = max(recv.post_time, msg.arrival_time) + self.params.o
            self._progress += 1
        self._posted[rank] = remaining

    # -- per-rank coroutine -----------------------------------------------

    def _rank_gen(self, rank: int):
        params = self.params
        for ev in self.traces.get(rank, []):
            # Sequential computation between events.
            self.clocks[rank] += ev.mean_gap
            t0 = self.clocks[rank]
            op = ev.op
            if op in ("MPI_Init", "MPI_Finalize"):
                pass
            elif op == "MPI_Send":
                self._send(rank, ev.peer, ev.tag, ev.nbytes, t0)
                self.clocks[rank] = t0 + params.sender_busy(ev.nbytes)
            elif op == "MPI_Isend":
                self._send(rank, ev.peer, ev.tag, ev.nbytes, t0)
                self.clocks[rank] = t0 + params.sender_busy(ev.nbytes)
            elif op == "MPI_Recv":
                recv = self._post_recv(rank, ev, t0, ev.gid)
                while not recv.complete:
                    yield
                self.clocks[rank] = max(t0, recv.completion)
                self.wait_time[rank] += max(
                    0.0, recv.completion - params.o - t0
                )
            elif op == "MPI_Irecv":
                self._post_recv(rank, ev, t0, ev.gid)
                self.clocks[rank] = t0 + params.o * 0.5
            elif op == "MPI_Sendrecv":
                self._send(rank, ev.peer, ev.tag, ev.nbytes, t0)
                sr = ReplayEvent(
                    op="MPI_Recv", peer=ev.peer2, peer2=-100, tag=ev.tag2,
                    tag2=0, nbytes=ev.nbytes2, nbytes2=0, comm=ev.comm,
                    root=-1, wildcard=ev.wildcard, req_gids=(),
                    mean_duration=0.0, mean_gap=0.0, gid=ev.gid,
                )
                recv = self._post_recv(rank, sr, t0, ev.gid)
                while not recv.complete:
                    yield
                self.clocks[rank] = max(
                    t0 + params.sender_busy(ev.nbytes), recv.completion
                )
                self.wait_time[rank] += max(
                    0.0, recv.completion - params.o - t0
                )
            elif op in ("MPI_Wait", "MPI_Waitall", "MPI_Waitany", "MPI_Waitsome"):
                worst = self.clocks[rank]
                for gid in ev.req_gids:
                    queue = self._pending_by_gid[rank].get(gid)
                    if not queue:
                        continue  # isend request: completes immediately
                    recv = queue.popleft()
                    while not recv.complete:
                        yield
                    worst = max(worst, recv.completion)
                self.wait_time[rank] += max(0.0, worst - t0 - params.o)
                self.clocks[rank] = worst
            elif op == "MPI_Test":
                self.clocks[rank] = t0 + params.o * 0.1
                if ev.req_gids:
                    for gid in ev.req_gids:
                        queue = self._pending_by_gid[rank].get(gid)
                        if not queue:
                            continue
                        recv = queue.popleft()
                        while not recv.complete:
                            yield
                        self.clocks[rank] = max(self.clocks[rank], recv.completion)
            elif op in _COLLECTIVES:
                slot = self._enter_collective(rank, ev, t0)
                while not slot.done:
                    yield
                self.clocks[rank] = max(t0, slot.completion)
                self.wait_time[rank] += max(
                    0.0, slot.completion - slot.cost - t0
                )
            else:
                raise ValueError(f"SIM-MPI cannot replay op {op!r}")
            self.comm_time[rank] += self.clocks[rank] - t0

    def _post_recv(
        self, rank: int, ev: ReplayEvent, t0: float, gid: int
    ) -> _PostedRecv:
        recv = _PostedRecv(
            gid=gid, src=ev.peer, tag=ev.tag, nbytes=ev.nbytes, post_time=t0
        )
        self._posted[rank].append(recv)
        if ev.op == "MPI_Irecv":
            self._pending_by_gid[rank].setdefault(gid, deque()).append(recv)
        self._match(rank)
        return recv

    def _enter_collective(
        self, rank: int, ev: ReplayEvent, t0: float
    ) -> _CollectiveSlot:
        comm = ev.comm
        counter_key = (comm, rank)
        index = self._counters.get(counter_key, 0)
        self._counters[counter_key] = index + 1
        key = (comm, index)
        slot = self._slots.get(key)
        if slot is None:
            slot = _CollectiveSlot(op=ev.op, size=self._comms.size(comm))
            self._slots[key] = slot
        slot.nbytes = max(slot.nbytes, ev.nbytes)
        slot.arrived[rank] = t0
        if ev.op == "MPI_Comm_split":
            # tag carries the colour, peer the key (see comm.py).
            slot.payload[rank] = (ev.tag, ev.peer)
        if len(slot.arrived) == slot.size and not slot.done:
            worst = max(slot.arrived.values())
            op = "MPI_Barrier" if slot.op == "MPI_Comm_split" else slot.op
            slot.cost = collective_cost(self.params, op, slot.nbytes, slot.size)
            slot.completion = worst + slot.cost
            if slot.op == "MPI_Comm_split":
                # Reconstruct the communicator; ids come out identical to
                # the traced ones because assignment is deterministic.
                self._comms.split(slot.payload)
            slot.done = True
            self._progress += 1
        return slot

    # -- driver ---------------------------------------------------------------

    def run(self) -> SimResult:
        gens = {r: self._rank_gen(r) for r in range(self.nprocs)}
        live = deque(range(self.nprocs))
        while live:
            before = self._progress
            finished = []
            for rank in list(live):
                try:
                    next(gens[rank])
                except StopIteration:
                    finished.append(rank)
                    self._progress += 1
            for rank in finished:
                live.remove(rank)
            if live and self._progress == before:
                raise DeadlockError(
                    {r: "blocked in SIM-MPI replay" for r in live}
                )
        return SimResult(
            finish_times=list(self.clocks),
            comm_times=list(self.comm_time),
            wait_times=list(self.wait_time),
        )


def predict(
    traces: dict[int, list[ReplayEvent]], params: LogGPParams | None = None
) -> SimResult:
    """One-call prediction from decompressed traces."""
    return SimMPI(traces, params).run()
