"""LogGP parameter fitting from ping-pong microbenchmarks (paper §VII-D:
"the network parameters needed by the SIM-MPI is acquired using two nodes
of the Explorer-100 cluster").

Runs a two-rank ping-pong MiniMPI program on the simulated machine for a
ladder of message sizes, then least-squares fits the LogGP line
``rtt/2 = 2o + L + (k-1)G`` — one straight line through a machine whose
true behaviour is piecewise (eager/rendezvous), so the fit carries a
small, honest model error into every prediction.
"""

from __future__ import annotations

import numpy as np

from repro.driver import run_compiled
from repro.mpisim.netmodel import NetworkModel
from repro.mpisim.pmpi import RecordingSink
from repro.static.instrument import compile_minimpi

from .loggp import LogGPParams

_PINGPONG = """
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  for (var r = 0; r < reps; r = r + 1) {
    if (rank == 0) {
      mpi_send(1, nbytes, 7);
      mpi_recv(1, nbytes, 8);
    } else {
      mpi_recv(0, nbytes, 7);
      mpi_send(0, nbytes, 8);
    }
  }
  mpi_finalize();
}
"""

DEFAULT_SIZES = (1, 64, 512, 2048, 8192, 32768, 131072, 524288)


def measure_pingpong(
    nbytes: int, reps: int = 5, network: NetworkModel | None = None
) -> float:
    """Half round-trip time (us) of one ping-pong on the simulated machine."""
    compiled = compile_minimpi(_PINGPONG, cypress=False)
    sink = RecordingSink()
    result = run_compiled(
        compiled, nprocs=2, defines={"nbytes": nbytes, "reps": reps},
        tracer=sink, network=network,
    )
    return result.elapsed / (2 * reps)


def fit_loggp(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    reps: int = 5,
    network: NetworkModel | None = None,
) -> LogGPParams:
    """Fit LogGP to ping-pong measurements: least squares on
    ``t(k) = a + G·k`` with ``a = L + 2o`` split using the runtime's
    nominal overhead share."""
    ks = np.array(sizes, dtype=float)
    ts = np.array(
        [measure_pingpong(int(k), reps=reps, network=network) for k in sizes]
    )
    A = np.vstack([np.ones_like(ks), ks]).T
    (a, G), *_ = np.linalg.lstsq(A, ts, rcond=None)
    G = max(float(G), 1e-9)
    a = max(float(a), 0.1)
    o = min(0.7, a / 4)  # o is not separately observable from ping-pong
    L = a - 2 * o
    return LogGPParams(L=L, o=o, g=o, G=G)
