"""Natural-loop detection over MiniMPI CFGs.

Classic dominator-based algorithm (paper §III-A, citing Muchnick): an edge
``t -> h`` is a *back edge* iff ``h`` dominates ``t``; the natural loop of a
back edge is ``h`` plus every block that can reach ``t`` without passing
through ``h``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minilang.cfg import CFG

from .dominators import dominates, immediate_dominators


@dataclass
class NaturalLoop:
    header: int
    back_edges: list[tuple[int, int]] = field(default_factory=list)
    body: set[int] = field(default_factory=set)  # includes the header

    @property
    def ast_id(self) -> int | None:
        return self._ast_id

    _ast_id: int | None = None


def find_back_edges(cfg: CFG, idom: dict[int, int] | None = None) -> list[tuple[int, int]]:
    """All back edges ``(tail, header)`` of the CFG."""
    if idom is None:
        idom = immediate_dominators(cfg)
    edges: list[tuple[int, int]] = []
    for bid in cfg.postorder():
        for succ in cfg.blocks[bid].succs:
            if succ in idom and dominates(idom, succ, bid):
                edges.append((bid, succ))
    return edges


def natural_loops(cfg: CFG, idom: dict[int, int] | None = None) -> dict[int, NaturalLoop]:
    """Natural loops keyed by header block id.

    Back edges sharing a header are merged into one loop (standard
    treatment for loops with multiple latches, e.g. from ``continue``).
    """
    if idom is None:
        idom = immediate_dominators(cfg)
    loops: dict[int, NaturalLoop] = {}
    for tail, header in find_back_edges(cfg, idom):
        loop = loops.setdefault(header, NaturalLoop(header=header))
        loop.back_edges.append((tail, header))
        # Walk predecessors backwards from the tail, stopping at the header.
        body = loop.body
        body.add(header)
        stack = [tail]
        while stack:
            bid = stack.pop()
            if bid in body:
                continue
            body.add(bid)
            stack.extend(cfg.blocks[bid].preds)
    for header, loop in loops.items():
        loop._ast_id = cfg.blocks[header].ast_id
    return loops


def loop_nesting(loops: dict[int, NaturalLoop]) -> dict[int, int | None]:
    """Innermost-enclosing-loop map: header -> parent header (or ``None``).

    Loop A encloses loop B iff B's header lies in A's body and A != B.  The
    innermost such A is the parent.
    """
    parents: dict[int, int | None] = {}
    for header, loop in loops.items():
        parent: int | None = None
        parent_size = None
        for other_header, other in loops.items():
            if other_header == header:
                continue
            if header in other.body:
                if parent_size is None or len(other.body) < parent_size:
                    parent = other_header
                    parent_size = len(other.body)
        parents[header] = parent
    return parents
