"""Compile-time driver: parse + analyse + instrument a MiniMPI program.

``compile_minimpi(source)`` is the equivalent of running the paper's LLVM
plug-in during the build: it parses the program, extracts the CST, and
produces the instrumentation plan the runtime needs.  With
``cypress=False`` it performs only the baseline compilation work (lexing,
parsing, CFG construction) — the two modes are what Table I compares.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.minilang import ast_nodes as A
from repro.minilang.builtins import make_classifier
from repro.minilang.cfg import build_all_cfgs
from repro.minilang.interp import InstrumentationPlan
from repro.minilang.parser import parse

from .inter import StaticAnalysisResult, build_program_cst
from .legality import check_trace_legality


@dataclass
class CompiledProgram:
    """Everything produced by one compilation."""

    program: A.Program
    static: StaticAnalysisResult | None  # None when compiled without CYPRESS
    plan: InstrumentationPlan | None
    compile_seconds: float
    source_name: str = "<minimpi>"

    @property
    def cst(self):
        if self.static is None:
            raise ValueError("program was compiled without the CYPRESS pass")
        return self.static.cst


def compile_minimpi(
    source: str,
    cypress: bool = True,
    entry: str = "main",
    source_name: str = "<minimpi>",
) -> CompiledProgram:
    """Compile MiniMPI source, optionally running the CYPRESS static pass."""
    from repro import obs

    t0 = time.perf_counter()
    with obs.span("static.compile"):
        program = parse(source, source_name)
        # Baseline compilation always builds CFGs (any optimising compiler
        # does); the CYPRESS pass adds the CST extraction on top.
        build_all_cfgs(program)
        static = None
        plan = None
        if cypress:
            check_trace_legality(program)
            static = build_program_cst(
                program, make_classifier(program), entry=entry
            )
            plan = InstrumentationPlan.from_static(static)
    elapsed = time.perf_counter() - t0
    registry = obs.active()
    if registry is not None:
        registry.counter_add("static.compiles", 1)
        if static is not None:
            registry.counter_add("static.cst_vertices", static.cst.size())
    return CompiledProgram(
        program=program,
        static=static,
        plan=plan,
        compile_seconds=elapsed,
        source_name=source_name,
    )
