"""Inter-procedural CST construction (paper §III-B, Algorithm 2).

Combines the per-procedure intermediate CSTs into the whole-program CST:

1. build the program call graph (PCG);
2. convert recursion into pseudo-loop structures (paper Fig. 8, after
   Emami et al.): a pseudo loop vertex is inserted at the entry of each
   recursive function / SCC entry, and cycle-closing recursive call leaves
   are dropped (their surrounding branch vertices already record, at
   runtime, which path recursed);
3. run the bottom-up fixpoint of Algorithm 2, splicing each user-defined
   function leaf with a copy of its callee's intermediate CST;
4. prune non-MPI leaves iteratively (paper's two-step DFS pruning);
5. assign pre-order GIDs.

The final CST of ``main`` is the program CST.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minilang import ast_nodes as A
from repro.minilang.cfg import build_all_cfgs

from .callgraph import CallGraph, build_call_graph
from .cst import FUNC, LOOP, ROOT, CSTNode, assign_gids, prune
from .intra import Classifier, build_intra_cst

# ``ast_id`` namespace for pseudo loops: FuncDef node ids are reused, offset
# so they can never collide with real control-structure ids.
PSEUDO_LOOP_OFFSET = 1_000_000


def pseudo_loop_id(func_node_id: int) -> int:
    return PSEUDO_LOOP_OFFSET + func_node_id


@dataclass
class StaticAnalysisResult:
    """Everything the dynamic module needs from compile time."""

    cst: CSTNode
    # Control-structure AST ids that survive in the final CST (markers are
    # only emitted for these — the paper's selective bracketing).
    instrumented_ast_ids: frozenset[int] = frozenset()
    # Recursive function name -> pseudo-loop ast id.
    recursive_pseudo: dict[str, int] = field(default_factory=dict)
    # Per-procedure intermediate CSTs (useful for inspection/tests).
    intra_csts: dict[str, CSTNode] = field(default_factory=dict)
    call_graph: CallGraph | None = None


def _convert_recursion(
    intra: dict[str, CSTNode],
    program: A.Program,
    graph: CallGraph,
) -> dict[str, int]:
    """Apply the Fig. 8 recursion conversion in place.

    Returns ``function name -> pseudo-loop ast id`` for every converted
    function entry.
    """
    pseudo: dict[str, int] = {}
    for comp in graph.sccs():
        members = set(comp)
        is_recursive = len(comp) > 1 or comp[0] in graph.callees(comp[0])
        if not is_recursive:
            continue
        # Pick the SCC entry: a member called from outside the SCC (or the
        # first member as a fallback for a closed cycle).
        entries = [
            f
            for f in comp
            if any(
                f in graph.callees(caller)
                for caller in graph.functions
                if caller not in members
            )
        ]
        entry = entries[0] if entries else comp[0]
        # Drop cycle-closing call leaves: inside SCC members, any call leaf
        # targeting the SCC entry (self recursion: f -> f) or, for mutual
        # recursion, any intra-SCC call back to an already-reachable member
        # along the DFS tree rooted at the entry.
        keep_edges = _scc_spanning_edges(graph, entry, members)
        for name in comp:
            _drop_call_leaves(
                intra[name],
                lambda callee, caller=name: callee in members
                and (caller, callee) not in keep_edges,
            )
        # Wrap the entry body in a pseudo loop.
        func = program.functions[entry]
        loop_ast_id = pseudo_loop_id(func.node_id)
        root = intra[entry]
        wrapper = CSTNode(kind=LOOP, ast_id=loop_ast_id, name=f"~{entry}", line=func.line)
        wrapper.children = root.children
        root.children = [wrapper]
        pseudo[entry] = loop_ast_id
    return pseudo


def _scc_spanning_edges(
    graph: CallGraph, entry: str, members: set[str]
) -> set[tuple[str, str]]:
    """DFS-tree edges of the SCC subgraph from ``entry``; these call edges
    are kept (inlined), all other intra-SCC edges are dropped."""
    keep: set[tuple[str, str]] = set()
    seen = {entry}
    stack = [entry]
    while stack:
        caller = stack.pop()
        for callee in graph.callees(caller):
            if callee in members and callee not in seen:
                seen.add(callee)
                keep.add((caller, callee))
                stack.append(callee)
    return keep


def _drop_call_leaves(root: CSTNode, should_drop) -> None:
    for node in root.preorder():
        node.children = [
            c
            for c in node.children
            if not (c.kind == FUNC and should_drop(c.name))
        ]


def _inline_functions(intra: dict[str, CSTNode], graph: CallGraph) -> None:
    """Algorithm 2: bottom-up fixpoint replacing user-function leaves with
    copies of their intermediate CSTs (spliced — the callee's virtual root
    is not kept)."""
    changed = True
    while changed:
        changed = False
        for proc in graph.postorder():
            tree = intra.get(proc)
            if tree is None:
                continue
            for node in list(tree.preorder()):
                if not any(c.kind == FUNC for c in node.children):
                    continue
                new_children: list[CSTNode] = []
                for child in node.children:
                    if child.kind == FUNC and child.name in intra:
                        callee_root = intra[child.name]
                        new_children.extend(c.copy() for c in callee_root.children)
                        changed = True
                    elif child.kind == FUNC:
                        # Call to an unknown function: drop (pruned anyway).
                        changed = True
                    else:
                        new_children.append(child)
                node.children = new_children


def _collect_instrumented_ids(cst: CSTNode) -> frozenset[int]:
    ids = set()
    for node in cst.preorder():
        if node.kind in (LOOP, "branch") and node.ast_id is not None:
            ids.add(node.ast_id)
    return frozenset(ids)


def build_program_cst(
    program: A.Program,
    classify: Classifier,
    entry: str = "main",
) -> StaticAnalysisResult:
    """Run the complete static analysis module on a MiniMPI program.

    This is the top of the static pipeline: CFGs -> intra-procedural CSTs
    (Algorithm 1) -> PCG -> recursion conversion -> inter-procedural
    inlining (Algorithm 2) -> pruning -> GID assignment.
    """
    if entry not in program.functions:
        raise ValueError(f"program has no entry function {entry!r}")
    cfgs = build_all_cfgs(program)
    intra = {name: build_intra_cst(cfg, classify) for name, cfg in cfgs.items()}
    intra_snapshot = {name: tree.copy() for name, tree in intra.items()}
    graph = build_call_graph(program)
    pseudo = _convert_recursion(intra, program, graph)
    _inline_functions(intra, graph)
    cst = intra[entry]
    cst.kind = ROOT
    cst.name = entry
    prune(cst)
    assign_gids(cst)
    return StaticAnalysisResult(
        cst=cst,
        instrumented_ast_ids=_collect_instrumented_ids(cst),
        recursive_pseudo=pseudo,
        intra_csts=intra_snapshot,
        call_graph=graph,
    )
