"""Intra-procedural CST construction (paper §III-A, Algorithm 1).

Builds an intermediate CST for one procedure from its CFG:

* loop and branch structures are identified over the CFG (dominator-based
  natural-loop detection; two-way conditional blocks);
* each MPI invocation and each user-defined function call becomes a leaf
  vertex;
* a virtual root connects the first-level vertices;
* branch structures contribute one branch vertex *per path*.

The construction walks CFG regions guided by the dominator analysis:
a loop's body region is delimited by its header (back-edge target, found by
the natural-loop pass); a branch's paths are delimited by the branch
block's immediate post-dominator (the join).  Early exits (``break`` /
``return``) terminate a region at the enclosing loop-exit / function-exit
blocks, which are threaded through as stop sets.
"""

from __future__ import annotations

from typing import Callable

from repro.minilang.cfg import CFG

from .cst import BRANCH, CALL, FUNC, LOOP, ROOT, CSTNode
from .dominators import immediate_dominators, immediate_post_dominators
from .loops import natural_loops

# classify(name) -> "mpi" | "user" | None (ignored computation builtin)
Classifier = Callable[[str], str | None]


class IntraProceduralAnalysis:
    """Runs Algorithm 1 for a single procedure."""

    def __init__(self, cfg: CFG, classify: Classifier) -> None:
        self.cfg = cfg
        self.classify = classify
        self._idom = immediate_dominators(cfg)
        self._ipdom = immediate_post_dominators(cfg)
        self._loops = natural_loops(cfg, self._idom)

    def build(self) -> CSTNode:
        """The intermediate CST of the procedure (unpruned, no GIDs)."""
        root = CSTNode(kind=ROOT, name=self.cfg.func_name)
        root.children = self._region(self.cfg.entry, stops=frozenset({self.cfg.exit}))
        return root

    # ------------------------------------------------------------------

    def _leaf_vertices(self, bid: int) -> list[CSTNode]:
        leaves = []
        for inv in self.cfg.blocks[bid].invocations:
            kind = self.classify(inv.name)
            if kind == "mpi":
                leaves.append(CSTNode(kind=CALL, ast_id=inv.ast_id, name=inv.name, line=inv.line))
            elif kind == "user":
                leaves.append(CSTNode(kind=FUNC, ast_id=inv.ast_id, name=inv.name, line=inv.line))
        return leaves

    def _region(self, start: int, stops: frozenset[int]) -> list[CSTNode]:
        """CST vertices for the linear chain of regions from ``start`` until
        any block in ``stops`` is reached."""
        out: list[CSTNode] = []
        cur = start
        visited_here: set[int] = set()
        while cur not in stops:
            if cur in visited_here:  # safety net against malformed CFGs
                raise RuntimeError(
                    f"region walk revisited block {cur} in {self.cfg.func_name}"
                )
            visited_here.add(cur)
            block = self.cfg.blocks[cur]
            if cur in self._loops:
                # Header invocations (loop-condition calls) belong *inside*
                # the loop vertex — _loop_vertex emits them.
                out.append(self._loop_vertex(cur, stops))
                cur = self._loop_exit(cur)
                continue
            out.extend(self._leaf_vertices(cur))
            if block.kind == "branch" and len(block.succs) == 2:
                vertices, join = self._branch_vertices(cur, stops)
                out.extend(vertices)
                cur = join
                continue
            if not block.succs:
                break
            cur = block.succs[0]
        return out

    def _loop_exit(self, header: int) -> int:
        loop = self._loops[header]
        exits = [s for s in self.cfg.blocks[header].succs if s not in loop.body]
        if len(exits) != 1:  # structured MiniMPI loops have exactly one
            raise RuntimeError(
                f"loop header {header} in {self.cfg.func_name} has {len(exits)} exits"
            )
        return exits[0]

    def _loop_vertex(self, header: int, stops: frozenset[int]) -> CSTNode:
        loop = self._loops[header]
        block = self.cfg.blocks[header]
        vertex = CSTNode(kind=LOOP, ast_id=block.ast_id, line=0)
        body_entries = [s for s in block.succs if s in loop.body]
        exit_block = self._loop_exit(header)
        # Invocations in the header (loop-condition calls) execute once per
        # iteration: they are the loop vertex's first children.
        vertex.children.extend(self._leaf_vertices(header))
        body_stops = stops | {header, exit_block}
        for entry in body_entries:
            vertex.children.extend(self._region(entry, frozenset(body_stops)))
        return vertex

    def _branch_vertices(
        self, bid: int, stops: frozenset[int]
    ) -> tuple[list[CSTNode], int]:
        block = self.cfg.blocks[bid]
        join = self._ipdom.get(bid, self.cfg.exit)
        path_stops = frozenset(stops | {join})
        vertices: list[CSTNode] = []
        for path, succ in enumerate(block.succs):
            vertex = CSTNode(kind=BRANCH, ast_id=block.ast_id, branch_path=path)
            vertex.children = self._region(succ, path_stops)
            vertices.append(vertex)
        return vertices, join


def build_intra_cst(cfg: CFG, classify: Classifier) -> CSTNode:
    """Intermediate (per-procedure) CST — Algorithm 1.

    Returns a CST whose root is the procedure's virtual root.  A procedure
    without MPI or user-function calls yields a root with no surviving
    descendants after pruning (the paper's "null" intermediate CST).
    """
    return IntraProceduralAnalysis(cfg, classify).build()
