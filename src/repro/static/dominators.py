"""Dominator analysis over MiniMPI CFGs.

Implements the Cooper–Harvey–Kennedy iterative dominator algorithm
("A Simple, Fast Dominance Algorithm"), the classic approach the paper
references for its dominator-based loop detection (Muchnick [20]).

Also provides post-dominators (dominators of the reversed CFG), used by the
CST builder to find branch join points.
"""

from __future__ import annotations

from repro.minilang.cfg import CFG


def immediate_dominators(cfg: CFG) -> dict[int, int]:
    """Immediate dominator of every reachable block.

    Returns a map ``block -> idom`` with ``idom[entry] == entry``.
    """
    return _idoms(
        entry=cfg.entry,
        rpo=cfg.reverse_postorder(),
        preds=lambda b: cfg.blocks[b].preds,
    )


def immediate_post_dominators(cfg: CFG) -> dict[int, int]:
    """Immediate post-dominator of every block that reaches the exit.

    Computed as dominators of the reversed CFG rooted at ``cfg.exit``.
    """
    # Post-order of the reversed graph from the exit.
    seen: set[int] = {cfg.exit}
    order: list[int] = []
    stack: list[tuple[int, int]] = [(cfg.exit, 0)]
    while stack:
        bid, idx = stack[-1]
        preds = cfg.blocks[bid].preds
        if idx < len(preds):
            stack[-1] = (bid, idx + 1)
            nxt = preds[idx]
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, 0))
        else:
            stack.pop()
            order.append(bid)
    rpo = list(reversed(order))
    return _idoms(entry=cfg.exit, rpo=rpo, preds=lambda b: cfg.blocks[b].succs)


def _idoms(entry: int, rpo: list[int], preds) -> dict[int, int]:
    index = {bid: i for i, bid in enumerate(rpo)}
    idom: dict[int, int] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for bid in rpo:
            if bid == entry:
                continue
            candidates = [p for p in preds(bid) if p in idom and p in index]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(bid) != new_idom:
                idom[bid] = new_idom
                changed = True
    return idom


def dominator_tree(idom: dict[int, int]) -> dict[int, list[int]]:
    """Children lists of the dominator tree (root maps to itself in idom)."""
    tree: dict[int, list[int]] = {bid: [] for bid in idom}
    for bid, parent in idom.items():
        if bid != parent:
            tree[parent].append(bid)
    return tree


def dominates(idom: dict[int, int], a: int, b: int) -> bool:
    """True if block ``a`` dominates block ``b`` (reflexive)."""
    node = b
    while True:
        if node == a:
            return True
        parent = idom.get(node)
        if parent is None or parent == node:
            return False
        node = parent
