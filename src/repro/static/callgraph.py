"""Program call graph (PCG) construction — paper §III-B.

Nodes are user-defined functions; a directed edge ``f -> g`` exists when
``f`` contains a call site of ``g``.  Recursion shows up as non-trivial
strongly connected components (or self loops), detected with Tarjan's
algorithm; the inter-procedural pass converts those into pseudo-loop
structures (paper Fig. 8, citing Emami et al.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minilang import ast_nodes as A
from repro.minilang.ast_nodes import walk


@dataclass
class CallGraph:
    """The program call graph over user-defined functions."""

    edges: dict[str, list[str]] = field(default_factory=dict)  # caller -> callees (dedup, ordered)
    functions: list[str] = field(default_factory=list)

    def callees(self, name: str) -> list[str]:
        return self.edges.get(name, [])

    def sccs(self) -> list[list[str]]:
        """Strongly connected components in reverse topological order
        (callees before callers), via Tarjan's algorithm (iterative)."""
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        result: list[list[str]] = []
        counter = 0

        for start in self.functions:
            if start in index:
                continue
            work: list[tuple[str, int]] = [(start, 0)]
            while work:
                node, child_idx = work[-1]
                if child_idx == 0:
                    index[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                callees = self.edges.get(node, [])
                advanced = False
                while child_idx < len(callees):
                    callee = callees[child_idx]
                    child_idx += 1
                    if callee not in index:
                        work[-1] = (node, child_idx)
                        work.append((callee, 0))
                        advanced = True
                        break
                    if callee in on_stack:
                        lowlink[node] = min(lowlink[node], index[callee])
                if advanced:
                    continue
                work[-1] = (node, child_idx)
                if child_idx >= len(callees):
                    work.pop()
                    if lowlink[node] == index[node]:
                        component: list[str] = []
                        while True:
                            w = stack.pop()
                            on_stack.discard(w)
                            component.append(w)
                            if w == node:
                                break
                        result.append(component)
                    if work:
                        parent = work[-1][0]
                        lowlink[parent] = min(lowlink[parent], lowlink[node])
        return result

    def recursive_functions(self) -> set[str]:
        """Functions involved in recursion (non-trivial SCCs or self loops)."""
        recursive: set[str] = set()
        for comp in self.sccs():
            if len(comp) > 1:
                recursive.update(comp)
            elif comp[0] in self.edges.get(comp[0], []):
                recursive.add(comp[0])
        return recursive

    def postorder(self, root: str = "main") -> list[str]:
        """Functions in post-order from ``root`` (callees first), each SCC
        emitted as a unit.  Functions unreachable from ``root`` are appended
        at the end (they still get analysed, matching whole-program mode)."""
        order: list[str] = []
        seen: set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            for callee in self.edges.get(name, []):
                visit(callee)
            order.append(name)

        if root in set(self.functions):
            visit(root)
        for name in self.functions:
            visit(name)
        return order


def build_call_graph(program: A.Program) -> CallGraph:
    """Construct the PCG of a MiniMPI program."""
    user = set(program.functions)
    graph = CallGraph(functions=list(program.functions))
    for name, func in program.functions.items():
        callees: list[str] = []
        for node in walk(func):
            if isinstance(node, A.Call) and node.name in user and node.name not in callees:
                callees.append(node.name)
        graph.edges[name] = callees
    return graph
