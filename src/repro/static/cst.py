"""The Communication Structure Tree (CST) — paper §III.

The CST is an *ordered* tree extracted at compile time:

* leaf vertices are MPI communication invocations (and, in intermediate
  per-procedure trees, user-defined function calls awaiting inlining);
* non-leaf vertices are program control structures: ``loop`` and ``branch``;
* a virtual ``root`` vertex connects the first-level vertices;
* every vertex carries a unique global id (GID) assigned in pre-order, so a
  pre-order traversal of the CST matches the static program structure.

Branch handling follows the paper's Algorithm 1: *"for each path insert a
branch vertex"* — an ``if``/``else`` contributes one branch vertex per path
(``branch_path`` 0 = then, 1 = else), siblings in source order.  Empty
paths disappear during pruning.

The tree also records, per vertex, the AST node id of the originating
control structure or call (``ast_id``).  This is the compile-time link the
instrumentation pass uses: at runtime a cursor walks the mirrored CTT, and
marker events identified by ``ast_id`` (plus branch path) resolve the
cursor's next vertex among the current vertex's children.  Because
functions are inlined into the CST at every call site, the same ``ast_id``
may appear in several subtrees; the cursor's *parent context* plus ordered
left-to-right matching disambiguates (see
:class:`repro.core.intra.IntraProcessCompressor`).
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from typing import Iterator

ROOT = "root"
LOOP = "loop"
BRANCH = "branch"
CALL = "call"  # MPI invocation leaf
FUNC = "func"  # user-defined function leaf (intermediate trees only)

_KINDS = (ROOT, LOOP, BRANCH, CALL, FUNC)


@dataclass
class CSTNode:
    kind: str
    ast_id: int | None = None
    name: str | None = None  # callee name for call/func leaves
    line: int = 0
    branch_path: int | None = None  # for branch vertices: 0 = then, 1 = else
    gid: int = -1  # assigned in pre-order by assign_gids()
    children: list["CSTNode"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown CST vertex kind {self.kind!r}")

    # -- traversal ---------------------------------------------------------

    def preorder(self) -> Iterator["CSTNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def size(self) -> int:
        return sum(1 for _ in self.preorder())

    def preorder_with_parent(
        self,
    ) -> Iterator[tuple["CSTNode", "CSTNode | None"]]:
        """Pre-order traversal yielding ``(node, parent)`` pairs — the
        walk the invariant checker uses to validate parent/child arity
        without materializing a parent map."""
        stack: list[tuple[CSTNode, CSTNode | None]] = [(self, None)]
        while stack:
            node, parent = stack.pop()
            yield node, parent
            for child in reversed(node.children):
                stack.append((child, node))

    def leaves(self) -> Iterator["CSTNode"]:
        for node in self.preorder():
            if not node.children and node.kind in (CALL, FUNC):
                yield node

    def find_gid(self, gid: int) -> "CSTNode | None":
        for node in self.preorder():
            if node.gid == gid:
                return node
        return None

    # -- structure ----------------------------------------------------------

    def copy(self) -> "CSTNode":
        return CSTNode(
            kind=self.kind,
            ast_id=self.ast_id,
            name=self.name,
            line=self.line,
            branch_path=self.branch_path,
            gid=self.gid,
            children=[c.copy() for c in self.children],
        )

    def structurally_equal(self, other: "CSTNode") -> bool:
        """Equality on everything except GIDs (used by merge sanity checks)."""
        if (
            self.kind != other.kind
            or self.ast_id != other.ast_id
            or self.name != other.name
            or self.branch_path != other.branch_path
            or len(self.children) != len(other.children)
        ):
            return False
        return all(a.structurally_equal(b) for a, b in zip(self.children, other.children))

    def pretty(self, indent: int = 0) -> str:
        label = self.kind
        if self.name:
            label += f" {self.name}"
        if self.branch_path is not None:
            label += f" path={self.branch_path}"
        lines = [f"{'  ' * indent}{self.gid}:{label}"]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


def assign_gids(root: CSTNode) -> None:
    """Assign pre-order GIDs starting from 0 at the root (paper §III-A)."""
    for gid, node in enumerate(root.preorder()):
        node.gid = gid


def prune(root: CSTNode) -> CSTNode:
    """Pruning pass (paper §III-B): iteratively delete leaf vertices that are
    not MPI invocations until every leaf is an MPI invocation.

    The root itself always survives, even for a program with no MPI calls.
    Returns ``root`` for chaining.  GIDs must be (re-)assigned afterwards.
    """
    changed = True
    while changed:
        changed = False
        # Iterative DFS, pruning bottom-up within a single pass.
        stack: list[tuple[CSTNode, bool]] = [(root, False)]
        while stack:
            node, processed = stack.pop()
            if not processed:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))
            else:
                before = len(node.children)
                node.children = [
                    c for c in node.children if c.children or c.kind == CALL
                ]
                if len(node.children) != before:
                    changed = True
    return root


# --------------------------------------------------------------------------
# Serialization — the paper stores the CST "in a compressed text file".
# We use a JSON line format wrapped in gzip.
# --------------------------------------------------------------------------


def _to_obj(node: CSTNode) -> dict:
    obj: dict = {"k": node.kind, "g": node.gid}
    if node.ast_id is not None:
        obj["a"] = node.ast_id
    if node.name is not None:
        obj["n"] = node.name
    if node.line:
        obj["l"] = node.line
    if node.branch_path is not None:
        obj["p"] = node.branch_path
    if node.children:
        obj["c"] = [_to_obj(c) for c in node.children]
    return obj


def _from_obj(obj: dict) -> CSTNode:
    return CSTNode(
        kind=obj["k"],
        gid=obj.get("g", -1),
        ast_id=obj.get("a"),
        name=obj.get("n"),
        line=obj.get("l", 0),
        branch_path=obj.get("p"),
        children=[_from_obj(c) for c in obj.get("c", [])],
    )


def dumps(root: CSTNode) -> bytes:
    """Serialize a CST to compressed bytes."""
    text = json.dumps(_to_obj(root), separators=(",", ":"))
    return gzip.compress(text.encode("utf-8"), compresslevel=6)


def loads(data: bytes) -> CSTNode:
    """Inverse of :func:`dumps`."""
    return _from_obj(json.loads(gzip.decompress(data).decode("utf-8")))


def save(root: CSTNode, path: str) -> None:
    with open(path, "wb") as fh:
        fh.write(dumps(root))


def load(path: str) -> CSTNode:
    with open(path, "rb") as fh:
        return loads(fh.read())
