"""CYPRESS static analysis module: CST extraction at compile time."""

from .cst import CSTNode, ROOT, LOOP, BRANCH, CALL, FUNC, assign_gids, prune
from .inter import build_program_cst, StaticAnalysisResult
from .instrument import compile_minimpi, CompiledProgram

__all__ = [
    "CSTNode",
    "ROOT",
    "LOOP",
    "BRANCH",
    "CALL",
    "FUNC",
    "assign_gids",
    "prune",
    "build_program_cst",
    "StaticAnalysisResult",
    "compile_minimpi",
    "CompiledProgram",
]
