"""Trace-legality checks for MiniMPI programs.

CYPRESS's runtime cursor assumes that the marker stream (emitted by the
AST-walking interpreter) and the CST (derived from the CFG) agree on
structure.  Early exits break that agreement: with ``if (x) continue;``
the CFG places the rest of the loop body under the branch's untaken path,
while the interpreter's markers close the branch before executing it.

Rather than approximate, the compiler rejects the problematic patterns up
front — in any function that (transitively) performs MPI communication:

* ``break`` and ``continue`` are forbidden;
* ``return`` is allowed only where no MPI communication can execute after
  it in the same function activation (this admits the guard-clause pattern
  of the paper's recursive example, Fig. 8: ``if (num == 0) return;``);
* loop conditions may not call MPI intrinsics or MPI-performing functions
  (their evaluation count is iterations+1, which desynchronises leaf
  visit counting).

Functions that perform no communication are unrestricted.
"""

from __future__ import annotations

from repro.minilang import ast_nodes as A
from repro.minilang.ast_nodes import walk
from repro.minilang.builtins import MPI_INTRINSICS


class CompileError(Exception):
    """A MiniMPI program is not legal for CYPRESS tracing."""


def functions_with_mpi(program: A.Program) -> set[str]:
    """Names of functions that transitively contain MPI intrinsics."""
    direct: set[str] = set()
    calls: dict[str, set[str]] = {}
    user = set(program.functions)
    for name, func in program.functions.items():
        callees: set[str] = set()
        for node in walk(func):
            if isinstance(node, A.Call):
                if node.name in MPI_INTRINSICS:
                    direct.add(name)
                elif node.name in user:
                    callees.add(node.name)
        calls[name] = callees
    # Propagate up the call graph to a fixpoint.
    result = set(direct)
    changed = True
    while changed:
        changed = False
        for name, callees in calls.items():
            if name not in result and callees & result:
                result.add(name)
                changed = True
    return result


def _expr_calls_mpi(expr: A.Expr, mpi_funcs: set[str]) -> bool:
    for node in walk(expr):
        if isinstance(node, A.Call) and (
            node.name in MPI_INTRINSICS or node.name in mpi_funcs
        ):
            return True
    return False


def _stmt_has_mpi(stmt: A.Stmt, mpi_funcs: set[str]) -> bool:
    for node in walk(stmt):
        if isinstance(node, A.Call) and (
            node.name in MPI_INTRINSICS or node.name in mpi_funcs
        ):
            return True
    return False


def _check_returns(
    name: str, stmts: list[A.Stmt], mpi_after: bool, mpi_funcs: set[str]
) -> None:
    """Reject any ``return`` that has MPI-relevant code after it."""
    # Walk backwards, tracking whether MPI occurs later in this list.
    follows = mpi_after
    for stmt in reversed(stmts):
        if isinstance(stmt, A.Return):
            if follows:
                raise CompileError(
                    f"{name}(): 'return' at line {stmt.line} with MPI "
                    "communication after it is not traceable"
                )
        elif isinstance(stmt, A.If):
            _check_returns(name, stmt.then_body, follows, mpi_funcs)
            _check_returns(name, stmt.else_body, follows, mpi_funcs)
        elif isinstance(stmt, (A.For, A.While)):
            # A return inside a loop exits the function, so only code after
            # (and the current iteration's tail, covered by the body walk
            # with the body's own trailing MPI) matters.
            _check_returns(name, stmt.body, follows, mpi_funcs)
        if _stmt_has_mpi(stmt, mpi_funcs):
            follows = True


def check_trace_legality(program: A.Program) -> None:
    """Raise :class:`CompileError` on patterns CYPRESS cannot trace exactly."""
    mpi_funcs = functions_with_mpi(program)
    for name, func in program.functions.items():
        if name not in mpi_funcs:
            continue
        for node in walk(func):
            if isinstance(node, A.Break):
                raise CompileError(
                    f"{name}(): 'break' at line {node.line} inside an "
                    "MPI-performing function is not traceable"
                )
            if isinstance(node, A.Continue):
                raise CompileError(
                    f"{name}(): 'continue' at line {node.line} inside an "
                    "MPI-performing function is not traceable"
                )
            if isinstance(node, (A.For, A.While)) and node.cond is not None:
                if _expr_calls_mpi(node.cond, mpi_funcs):
                    raise CompileError(
                        f"{name}(): MPI call in loop condition at line "
                        f"{node.line} is not traceable"
                    )
        _check_returns(name, func.body, False, mpi_funcs)
