"""Tree-walking interpreter for MiniMPI programs.

Each rank runs one :class:`Interpreter` as a generator: evaluation methods
are generators chained with ``yield from``, so a blocking MPI operation
deep inside an expression suspends the whole rank until the runtime
scheduler resumes it.

When given an :class:`InstrumentationPlan` (produced by the static
analysis), the interpreter emits the paper's ``PMPI_COMM_Structure`` /
``..._Exit`` markers — loop push/iter/pop, branch enter/exit, and
recursion pseudo-loop enter/exit — to the runtime's trace sink, but only
for control structures that survived CST pruning (selective bracketing).

Language semantics notes:

* integers are arbitrary-precision; division and modulo truncate toward
  zero (C semantics);
* ``&&`` / ``||`` evaluate **both** operands (no short-circuit), keeping
  the CFG's call ordering exact — MiniMPI programs that want conditional
  calls use ``if``;
* arrays are reference values (needed for ``mpi_waitall(reqs, n)``);
* there is one flat scope per function call; ``var`` re-declaration
  overwrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from . import ast_nodes as A
from .builtins import (
    ALL_BUILTINS,
    COMPUTE_BUILTINS,
    MPI_INTRINSICS,
    MPI_QUERIES,
)


class InterpError(Exception):
    """Runtime error inside a MiniMPI program."""


@dataclass(frozen=True)
class InstrumentationPlan:
    """What the static phase tells the interpreter to instrument."""

    instrumented_ast_ids: frozenset[int] = frozenset()
    recursive_pseudo: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_static(cls, result) -> "InstrumentationPlan":
        return cls(
            instrumented_ast_ids=result.instrumented_ast_ids,
            recursive_pseudo=dict(result.recursive_pseudo),
        )


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value) -> None:
        self.value = value


def _has_call(expr: A.Expr) -> bool:
    """True if evaluating ``expr`` may invoke a function (and therefore
    must run through the generator evaluation path).  Cached per node —
    call-free expressions (the vast majority: loop bounds, subscripts,
    conditions) take a plain recursive fast path with no generator
    overhead."""
    cached = getattr(expr, "_mm_has_call", None)
    if cached is not None:
        return cached
    if isinstance(expr, A.Call):
        result = True
    elif isinstance(expr, A.Binary):
        result = _has_call(expr.left) or _has_call(expr.right)
    elif isinstance(expr, A.Unary):
        result = _has_call(expr.operand)
    elif isinstance(expr, A.Index):
        result = _has_call(expr.index)
    else:
        result = False
    expr._mm_has_call = result
    return result


def _cdiv(a: int, b: int) -> int:
    if b == 0:
        raise InterpError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _cmod(a: int, b: int) -> int:
    if b == 0:
        raise InterpError("modulo by zero")
    return a - _cdiv(a, b) * b


class Interpreter:
    """Executes one MiniMPI program on one rank."""

    def __init__(
        self,
        program: A.Program,
        comm,
        defines: dict[str, int] | None = None,
        plan: InstrumentationPlan | None = None,
        output: list[str] | None = None,
        max_steps: int | None = None,
    ) -> None:
        self.program = program
        self.comm = comm
        self.defines = dict(defines or {})
        self.plan = plan
        self.output = output
        self._tracer = comm.runtime.tracer
        self._emit_markers = plan is not None and self._tracer.wants_markers
        self._steps = 0
        self._max_steps = max_steps
        self._call_depth = 0

    # ------------------------------------------------------------------

    def run(self) -> Iterator[None]:
        """Top-level generator: execute ``main()``."""
        result = yield from self._call_function("main", [])
        return result

    # ------------------------------------------------------------------

    def _tick(self, line: int) -> None:
        self._steps += 1
        if self._max_steps is not None and self._steps > self._max_steps:
            raise InterpError(f"step limit {self._max_steps} exceeded at line {line}")

    def _call_function(self, name: str, args: list):
        func = self.program.functions.get(name)
        if func is None:
            raise InterpError(f"call to undefined function {name!r}")
        if len(args) != len(func.params):
            raise InterpError(
                f"{name}() takes {len(func.params)} argument(s), got {len(args)}"
            )
        self._call_depth += 1
        # Each MiniMPI call level costs several Python frames when the
        # generator chain resumes, so stay well below sys.getrecursionlimit.
        if self._call_depth > 100:
            raise InterpError(f"call depth limit exceeded in {name}()")
        frame = dict(zip(func.params, args))
        pseudo = None
        if self._emit_markers:
            pseudo = self.plan.recursive_pseudo.get(name)
        if pseudo is not None:
            self._tracer.on_recurse_enter(self.comm.rank, pseudo)
        try:
            value = 0
            try:
                yield from self._exec_block(func.body, frame)
            except _Return as ret:
                value = ret.value
            return value
        finally:
            if pseudo is not None:
                self._tracer.on_recurse_exit(self.comm.rank, pseudo)
            self._call_depth -= 1

    # -- statements -----------------------------------------------------

    def _exec_block(self, stmts: list[A.Stmt], frame: dict):
        for stmt in stmts:
            yield from self._exec_stmt(stmt, frame)

    def _exec_stmt(self, stmt: A.Stmt, frame: dict):
        self._tick(stmt.line)
        if isinstance(stmt, A.Assign):
            if _has_call(stmt.value):
                value = yield from self._eval(stmt.value, frame)
            else:
                value = self._eval_pure(stmt.value, frame)
            if stmt.index is None:
                frame[stmt.name] = value
            else:
                index = (
                    self._eval_pure(stmt.index, frame)
                    if not _has_call(stmt.index)
                    else (yield from self._eval(stmt.index, frame))
                )
                arr = self._lookup(stmt.name, frame, stmt.line)
                self._store_elem(arr, index, value, stmt)
            return
        if isinstance(stmt, A.ExprStmt):
            if _has_call(stmt.expr):
                yield from self._eval(stmt.expr, frame)
            else:
                self._eval_pure(stmt.expr, frame)
            return
        if isinstance(stmt, A.VarDecl):
            if stmt.size is not None:
                size = yield from self._eval(stmt.size, frame)
                if not isinstance(size, int) or size < 0:
                    raise InterpError(f"bad array size {size!r} at line {stmt.line}")
                frame[stmt.name] = [0] * size
            elif stmt.init is not None:
                frame[stmt.name] = yield from self._eval(stmt.init, frame)
            else:
                frame[stmt.name] = 0
            return
        if isinstance(stmt, A.Return):
            value = 0
            if stmt.value is not None:
                value = yield from self._eval(stmt.value, frame)
            raise _Return(value)
        if isinstance(stmt, A.Break):
            raise _Break()
        if isinstance(stmt, A.Continue):
            raise _Continue()
        if isinstance(stmt, A.If):
            yield from self._exec_if(stmt, frame)
            return
        if isinstance(stmt, (A.For, A.While)):
            yield from self._exec_loop(stmt, frame)
            return
        raise InterpError(f"unhandled statement {type(stmt).__name__}")

    def _exec_if(self, stmt: A.If, frame: dict):
        if _has_call(stmt.cond):
            cond = yield from self._eval(stmt.cond, frame)
        else:
            cond = self._eval_pure(stmt.cond, frame)
        path = 0 if cond else 1
        body = stmt.then_body if cond else stmt.else_body
        instrumented = (
            self._emit_markers and stmt.node_id in self.plan.instrumented_ast_ids
        )
        if instrumented:
            self._tracer.on_branch_enter(self.comm.rank, stmt.node_id, path)
        try:
            yield from self._exec_block(body, frame)
        finally:
            if instrumented:
                self._tracer.on_branch_exit(self.comm.rank, stmt.node_id)

    def _exec_loop(self, stmt: A.For | A.While, frame: dict):
        is_for = isinstance(stmt, A.For)
        if is_for and stmt.init is not None:
            yield from self._exec_stmt(stmt.init, frame)
        instrumented = (
            self._emit_markers and stmt.node_id in self.plan.instrumented_ast_ids
        )
        if instrumented:
            self._tracer.on_loop_push(self.comm.rank, stmt.node_id)
        try:
            cond_pure = stmt.cond is not None and not _has_call(stmt.cond)
            while True:
                self._tick(stmt.line)
                if stmt.cond is not None:
                    if cond_pure:
                        cond = self._eval_pure(stmt.cond, frame)
                    else:
                        cond = yield from self._eval(stmt.cond, frame)
                    if not cond:
                        break
                if instrumented:
                    self._tracer.on_loop_iter(self.comm.rank, stmt.node_id)
                try:
                    yield from self._exec_block(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if is_for and stmt.step is not None:
                    yield from self._exec_stmt(stmt.step, frame)
        finally:
            if instrumented:
                self._tracer.on_loop_pop(self.comm.rank, stmt.node_id)

    # -- expressions ---------------------------------------------------------

    def _lookup(self, name: str, frame: dict, line: int):
        if name in frame:
            return frame[name]
        if name in self.defines:
            return self.defines[name]
        raise InterpError(f"undefined variable {name!r} at line {line}")

    @staticmethod
    def _store_elem(arr, index, value, stmt: A.Assign) -> None:
        if not isinstance(arr, list):
            raise InterpError(f"{stmt.name!r} is not an array at line {stmt.line}")
        if not (0 <= index < len(arr)):
            raise InterpError(
                f"index {index} out of bounds for {stmt.name!r}"
                f"[{len(arr)}] at line {stmt.line}"
            )
        arr[index] = value

    def _eval(self, expr: A.Expr, frame: dict):
        """Generator evaluation path (needed when calls may block)."""
        if not _has_call(expr):
            return self._eval_pure(expr, frame)
        if isinstance(expr, A.Index):
            index = yield from self._eval(expr.index, frame)
            return self._index_load(expr, index, frame)
        if isinstance(expr, A.Unary):
            value = yield from self._eval(expr.operand, frame)
            if expr.op == "-":
                return -value
            return 0 if value else 1
        if isinstance(expr, A.Binary):
            left = yield from self._eval(expr.left, frame)
            right = yield from self._eval(expr.right, frame)
            return self._binop(expr.op, left, right, expr.line)
        if isinstance(expr, A.Call):
            result = yield from self._eval_call(expr, frame)
            return result
        raise InterpError(f"unhandled expression {type(expr).__name__}")

    def _eval_pure(self, expr: A.Expr, frame: dict):
        """Fast path: plain recursion for call-free expressions."""
        if isinstance(expr, A.VarRef):
            name = expr.name
            if name in frame:
                return frame[name]
            if name in self.defines:
                return self.defines[name]
            raise InterpError(f"undefined variable {name!r} at line {expr.line}")
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.Binary):
            left = self._eval_pure(expr.left, frame)
            right = self._eval_pure(expr.right, frame)
            return self._binop(expr.op, left, right, expr.line)
        if isinstance(expr, A.Index):
            return self._index_load(expr, self._eval_pure(expr.index, frame), frame)
        if isinstance(expr, A.Unary):
            value = self._eval_pure(expr.operand, frame)
            if expr.op == "-":
                return -value
            return 0 if value else 1
        if isinstance(expr, A.StrLit):
            return expr.value
        raise InterpError(f"unhandled expression {type(expr).__name__}")

    def _index_load(self, expr: A.Index, index, frame: dict):
        arr = self._lookup(expr.name, frame, expr.line)
        if not isinstance(arr, list):
            raise InterpError(f"{expr.name!r} is not an array at line {expr.line}")
        if not (0 <= index < len(arr)):
            raise InterpError(
                f"index {index} out of bounds for {expr.name!r}"
                f"[{len(arr)}] at line {expr.line}"
            )
        return arr[index]

    @staticmethod
    def _binop(op: str, left, right, line: int):
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return _cdiv(left, right)
        if op == "%":
            return _cmod(left, right)
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "&&":
            return 1 if (left and right) else 0
        if op == "||":
            return 1 if (left or right) else 0
        raise InterpError(f"unknown operator {op!r} at line {line}")

    def _eval_call(self, expr: A.Call, frame: dict):
        name = expr.name
        args = []
        for arg in expr.args:
            if _has_call(arg):
                value = yield from self._eval(arg, frame)
            else:
                value = self._eval_pure(arg, frame)
            args.append(value)
        if name in self.program.functions:
            result = yield from self._call_function(name, args)
            return result
        if name in MPI_INTRINSICS:
            arity = MPI_INTRINSICS[name][0]
            if len(args) != arity:
                raise InterpError(
                    f"{name}() takes {arity} argument(s), got {len(args)} "
                    f"at line {expr.line}"
                )
            result = yield from self.comm.call(name, args)
            return result
        if name in MPI_QUERIES:
            arity = MPI_QUERIES[name]
            if len(args) != arity:
                raise InterpError(
                    f"{name}() takes {arity} argument(s), got {len(args)} "
                    f"at line {expr.line}"
                )
            return self._query(name, args)
        if name in COMPUTE_BUILTINS:
            return self._compute_builtin(name, args, expr.line)
        raise InterpError(f"call to unknown function {name!r} at line {expr.line}")

    def _query(self, name: str, args: list):
        if name == "mpi_comm_rank":
            return self.comm.rank
        if name == "mpi_comm_size":
            return self.comm.runtime.nprocs
        if name == "mpi_comm_rank_on":
            return self.comm.runtime.collectives.comms.comm_rank(
                args[0], self.comm.rank
            )
        if name == "mpi_comm_size_on":
            return self.comm.runtime.collectives.comms.size(args[0])
        if name == "mpi_wtime":
            return int(self.comm.clock)
        raise InterpError(f"unknown query {name!r}")

    def _compute_builtin(self, name: str, args: list, line: int):
        if name == "compute":
            (us,) = args
            if us < 0:
                raise InterpError(f"compute() with negative time at line {line}")
            self.comm.clock += us
            return 0
        if name == "print":
            if self.output is not None:
                self.output.append(" ".join(str(a) for a in args))
            return 0
        if name == "min":
            return min(args[0], args[1])
        if name == "max":
            return max(args[0], args[1])
        if name == "abs":
            return abs(args[0])
        if name == "ilog2":
            (n,) = args
            if n < 1:
                raise InterpError(f"ilog2 of {n} at line {line}")
            return n.bit_length() - 1
        if name == "pow2":
            (n,) = args
            if n < 0 or n > 62:
                raise InterpError(f"pow2 of {n} at line {line}")
            return 1 << n
        if name == "isqrt":
            (n,) = args
            if n < 0:
                raise InterpError(f"isqrt of {n} at line {line}")
            return int(n**0.5 + 1e-9)
        raise InterpError(f"unknown builtin {name!r}")
