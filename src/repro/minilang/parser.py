"""Recursive-descent parser for the MiniMPI language.

Grammar (EBNF, whitespace-insensitive)::

    program     := funcdef*
    funcdef     := 'func' IDENT '(' [IDENT (',' IDENT)*] ')' block
    block       := '{' stmt* '}'
    stmt        := vardecl | ifstmt | forstmt | whilestmt | returnstmt
                 | 'break' ';' | 'continue' ';' | simplestmt ';'
    vardecl     := 'var' IDENT ['[' expr ']'] ['=' expr] ';'
    ifstmt      := 'if' '(' expr ')' block ['else' (block | ifstmt)]
    forstmt     := 'for' '(' [simplestmt] ';' [expr] ';' [simplestmt] ')' block
    whilestmt   := 'while' '(' expr ')' block
    returnstmt  := 'return' [expr] ';'
    simplestmt  := IDENT ['[' expr ']'] '=' expr     (assignment)
                 | expr                              (expression statement)
    expr        := orexpr
    orexpr      := andexpr ('||' andexpr)*
    andexpr     := cmpexpr ('&&' cmpexpr)*
    cmpexpr     := addexpr (('=='|'!='|'<'|'<='|'>'|'>=') addexpr)?
    addexpr     := mulexpr (('+'|'-') mulexpr)*
    mulexpr     := unary (('*'|'/'|'%') unary)*
    unary       := ('-'|'!') unary | primary
    primary     := INT | STRING | IDENT ['(' args ')' | '[' expr ']']
                 | '(' expr ')'
"""

from __future__ import annotations

from . import ast_nodes as A
from .lexer import tokenize
from .tokens import Token, TokenType as T


class ParseError(Exception):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} at {token.line}:{token.col} (got {token.value!r})")
        self.token = token


class Parser:
    def __init__(self, tokens: list[Token], source_name: str = "<minimpi>") -> None:
        self._tokens = tokens
        self._pos = 0
        self._next_id = 0
        self._source_name = source_name

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _at(self, ttype: T) -> bool:
        return self._peek().type is ttype

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.type is not T.EOF:
            self._pos += 1
        return tok

    def _expect(self, ttype: T) -> Token:
        if not self._at(ttype):
            raise ParseError(f"expected {ttype.name}", self._peek())
        return self._advance()

    def _accept(self, ttype: T) -> Token | None:
        if self._at(ttype):
            return self._advance()
        return None

    def _nid(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> A.Program:
        program = A.Program(node_id=0, line=1, source_name=self._source_name)
        while not self._at(T.EOF):
            fd = self._funcdef()
            if fd.name in program.functions:
                raise ParseError(f"duplicate function {fd.name!r}", self._peek())
            program.functions[fd.name] = fd
        return program

    def _funcdef(self) -> A.FuncDef:
        kw = self._expect(T.FUNC)
        name = self._expect(T.IDENT).value
        self._expect(T.LPAREN)
        params: list[str] = []
        if not self._at(T.RPAREN):
            params.append(self._expect(T.IDENT).value)
            while self._accept(T.COMMA):
                params.append(self._expect(T.IDENT).value)
        self._expect(T.RPAREN)
        body = self._block()
        return A.FuncDef(node_id=self._nid(), line=kw.line, name=name, params=params, body=body)

    # -- statements -----------------------------------------------------------

    def _block(self) -> list[A.Stmt]:
        self._expect(T.LBRACE)
        stmts: list[A.Stmt] = []
        while not self._at(T.RBRACE):
            stmts.append(self._stmt())
        self._expect(T.RBRACE)
        return stmts

    def _stmt(self) -> A.Stmt:
        tok = self._peek()
        if tok.type is T.VAR:
            return self._vardecl()
        if tok.type is T.IF:
            return self._ifstmt()
        if tok.type is T.FOR:
            return self._forstmt()
        if tok.type is T.WHILE:
            return self._whilestmt()
        if tok.type is T.RETURN:
            self._advance()
            value = None if self._at(T.SEMI) else self._expr()
            self._expect(T.SEMI)
            return A.Return(node_id=self._nid(), line=tok.line, value=value)
        if tok.type is T.BREAK:
            self._advance()
            self._expect(T.SEMI)
            return A.Break(node_id=self._nid(), line=tok.line)
        if tok.type is T.CONTINUE:
            self._advance()
            self._expect(T.SEMI)
            return A.Continue(node_id=self._nid(), line=tok.line)
        stmt = self._simplestmt()
        self._expect(T.SEMI)
        return stmt

    def _vardecl(self) -> A.VarDecl:
        kw = self._expect(T.VAR)
        name = self._expect(T.IDENT).value
        size = None
        if self._accept(T.LBRACKET):
            size = self._expr()
            self._expect(T.RBRACKET)
        init = None
        if self._accept(T.ASSIGN):
            init = self._expr()
        self._expect(T.SEMI)
        return A.VarDecl(node_id=self._nid(), line=kw.line, name=name, size=size, init=init)

    def _ifstmt(self) -> A.If:
        kw = self._expect(T.IF)
        self._expect(T.LPAREN)
        cond = self._expr()
        self._expect(T.RPAREN)
        then_body = self._block()
        else_body: list[A.Stmt] = []
        if self._accept(T.ELSE):
            if self._at(T.IF):
                else_body = [self._ifstmt()]
            else:
                else_body = self._block()
        return A.If(
            node_id=self._nid(), line=kw.line, cond=cond,
            then_body=then_body, else_body=else_body,
        )

    def _forstmt(self) -> A.For:
        kw = self._expect(T.FOR)
        self._expect(T.LPAREN)
        init = None if self._at(T.SEMI) else self._for_clause()
        self._expect(T.SEMI)
        cond = None if self._at(T.SEMI) else self._expr()
        self._expect(T.SEMI)
        step = None if self._at(T.RPAREN) else self._for_clause()
        self._expect(T.RPAREN)
        body = self._block()
        return A.For(
            node_id=self._nid(), line=kw.line,
            init=init, cond=cond, step=step, body=body,
        )

    def _for_clause(self) -> A.Stmt:
        if self._at(T.VAR):
            kw = self._advance()
            name = self._expect(T.IDENT).value
            init = None
            if self._accept(T.ASSIGN):
                init = self._expr()
            return A.VarDecl(node_id=self._nid(), line=kw.line, name=name, init=init)
        return self._simplestmt()

    def _whilestmt(self) -> A.While:
        kw = self._expect(T.WHILE)
        self._expect(T.LPAREN)
        cond = self._expr()
        self._expect(T.RPAREN)
        body = self._block()
        return A.While(node_id=self._nid(), line=kw.line, cond=cond, body=body)

    def _simplestmt(self) -> A.Stmt:
        tok = self._peek()
        # assignment: IDENT ('[' expr ']')? '=' ...
        if tok.type is T.IDENT:
            if self._peek(1).type is T.ASSIGN:
                name = self._advance().value
                self._advance()  # '='
                value = self._expr()
                return A.Assign(node_id=self._nid(), line=tok.line, name=name, index=None, value=value)
            if self._peek(1).type is T.LBRACKET:
                # could be `a[i] = e` or an expression `a[i] + ...`; try index-assign
                save = self._pos
                name = self._advance().value
                self._advance()  # '['
                index = self._expr()
                self._expect(T.RBRACKET)
                if self._accept(T.ASSIGN):
                    value = self._expr()
                    return A.Assign(node_id=self._nid(), line=tok.line, name=name, index=index, value=value)
                self._pos = save  # not an assignment — re-parse as expression
        expr = self._expr()
        return A.ExprStmt(node_id=self._nid(), line=tok.line, expr=expr)

    # -- expressions ------------------------------------------------------------

    def _expr(self) -> A.Expr:
        return self._orexpr()

    def _orexpr(self) -> A.Expr:
        left = self._andexpr()
        while self._at(T.OR):
            tok = self._advance()
            right = self._andexpr()
            left = A.Binary(node_id=self._nid(), line=tok.line, op="||", left=left, right=right)
        return left

    def _andexpr(self) -> A.Expr:
        left = self._cmpexpr()
        while self._at(T.AND):
            tok = self._advance()
            right = self._cmpexpr()
            left = A.Binary(node_id=self._nid(), line=tok.line, op="&&", left=left, right=right)
        return left

    _CMP = {T.EQ: "==", T.NE: "!=", T.LT: "<", T.LE: "<=", T.GT: ">", T.GE: ">="}

    def _cmpexpr(self) -> A.Expr:
        left = self._addexpr()
        if self._peek().type in self._CMP:
            tok = self._advance()
            op = self._CMP[tok.type]
            right = self._addexpr()
            left = A.Binary(node_id=self._nid(), line=tok.line, op=op, left=left, right=right)
        return left

    def _addexpr(self) -> A.Expr:
        left = self._mulexpr()
        while self._peek().type in (T.PLUS, T.MINUS):
            tok = self._advance()
            right = self._mulexpr()
            left = A.Binary(node_id=self._nid(), line=tok.line, op=tok.value, left=left, right=right)
        return left

    def _mulexpr(self) -> A.Expr:
        left = self._unary()
        while self._peek().type in (T.STAR, T.SLASH, T.PERCENT):
            tok = self._advance()
            right = self._unary()
            left = A.Binary(node_id=self._nid(), line=tok.line, op=tok.value, left=left, right=right)
        return left

    def _unary(self) -> A.Expr:
        tok = self._peek()
        if tok.type in (T.MINUS, T.NOT):
            self._advance()
            operand = self._unary()
            return A.Unary(node_id=self._nid(), line=tok.line, op=tok.value, operand=operand)
        return self._primary()

    def _primary(self) -> A.Expr:
        tok = self._peek()
        if tok.type is T.INT:
            self._advance()
            return A.IntLit(node_id=self._nid(), line=tok.line, value=int(tok.value))
        if tok.type is T.STRING:
            self._advance()
            return A.StrLit(node_id=self._nid(), line=tok.line, value=tok.value)
        if tok.type is T.IDENT:
            name = self._advance().value
            if self._accept(T.LPAREN):
                args: list[A.Expr] = []
                if not self._at(T.RPAREN):
                    args.append(self._expr())
                    while self._accept(T.COMMA):
                        args.append(self._expr())
                self._expect(T.RPAREN)
                return A.Call(node_id=self._nid(), line=tok.line, name=name, args=args)
            if self._accept(T.LBRACKET):
                index = self._expr()
                self._expect(T.RBRACKET)
                return A.Index(node_id=self._nid(), line=tok.line, name=name, index=index)
            return A.VarRef(node_id=self._nid(), line=tok.line, name=name)
        if tok.type is T.LPAREN:
            self._advance()
            expr = self._expr()
            self._expect(T.RPAREN)
            return expr
        raise ParseError("expected expression", tok)


def parse(source: str, source_name: str = "<minimpi>") -> A.Program:
    """Parse MiniMPI source text into a :class:`~repro.minilang.ast_nodes.Program`."""
    return Parser(tokenize(source), source_name).parse_program()
