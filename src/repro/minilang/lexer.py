"""Hand-written lexer for the MiniMPI language."""

from __future__ import annotations

from .tokens import KEYWORDS, Token, TokenType


class LexError(Exception):
    """Raised on an unrecognised character or malformed literal."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} at {line}:{col}")
        self.line = line
        self.col = col


_TWO_CHAR_OPS = {
    "==": TokenType.EQ,
    "!=": TokenType.NE,
    "<=": TokenType.LE,
    ">=": TokenType.GE,
    "&&": TokenType.AND,
    "||": TokenType.OR,
}

_ONE_CHAR_OPS = {
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "=": TokenType.ASSIGN,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.NOT,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMI,
}


def tokenize(source: str) -> list[Token]:
    """Convert MiniMPI source text into a token list ending with EOF.

    Supports ``//`` line comments and ``/* */`` block comments.
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance()
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                advance()
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "*":
            start_line, start_col = line, col
            advance(2)
            while i + 1 < n and not (source[i] == "*" and source[i + 1] == "/"):
                advance()
            if i + 1 >= n:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch.isdigit():
            start = i
            start_line, start_col = line, col
            while i < n and source[i].isdigit():
                advance()
            tokens.append(Token(TokenType.INT, source[start:i], start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance()
            text = source[start:i]
            ttype = KEYWORDS.get(text, TokenType.IDENT)
            tokens.append(Token(ttype, text, start_line, start_col))
            continue
        if ch == '"':
            start_line, start_col = line, col
            advance()
            start = i
            while i < n and source[i] != '"':
                if source[i] == "\n":
                    raise LexError("unterminated string", start_line, start_col)
                advance()
            if i >= n:
                raise LexError("unterminated string", start_line, start_col)
            text = source[start:i]
            advance()
            tokens.append(Token(TokenType.STRING, text, start_line, start_col))
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(_TWO_CHAR_OPS[two], two, line, col))
            advance(2)
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(_ONE_CHAR_OPS[ch], ch, line, col))
            advance()
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token(TokenType.EOF, "", line, col))
    return tokens
