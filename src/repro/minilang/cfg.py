"""Control-flow graph construction for MiniMPI functions.

The CYPRESS static module works on a compiler IR: per-procedure CFGs of
basic blocks, over which it runs dominator-based loop detection and branch
identification (paper §III-A).  This module lowers the MiniMPI AST into
such CFGs.

Each control structure records the AST node id it came from (``ast_id``) —
the analogue of LLVM debug/loop metadata — which is how the instrumentation
pass later attaches CST GIDs back onto the executing program.

Block kinds:

* ``entry`` / ``exit`` — unique function entry and exit.
* ``loop_header`` — evaluates a loop condition; has a back edge from the
  loop latch and two successors (body, loop exit).  For a MiniMPI
  ``for``/``while`` this is the only block targeted by a back edge.
* ``branch`` — ends in a two-way conditional from an ``if``.
* ``latch`` — the loop back-edge source (holds the ``for`` step).
* ``plain`` — straight-line code.

Function calls (MPI intrinsics and user-defined functions alike) appear as
ordered :class:`Invocation` entries inside blocks, in evaluation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as A


@dataclass(frozen=True)
class Invocation:
    """A call site recorded in a basic block."""

    name: str
    ast_id: int
    line: int


@dataclass
class BasicBlock:
    bid: int
    kind: str = "plain"
    ast_id: int | None = None  # AST node id of the originating control structure
    invocations: list[Invocation] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inv = ",".join(i.name for i in self.invocations)
        return f"BB{self.bid}({self.kind}{':' + inv if inv else ''})->{self.succs}"


class CFG:
    """A per-function control-flow graph."""

    def __init__(self, func_name: str) -> None:
        self.func_name = func_name
        self.blocks: dict[int, BasicBlock] = {}
        self.entry: int = -1
        self.exit: int = -1
        self._next_bid = 0

    def new_block(self, kind: str = "plain", ast_id: int | None = None) -> BasicBlock:
        block = BasicBlock(bid=self._next_bid, kind=kind, ast_id=ast_id)
        self._next_bid += 1
        self.blocks[block.bid] = block
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
        if src not in self.blocks[dst].preds:
            self.blocks[dst].preds.append(src)

    def postorder(self) -> list[int]:
        """Blocks in post-order from the entry (unreachable blocks omitted)."""
        seen: set[int] = set()
        order: list[int] = []
        # Iterative DFS preserving successor order.
        stack: list[tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            bid, idx = stack[-1]
            succs = self.blocks[bid].succs
            if idx < len(succs):
                stack[-1] = (bid, idx + 1)
                nxt = succs[idx]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(bid)
        return order

    def reverse_postorder(self) -> list[int]:
        return list(reversed(self.postorder()))


class _Builder:
    """Lowers one function body into a CFG."""

    def __init__(self, func: A.FuncDef) -> None:
        self.cfg = CFG(func.name)
        self._func = func

    def build(self) -> CFG:
        cfg = self.cfg
        entry = cfg.new_block("entry")
        cfg.entry = entry.bid
        exit_block = cfg.new_block("exit")
        cfg.exit = exit_block.bid
        last = self._lower_stmts(self._func.body, entry, break_to=None, continue_to=None)
        if last is not None:
            cfg.add_edge(last.bid, cfg.exit)
        return cfg

    # ------------------------------------------------------------------

    def _lower_stmts(
        self,
        stmts: list[A.Stmt],
        current: BasicBlock | None,
        break_to: int | None,
        continue_to: int | None,
    ) -> BasicBlock | None:
        """Lower a statement list; return the open fall-through block
        (``None`` if control never falls through, e.g. after ``return``)."""
        for stmt in stmts:
            if current is None:  # unreachable code after return/break
                return None
            current = self._lower_stmt(stmt, current, break_to, continue_to)
        return current

    def _lower_stmt(
        self,
        stmt: A.Stmt,
        current: BasicBlock,
        break_to: int | None,
        continue_to: int | None,
    ) -> BasicBlock | None:
        cfg = self.cfg
        if isinstance(stmt, A.VarDecl):
            for e in (stmt.size, stmt.init):
                if e is not None:
                    self._collect_calls(e, current)
            return current
        if isinstance(stmt, A.Assign):
            if stmt.index is not None:
                self._collect_calls(stmt.index, current)
            self._collect_calls(stmt.value, current)
            return current
        if isinstance(stmt, A.ExprStmt):
            self._collect_calls(stmt.expr, current)
            return current
        if isinstance(stmt, A.Return):
            if stmt.value is not None:
                self._collect_calls(stmt.value, current)
            cfg.add_edge(current.bid, cfg.exit)
            return None
        if isinstance(stmt, A.Break):
            if break_to is None:
                raise ValueError(f"'break' outside loop at line {stmt.line}")
            cfg.add_edge(current.bid, break_to)
            return None
        if isinstance(stmt, A.Continue):
            if continue_to is None:
                raise ValueError(f"'continue' outside loop at line {stmt.line}")
            cfg.add_edge(current.bid, continue_to)
            return None
        if isinstance(stmt, A.If):
            return self._lower_if(stmt, current, break_to, continue_to)
        if isinstance(stmt, (A.For, A.While)):
            return self._lower_loop(stmt, current, break_to, continue_to)
        raise TypeError(f"unhandled statement {type(stmt).__name__}")

    def _lower_if(
        self,
        stmt: A.If,
        current: BasicBlock,
        break_to: int | None,
        continue_to: int | None,
    ) -> BasicBlock | None:
        cfg = self.cfg
        self._collect_calls(stmt.cond, current)
        # The condition lives at the end of `current`, which becomes the
        # branch block.
        current.kind = "branch"
        current.ast_id = stmt.node_id
        then_entry = cfg.new_block()
        cfg.add_edge(current.bid, then_entry.bid)
        then_end = self._lower_stmts(stmt.then_body, then_entry, break_to, continue_to)
        else_entry = cfg.new_block()
        cfg.add_edge(current.bid, else_entry.bid)
        else_end = self._lower_stmts(stmt.else_body, else_entry, break_to, continue_to)
        if then_end is None and else_end is None:
            return None
        join = cfg.new_block("join")
        if then_end is not None:
            cfg.add_edge(then_end.bid, join.bid)
        if else_end is not None:
            cfg.add_edge(else_end.bid, join.bid)
        return join

    def _lower_loop(
        self,
        stmt: A.For | A.While,
        current: BasicBlock,
        break_to: int | None,
        continue_to: int | None,
    ) -> BasicBlock:
        cfg = self.cfg
        is_for = isinstance(stmt, A.For)
        if is_for and stmt.init is not None:
            after = self._lower_stmt(stmt.init, current, break_to, continue_to)
            assert after is current, "for-init cannot alter control flow"
        header = cfg.new_block("loop_header", ast_id=stmt.node_id)
        cfg.add_edge(current.bid, header.bid)
        cond = stmt.cond
        if cond is not None:
            self._collect_calls(cond, header)
        body_entry = cfg.new_block()
        cfg.add_edge(header.bid, body_entry.bid)
        exit_block = cfg.new_block("join")
        cfg.add_edge(header.bid, exit_block.bid)
        latch = cfg.new_block("latch")
        body_end = self._lower_stmts(
            stmt.body, body_entry, break_to=exit_block.bid, continue_to=latch.bid
        )
        if body_end is not None:
            cfg.add_edge(body_end.bid, latch.bid)
        if is_for and stmt.step is not None:
            after = self._lower_stmt(stmt.step, latch, None, None)
            assert after is latch, "for-step cannot alter control flow"
        cfg.add_edge(latch.bid, header.bid)  # the back edge
        return exit_block

    # ------------------------------------------------------------------

    def _collect_calls(self, expr: A.Expr, block: BasicBlock) -> None:
        """Append all call sites inside ``expr`` to ``block`` in
        left-to-right evaluation order."""
        if isinstance(expr, (A.IntLit, A.StrLit, A.VarRef)):
            return
        if isinstance(expr, A.Index):
            self._collect_calls(expr.index, block)
            return
        if isinstance(expr, A.Unary):
            self._collect_calls(expr.operand, block)
            return
        if isinstance(expr, A.Binary):
            self._collect_calls(expr.left, block)
            self._collect_calls(expr.right, block)
            return
        if isinstance(expr, A.Call):
            for arg in expr.args:
                self._collect_calls(arg, block)
            block.invocations.append(
                Invocation(name=expr.name, ast_id=expr.node_id, line=expr.line)
            )
            return
        raise TypeError(f"unhandled expression {type(expr).__name__}")


def build_cfg(func: A.FuncDef) -> CFG:
    """Build the control-flow graph of one MiniMPI function."""
    return _Builder(func).build()


def build_all_cfgs(program: A.Program) -> dict[str, CFG]:
    """CFGs for every function in the program, keyed by function name."""
    return {name: build_cfg(func) for name, func in program.functions.items()}
