"""Token definitions for the MiniMPI language.

MiniMPI is the small C-like language this reproduction uses in place of the
C/Fortran sources the paper compiles with LLVM.  The token set is
deliberately small: integers, identifiers, keywords, arithmetic and
comparison operators, and punctuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    """All token categories produced by the lexer."""

    # literals / names
    INT = auto()
    IDENT = auto()
    STRING = auto()

    # keywords
    FUNC = auto()
    VAR = auto()
    IF = auto()
    ELSE = auto()
    FOR = auto()
    WHILE = auto()
    RETURN = auto()
    BREAK = auto()
    CONTINUE = auto()

    # operators
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    ASSIGN = auto()
    EQ = auto()
    NE = auto()
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    AND = auto()
    OR = auto()
    NOT = auto()

    # punctuation
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    COMMA = auto()
    SEMI = auto()

    EOF = auto()


KEYWORDS = {
    "func": TokenType.FUNC,
    "var": TokenType.VAR,
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "for": TokenType.FOR,
    "while": TokenType.WHILE,
    "return": TokenType.RETURN,
    "break": TokenType.BREAK,
    "continue": TokenType.CONTINUE,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``line`` and ``col`` are 1-based source coordinates used for error
    reporting and for tying AST nodes back to source locations (the
    equivalent of LLVM debug metadata used by the paper's pass).
    """

    type: TokenType
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.col})"
