"""MiniMPI: the small C-like language substrate (paper: C/Fortran + LLVM)."""

from .parser import parse
from .interp import Interpreter, InstrumentationPlan, InterpError
from .cfg import build_cfg, build_all_cfgs, CFG

__all__ = [
    "parse",
    "Interpreter",
    "InstrumentationPlan",
    "InterpError",
    "build_cfg",
    "build_all_cfgs",
    "CFG",
]
