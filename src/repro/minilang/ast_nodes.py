"""AST node definitions for the MiniMPI language.

Every node carries a ``node_id`` unique within its program and a source
``line``.  Control-structure node ids are the anchor the static analysis
uses to attach CST GIDs back onto the program (the moral equivalent of the
paper inserting ``PMPI_COMM_Structure`` markers at compile time).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    node_id: int
    line: int


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class IntLit(Node):
    value: int


@dataclass
class StrLit(Node):
    value: str


@dataclass
class VarRef(Node):
    name: str


@dataclass
class Index(Node):
    """Array element read: ``name[index]``."""

    name: str
    index: "Expr"


@dataclass
class Unary(Node):
    op: str  # '-' or '!'
    operand: "Expr"


@dataclass
class Binary(Node):
    op: str  # + - * / % == != < <= > >= && ||
    left: "Expr"
    right: "Expr"


@dataclass
class Call(Node):
    """Function call — either a user-defined function or a builtin
    (MPI intrinsics live in :mod:`repro.minilang.builtins`)."""

    name: str
    args: list["Expr"] = field(default_factory=list)


Expr = IntLit | StrLit | VarRef | Index | Unary | Binary | Call


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class VarDecl(Node):
    """``var x;`` / ``var x = e;`` / ``var a[n];``"""

    name: str
    size: Expr | None = None  # array size expression, None for scalars
    init: Expr | None = None


@dataclass
class Assign(Node):
    """``x = e;`` or ``a[i] = e;``"""

    name: str
    index: Expr | None
    value: Expr


@dataclass
class ExprStmt(Node):
    expr: Expr


@dataclass
class If(Node):
    cond: Expr
    then_body: list["Stmt"]
    else_body: list["Stmt"] = field(default_factory=list)


@dataclass
class For(Node):
    """C-style ``for (init; cond; step) body``.

    ``init`` and ``step`` are statements (Assign/VarDecl/ExprStmt) or None;
    ``cond`` may be None for an infinite loop.
    """

    init: "Stmt | None"
    cond: Expr | None
    step: "Stmt | None"
    body: list["Stmt"] = field(default_factory=list)


@dataclass
class While(Node):
    cond: Expr
    body: list["Stmt"] = field(default_factory=list)


@dataclass
class Return(Node):
    value: Expr | None = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


Stmt = VarDecl | Assign | ExprStmt | If | For | While | Return | Break | Continue


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass
class FuncDef(Node):
    name: str
    params: list[str]
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Program(Node):
    functions: dict[str, FuncDef] = field(default_factory=dict)
    source_name: str = "<minimpi>"

    def function(self, name: str) -> FuncDef:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name!r} in {self.source_name}") from None


def walk(node: Node):
    """Yield ``node`` and all AST nodes beneath it, pre-order."""
    yield node
    children: list[Node] = []
    if isinstance(node, Program):
        children.extend(node.functions.values())
    elif isinstance(node, FuncDef):
        children.extend(node.body)
    elif isinstance(node, VarDecl):
        children.extend(c for c in (node.size, node.init) if c is not None)
    elif isinstance(node, Assign):
        children.extend(c for c in (node.index, node.value) if c is not None)
    elif isinstance(node, ExprStmt):
        children.append(node.expr)
    elif isinstance(node, If):
        children.append(node.cond)
        children.extend(node.then_body)
        children.extend(node.else_body)
    elif isinstance(node, For):
        children.extend(c for c in (node.init, node.cond, node.step) if c is not None)
        children.extend(node.body)
    elif isinstance(node, While):
        children.append(node.cond)
        children.extend(node.body)
    elif isinstance(node, Return):
        if node.value is not None:
            children.append(node.value)
    elif isinstance(node, Index):
        children.append(node.index)
    elif isinstance(node, Unary):
        children.append(node.operand)
    elif isinstance(node, Binary):
        children.extend((node.left, node.right))
    elif isinstance(node, Call):
        children.extend(node.args)
    for child in children:
        yield from walk(child)
