"""Builtin functions available to MiniMPI programs.

Two classes of builtins exist:

* **MPI intrinsics** (``mpi_*``) — traced communication operations handled
  by the simulated runtime (:mod:`repro.mpisim`).  These are what the
  static analysis classifies as MPI invocations (CST leaf vertices).
* **Computation builtins** — untraced helpers (virtual-time computation,
  integer math).  The static analysis ignores them (Algorithm 1 line 21
  only records MPI invocations and user-defined functions).

The table maps each builtin to its arity for compile-time checking; -1
means variadic.
"""

from __future__ import annotations

# name -> (arity, traced MPI op name or None)
MPI_INTRINSICS: dict[str, tuple[int, str]] = {
    "mpi_init": (0, "MPI_Init"),
    "mpi_finalize": (0, "MPI_Finalize"),
    "mpi_send": (3, "MPI_Send"),  # (dest, nbytes, tag)
    "mpi_recv": (3, "MPI_Recv"),  # (src, nbytes, tag); src -1 = ANY_SOURCE
    "mpi_isend": (3, "MPI_Isend"),  # -> request id
    "mpi_irecv": (3, "MPI_Irecv"),  # -> request id
    "mpi_wait": (1, "MPI_Wait"),  # (req)
    "mpi_waitall": (2, "MPI_Waitall"),  # (req_array, count)
    "mpi_waitany": (2, "MPI_Waitany"),  # (req_array, count) -> index
    "mpi_waitsome": (2, "MPI_Waitsome"),  # (req_array, count) -> ncompleted
    "mpi_test": (1, "MPI_Test"),  # (req) -> 0/1
    "mpi_sendrecv": (6, "MPI_Sendrecv"),  # (dest, sbytes, stag, src, rbytes, rtag)
    "mpi_barrier": (0, "MPI_Barrier"),
    "mpi_bcast": (2, "MPI_Bcast"),  # (root, nbytes)
    "mpi_reduce": (2, "MPI_Reduce"),  # (root, nbytes)
    "mpi_allreduce": (1, "MPI_Allreduce"),  # (nbytes)
    "mpi_gather": (2, "MPI_Gather"),  # (root, nbytes per rank)
    "mpi_scatter": (2, "MPI_Scatter"),  # (root, nbytes per rank)
    "mpi_allgather": (1, "MPI_Allgather"),  # (nbytes per rank)
    "mpi_alltoall": (1, "MPI_Alltoall"),  # (nbytes per pair)
    "mpi_scan": (1, "MPI_Scan"),  # (nbytes)
    "mpi_reduce_scatter": (1, "MPI_Reduce_scatter"),  # (nbytes total)
    # sub-communicators (comm 0 is MPI_COMM_WORLD)
    "mpi_comm_split": (3, "MPI_Comm_split"),  # (comm, color, key) -> comm
    "mpi_barrier_on": (1, "MPI_Barrier"),  # (comm)
    "mpi_bcast_on": (3, "MPI_Bcast"),  # (comm, root, nbytes); comm-rank root
    "mpi_reduce_on": (3, "MPI_Reduce"),  # (comm, root, nbytes)
    "mpi_allreduce_on": (2, "MPI_Allreduce"),  # (comm, nbytes)
    "mpi_allgather_on": (2, "MPI_Allgather"),  # (comm, nbytes)
    "mpi_alltoall_on": (2, "MPI_Alltoall"),  # (comm, nbytes)
}

# Query intrinsics: MPI calls that are *not* traced as communication events
# (profilers, including ScalaTrace and the paper's tool, skip these).
MPI_QUERIES: dict[str, int] = {
    "mpi_comm_rank": 0,
    "mpi_comm_size": 0,
    "mpi_comm_rank_on": 1,  # (comm) -> rank within the communicator
    "mpi_comm_size_on": 1,  # (comm) -> communicator size
    "mpi_wtime": 0,
}

COMPUTE_BUILTINS: dict[str, int] = {
    "compute": 1,  # advance the rank's virtual clock by N microseconds
    "print": -1,  # debugging output (disabled by default in the runtime)
    "min": 2,
    "max": 2,
    "abs": 1,
    "ilog2": 1,  # floor(log2(n)) for n >= 1
    "pow2": 1,  # 2**n
    "isqrt": 1,  # integer square root
}

ALL_BUILTINS = {**{k: v[0] for k, v in MPI_INTRINSICS.items()}, **MPI_QUERIES, **COMPUTE_BUILTINS}

# Intrinsics whose runtime implementation may block (the interpreter only
# needs to know they are all routed through the syscall generator).
BLOCKING = frozenset(
    {
        "mpi_recv",
        "mpi_wait",
        "mpi_waitall",
        "mpi_waitany",
        "mpi_waitsome",
        "mpi_sendrecv",
        "mpi_barrier",
        "mpi_bcast",
        "mpi_reduce",
        "mpi_allreduce",
        "mpi_gather",
        "mpi_scatter",
        "mpi_allgather",
        "mpi_alltoall",
        "mpi_scan",
        "mpi_reduce_scatter",
        "mpi_comm_split",
        "mpi_barrier_on",
        "mpi_bcast_on",
        "mpi_reduce_on",
        "mpi_allreduce_on",
        "mpi_allgather_on",
        "mpi_alltoall_on",
    }
)


def is_mpi(name: str) -> bool:
    """True for traced MPI intrinsics (CST leaves)."""
    return name in MPI_INTRINSICS


def mpi_op_name(name: str) -> str:
    return MPI_INTRINSICS[name][1]


def make_classifier(program) -> "callable":
    """Build the classifier the static analysis uses: ``mpi`` for traced
    intrinsics, ``user`` for functions defined in the program, ``None``
    for everything else (queries, computation builtins)."""
    user_functions = set(program.functions)

    def classify(name: str) -> str | None:
        if name in MPI_INTRINSICS:
            return "mpi"
        if name in user_functions:
            return "user"
        return None

    return classify
