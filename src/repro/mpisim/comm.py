"""Per-rank MPI communication API for the simulated runtime.

Every MiniMPI ``mpi_*`` intrinsic is routed through :meth:`RankComm.call`,
a generator: operations that cannot complete yet ``yield`` control back to
the runtime scheduler and are resumed until they can.  The method computes
virtual-time costs with the machine's :class:`~repro.mpisim.netmodel.NetworkModel`
and reports one :class:`~repro.mpisim.events.CommEvent` per call to the
PMPI trace sink.

Blocking receives are internally implemented as irecv+wait (one posted
request) so ordering between blocking and nonblocking receives follows MPI
matching rules, but they are traced as a single ``MPI_Recv`` event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .datatypes import ANY_SOURCE
from .errors import InvalidRequestError, ProgramError
from .events import NO_PEER, CommEvent
from .request import IRECV, ISEND, Request

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime

WORLD = 0  # the only communicator id (MPI_COMM_WORLD)


class RankComm:
    """One rank's view of the communicator."""

    def __init__(self, rank: int, runtime: "Runtime") -> None:
        self.rank = rank
        self.runtime = runtime
        self.clock = 0.0  # virtual time, microseconds
        self.event_seq = 0
        self.finalized = False
        self.blocked_on: str | None = None  # for deadlock diagnostics

    # ------------------------------------------------------------------

    def _emit(self, ev: CommEvent) -> None:
        self.runtime.tracer.on_event(self.rank, ev)

    def _new_event(self, op: str, **kw) -> CommEvent:
        ev = CommEvent(op=op, rank=self.rank, seq=self.event_seq, **kw)
        self.event_seq += 1
        return ev

    def _check_rank(self, peer: int, what: str) -> None:
        if not (0 <= peer < self.runtime.nprocs):
            raise ProgramError(
                f"rank {self.rank}: {what} peer {peer} outside communicator "
                f"of size {self.runtime.nprocs}"
            )

    def _check_bytes(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ProgramError(f"rank {self.rank}: negative message size {nbytes}")

    # ------------------------------------------------------------------
    # Single entry point used by the interpreter.

    def call(self, name: str, args: list) -> Iterator[None]:
        """Execute one MPI intrinsic; a generator returning its value."""
        handler = getattr(self, "_op_" + name[4:])  # strip 'mpi_'
        result = yield from handler(*args)
        return result

    # -- environment ------------------------------------------------------

    def _op_init(self):
        t0 = self.clock
        ev = self._new_event("MPI_Init", time_start=t0, duration=0.0)
        self._emit(ev)
        return 0
        yield  # pragma: no cover

    def _op_finalize(self):
        t0 = self.clock
        ev = self._new_event("MPI_Finalize", time_start=t0, duration=0.0)
        self._emit(ev)
        self.finalized = True
        self.runtime.tracer.on_finalize(self.rank)
        return 0
        yield  # pragma: no cover

    # -- point to point ---------------------------------------------------

    def _op_send(self, dest: int, nbytes: int, tag: int):
        self._check_rank(dest, "send")
        self._check_bytes(nbytes)
        t0 = self.clock
        cost = self.runtime.network.send_cost(nbytes)
        self.runtime.post_message(self.rank, dest, tag, nbytes, WORLD, t0)
        self.clock = t0 + cost
        self._emit(
            self._new_event(
                "MPI_Send", peer=dest, tag=tag, nbytes=nbytes,
                time_start=t0, duration=cost,
            )
        )
        return 0
        yield  # pragma: no cover

    def _op_isend(self, dest: int, nbytes: int, tag: int):
        self._check_rank(dest, "isend")
        self._check_bytes(nbytes)
        t0 = self.clock
        cost = self.runtime.network.send_cost(nbytes)
        self.runtime.post_message(self.rank, dest, tag, nbytes, WORLD, t0)
        req = self.runtime.new_request(
            self.rank, ISEND, dest, tag, nbytes, WORLD, t0
        )
        req.finish(t0 + cost)
        self.clock = t0 + cost
        self._emit(
            self._new_event(
                "MPI_Isend", peer=dest, tag=tag, nbytes=nbytes, req=req.rid,
                time_start=t0, duration=cost,
            )
        )
        return req.rid
        yield  # pragma: no cover

    def _op_irecv(self, src: int, nbytes: int, tag: int):
        if src != ANY_SOURCE:
            self._check_rank(src, "irecv")
        self._check_bytes(nbytes)
        t0 = self.clock
        req = self.runtime.new_request(self.rank, IRECV, src, tag, nbytes, WORLD, t0)
        cost = self.runtime.network.overhead * 0.5
        self.clock = t0 + cost
        # Emit the event BEFORE posting: posting may match an already
        # arrived message and fire on_request_complete immediately, and
        # sinks must see the Irecv first (wildcard resolution ordering).
        self._emit(
            self._new_event(
                "MPI_Irecv",
                peer=src,
                tag=tag,
                nbytes=nbytes,
                req=req.rid,
                wildcard=(src == ANY_SOURCE),
                time_start=t0,
                duration=cost,
            )
        )
        self.runtime.post_receive(req)
        return req.rid
        yield  # pragma: no cover

    def _op_recv(self, src: int, nbytes: int, tag: int):
        if src != ANY_SOURCE:
            self._check_rank(src, "recv")
        self._check_bytes(nbytes)
        t0 = self.clock
        req = self.runtime.new_request(self.rank, IRECV, src, tag, nbytes, WORLD, t0)
        self.runtime.post_receive(req)
        yield from self._await_request(req, "MPI_Recv")
        self.clock = max(self.clock, req.completion_time)
        self._emit(
            self._new_event(
                "MPI_Recv",
                peer=req.actual_source,
                tag=tag,
                nbytes=req.actual_nbytes,
                wildcard=(src == ANY_SOURCE),
                time_start=t0,
                duration=self.clock - t0,
            )
        )
        # Like MPI_Status.MPI_SOURCE: the caller learns who sent it (the
        # task-farm pattern needs this to answer wildcard requests).
        return req.actual_source

    def _op_sendrecv(self, dest, sbytes, stag, src, rbytes, rtag):
        self._check_rank(dest, "sendrecv")
        if src != ANY_SOURCE:
            self._check_rank(src, "sendrecv")
        self._check_bytes(sbytes)
        self._check_bytes(rbytes)
        t0 = self.clock
        self.runtime.post_message(self.rank, dest, stag, sbytes, WORLD, t0)
        req = self.runtime.new_request(self.rank, IRECV, src, rtag, rbytes, WORLD, t0)
        self.runtime.post_receive(req)
        yield from self._await_request(req, "MPI_Sendrecv")
        send_cost = self.runtime.network.send_cost(sbytes)
        self.clock = max(self.clock + send_cost, req.completion_time)
        self._emit(
            self._new_event(
                "MPI_Sendrecv",
                peer=dest,
                peer2=req.actual_source,
                tag=stag,
                tag2=rtag,
                nbytes=sbytes,
                nbytes2=req.actual_nbytes,
                wildcard=(src == ANY_SOURCE),
                time_start=t0,
                duration=self.clock - t0,
            )
        )
        return 0

    # -- request completion -------------------------------------------------

    def _await_request(self, req: Request, why: str):
        while not req.complete:
            self.blocked_on = f"{why} (req {req.rid}, peer {req.peer}, tag {req.tag})"
            yield
        self.blocked_on = None

    def _resolve_reqs(self, handles, count: int | None = None) -> list[Request]:
        if isinstance(handles, int):
            handles = [handles]
        elif count is not None:
            handles = list(handles)[: int(count)]
        reqs = []
        for rid in handles:
            req = self.runtime.requests.get(int(rid))
            if req is None or req.rank != self.rank:
                raise InvalidRequestError(
                    f"rank {self.rank}: unknown request handle {rid}"
                )
            if req.consumed:
                raise InvalidRequestError(
                    f"rank {self.rank}: request {rid} already completed by a wait"
                )
            reqs.append(req)
        return reqs

    def _op_wait(self, handle: int):
        (req,) = self._resolve_reqs(handle)
        t0 = self.clock
        yield from self._await_request(req, "MPI_Wait")
        self.clock = max(self.clock, req.completion_time)
        req.consumed = True
        self._emit(
            self._new_event(
                "MPI_Wait", reqs=(req.rid,), time_start=t0, duration=self.clock - t0
            )
        )
        return 0

    def _op_waitall(self, handles, count: int):
        reqs = self._resolve_reqs(handles, count)
        t0 = self.clock
        for req in reqs:
            yield from self._await_request(req, "MPI_Waitall")
        if reqs:
            self.clock = max(self.clock, max(r.completion_time for r in reqs))
        for req in reqs:
            req.consumed = True
        self._emit(
            self._new_event(
                "MPI_Waitall",
                reqs=tuple(r.rid for r in reqs),
                time_start=t0,
                duration=self.clock - t0,
            )
        )
        return 0

    def _op_waitany(self, handles, count: int):
        reqs = self._resolve_reqs(handles, count)
        if not reqs:
            raise InvalidRequestError(f"rank {self.rank}: waitany on empty request list")
        t0 = self.clock
        while True:
            done = [r for r in reqs if r.complete]
            if done:
                break
            self.blocked_on = "MPI_Waitany"
            yield
        self.blocked_on = None
        winner = min(done, key=lambda r: (r.completion_time, r.rid))
        self.clock = max(self.clock, winner.completion_time)
        winner.consumed = True
        self._emit(
            self._new_event(
                "MPI_Waitany", reqs=(winner.rid,), time_start=t0,
                duration=self.clock - t0,
            )
        )
        return reqs.index(winner)

    def _op_waitsome(self, handles, count: int):
        reqs = self._resolve_reqs(handles, count)
        if not reqs:
            raise InvalidRequestError(f"rank {self.rank}: waitsome on empty request list")
        t0 = self.clock
        while True:
            done = [r for r in reqs if r.complete]
            if done:
                break
            self.blocked_on = "MPI_Waitsome"
            yield
        self.blocked_on = None
        self.clock = max(self.clock, max(r.completion_time for r in done))
        for req in done:
            req.consumed = True
        self._emit(
            self._new_event(
                "MPI_Waitsome",
                reqs=tuple(r.rid for r in done),
                time_start=t0,
                duration=self.clock - t0,
            )
        )
        return len(done)

    def _op_test(self, handle: int):
        (req,) = self._resolve_reqs(handle)
        t0 = self.clock
        cost = self.runtime.network.overhead * 0.1
        self.clock = t0 + cost
        if req.complete:
            req.consumed = True
            self._emit(
                self._new_event(
                    "MPI_Test", reqs=(req.rid,), time_start=t0, duration=cost
                )
            )
            return 1
        self._emit(self._new_event("MPI_Test", reqs=(), time_start=t0, duration=cost))
        return 0
        yield  # pragma: no cover

    # -- collectives -----------------------------------------------------

    def _collective(
        self, op: str, root: int, nbytes: int, comm: int = WORLD,
        payload: tuple | None = None,
    ):
        engine = self.runtime.collectives
        if root >= 0 and root >= engine.comms.size(comm):
            raise ProgramError(
                f"rank {self.rank}: {op} root {root} outside communicator "
                f"{comm} of size {engine.comms.size(comm)}"
            )
        self._check_bytes(nbytes)
        t0 = self.clock
        key = engine.enter(self.rank, comm, op, root, nbytes, t0, payload=payload)
        slot = engine.poll(key)
        while not slot.done:
            self.blocked_on = engine.describe_waiting(key)
            yield
        self.blocked_on = None
        self.clock = max(self.clock, slot.completion_time)
        return slot, t0

    def _traced_collective(
        self, op: str, root: int, nbytes: int, comm: int = WORLD
    ):
        slot, t0 = yield from self._collective(op, root, nbytes, comm)
        self._emit(
            self._new_event(
                op, nbytes=nbytes, root=root, comm=comm,
                time_start=t0, duration=self.clock - t0,
            )
        )
        return 0

    def _op_barrier(self):
        return (yield from self._traced_collective("MPI_Barrier", -1, 0))

    def _op_bcast(self, root: int, nbytes: int):
        return (yield from self._traced_collective("MPI_Bcast", root, nbytes))

    def _op_reduce(self, root: int, nbytes: int):
        return (yield from self._traced_collective("MPI_Reduce", root, nbytes))

    def _op_allreduce(self, nbytes: int):
        return (yield from self._traced_collective("MPI_Allreduce", -1, nbytes))

    def _op_gather(self, root: int, nbytes: int):
        return (yield from self._traced_collective("MPI_Gather", root, nbytes))

    def _op_scatter(self, root: int, nbytes: int):
        return (yield from self._traced_collective("MPI_Scatter", root, nbytes))

    def _op_allgather(self, nbytes: int):
        return (yield from self._traced_collective("MPI_Allgather", -1, nbytes))

    def _op_alltoall(self, nbytes: int):
        return (yield from self._traced_collective("MPI_Alltoall", -1, nbytes))

    def _op_scan(self, nbytes: int):
        return (yield from self._traced_collective("MPI_Scan", -1, nbytes))

    def _op_reduce_scatter(self, nbytes: int):
        return (yield from self._traced_collective("MPI_Reduce_scatter", -1, nbytes))

    # -- sub-communicators -------------------------------------------------

    def _op_comm_split(self, comm: int, color: int, key: int):
        """MPI_Comm_split: collective over ``comm``; returns the new
        communicator id (-1 for MPI_UNDEFINED colours < 0)."""
        slot, t0 = yield from self._collective(
            "MPI_Comm_split", -1, 0, comm, payload=(color, key)
        )
        new_comm = slot.results[self.rank]
        self._emit(
            self._new_event(
                "MPI_Comm_split",
                comm=comm,
                tag=color,
                peer=key,
                result_comm=new_comm,
                time_start=t0,
                duration=self.clock - t0,
            )
        )
        return new_comm

    def _op_barrier_on(self, comm: int):
        return (yield from self._traced_collective("MPI_Barrier", -1, 0, comm))

    def _op_bcast_on(self, comm: int, root: int, nbytes: int):
        return (yield from self._traced_collective("MPI_Bcast", root, nbytes, comm))

    def _op_reduce_on(self, comm: int, root: int, nbytes: int):
        return (yield from self._traced_collective("MPI_Reduce", root, nbytes, comm))

    def _op_allreduce_on(self, comm: int, nbytes: int):
        return (yield from self._traced_collective("MPI_Allreduce", -1, nbytes, comm))

    def _op_allgather_on(self, comm: int, nbytes: int):
        return (yield from self._traced_collective("MPI_Allgather", -1, nbytes, comm))

    def _op_alltoall_on(self, comm: int, nbytes: int):
        return (yield from self._traced_collective("MPI_Alltoall", -1, nbytes, comm))
