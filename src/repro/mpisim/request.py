"""Nonblocking request objects for the simulated MPI runtime."""

from __future__ import annotations

from dataclasses import dataclass

from .datatypes import ANY_SOURCE

ISEND = "isend"
IRECV = "irecv"


@dataclass
class Request:
    """State of one outstanding nonblocking operation."""

    rid: int
    rank: int
    kind: str  # ISEND or IRECV
    peer: int  # dest (isend) / requested source (irecv; may be ANY_SOURCE)
    tag: int
    nbytes: int
    comm: int
    post_time: float
    complete: bool = False
    completion_time: float = 0.0
    actual_source: int = -1  # resolved source for wildcard receives
    actual_nbytes: int = -1  # actual size matched (receives)
    consumed: bool = False  # a wait already returned this request

    @property
    def is_wildcard(self) -> bool:
        return self.kind == IRECV and self.peer == ANY_SOURCE

    def finish(self, time: float, source: int = -1, nbytes: int = -1) -> None:
        self.complete = True
        self.completion_time = time
        if source >= 0:
            self.actual_source = source
        if nbytes >= 0:
            self.actual_nbytes = nbytes
