"""PMPI-style tracing layer.

The simulated runtime reports every MPI call — and, when CYPRESS
instrumentation is active, every control-structure marker — to a
:class:`TraceSink`.  This mirrors the paper's customised MPI communication
library built on the MPI profiling layer, including the two instrumented
functions ``PMPI_COMM_Structure`` / ``PMPI_COMM_Structure_Exit`` (Fig. 9),
which appear here as the ``on_loop_* / on_branch_* / on_recurse_*``
callbacks.

Sinks compose: :class:`MultiSink` fans one execution out to several
compressors at once (so a benchmark can trace one run with CYPRESS,
ScalaTrace and the raw writer simultaneously), and :class:`TimingSink`
wraps any sink with CPU-time accounting used by the overhead figures.
"""

from __future__ import annotations

import time

from .events import CommEvent


class TraceSink:
    """Interface every trace consumer implements.  Default: ignore all."""

    # -- structural markers (CYPRESS instrumentation only) ---------------

    def on_loop_push(self, rank: int, ast_id: int) -> None: ...

    def on_loop_iter(self, rank: int, ast_id: int) -> None: ...

    def on_loop_pop(self, rank: int, ast_id: int) -> None: ...

    def on_branch_enter(self, rank: int, ast_id: int, path: int) -> None: ...

    def on_branch_exit(self, rank: int, ast_id: int) -> None: ...

    def on_recurse_enter(self, rank: int, ast_id: int) -> None: ...

    def on_recurse_exit(self, rank: int, ast_id: int) -> None: ...

    # -- communication events ------------------------------------------

    def on_event(self, rank: int, event: CommEvent) -> None: ...

    def on_request_complete(
        self, rank: int, rid: int, source: int, nbytes: int, when: float
    ) -> None:
        """Called when a nonblocking request completes — resolves wildcard
        receive sources (the paper delays their compression until here)."""

    def on_finalize(self, rank: int) -> None:
        """Called when ``rank`` executes MPI_Finalize."""

    # -- hints -----------------------------------------------------------

    wants_markers: bool = False  # runtimes skip marker plumbing when False


class NullSink(TraceSink):
    """Tracing disabled (used to measure the uninstrumented baseline)."""


class MultiSink(TraceSink):
    """Broadcast every callback to several sinks."""

    def __init__(self, sinks: list[TraceSink]) -> None:
        self.sinks = list(sinks)
        self.wants_markers = any(s.wants_markers for s in sinks)

    def on_loop_push(self, rank, ast_id):
        for s in self.sinks:
            s.on_loop_push(rank, ast_id)

    def on_loop_iter(self, rank, ast_id):
        for s in self.sinks:
            s.on_loop_iter(rank, ast_id)

    def on_loop_pop(self, rank, ast_id):
        for s in self.sinks:
            s.on_loop_pop(rank, ast_id)

    def on_branch_enter(self, rank, ast_id, path):
        for s in self.sinks:
            s.on_branch_enter(rank, ast_id, path)

    def on_branch_exit(self, rank, ast_id):
        for s in self.sinks:
            s.on_branch_exit(rank, ast_id)

    def on_recurse_enter(self, rank, ast_id):
        for s in self.sinks:
            s.on_recurse_enter(rank, ast_id)

    def on_recurse_exit(self, rank, ast_id):
        for s in self.sinks:
            s.on_recurse_exit(rank, ast_id)

    def on_event(self, rank, event):
        for s in self.sinks:
            s.on_event(rank, event)

    def on_request_complete(self, rank, rid, source, nbytes, when):
        for s in self.sinks:
            s.on_request_complete(rank, rid, source, nbytes, when)

    def on_finalize(self, rank):
        for s in self.sinks:
            s.on_finalize(rank)


class TimingSink(TraceSink):
    """Wraps a sink, accumulating the CPU time spent inside it.

    ``elapsed`` (seconds) is the intra-process compression overhead
    attributable to the wrapped compressor — the quantity Fig. 16 plots
    relative to application time.
    """

    def __init__(self, inner: TraceSink) -> None:
        self.inner = inner
        self.elapsed = 0.0
        self.calls = 0
        self.wants_markers = inner.wants_markers

    def _timed(self, fn, *args) -> None:
        t0 = time.perf_counter()
        fn(*args)
        self.elapsed += time.perf_counter() - t0
        self.calls += 1

    def on_loop_push(self, rank, ast_id):
        self._timed(self.inner.on_loop_push, rank, ast_id)

    def on_loop_iter(self, rank, ast_id):
        self._timed(self.inner.on_loop_iter, rank, ast_id)

    def on_loop_pop(self, rank, ast_id):
        self._timed(self.inner.on_loop_pop, rank, ast_id)

    def on_branch_enter(self, rank, ast_id, path):
        self._timed(self.inner.on_branch_enter, rank, ast_id, path)

    def on_branch_exit(self, rank, ast_id):
        self._timed(self.inner.on_branch_exit, rank, ast_id)

    def on_recurse_enter(self, rank, ast_id):
        self._timed(self.inner.on_recurse_enter, rank, ast_id)

    def on_recurse_exit(self, rank, ast_id):
        self._timed(self.inner.on_recurse_exit, rank, ast_id)

    def on_event(self, rank, event):
        self._timed(self.inner.on_event, rank, event)

    def on_request_complete(self, rank, rid, source, nbytes, when):
        self._timed(self.inner.on_request_complete, rank, rid, source, nbytes, when)

    def on_finalize(self, rank):
        self._timed(self.inner.on_finalize, rank)


class RecordingSink(TraceSink):
    """Collects raw per-rank event lists — ground truth for tests and for
    the replay-correctness checks (sequence preservation)."""

    def __init__(self) -> None:
        self.events: dict[int, list[CommEvent]] = {}

    def on_event(self, rank: int, event: CommEvent) -> None:
        self.events.setdefault(rank, []).append(event)

    def on_request_complete(self, rank, rid, source, nbytes, when):
        # Resolve wildcard receives in the recorded ground truth the same
        # way compressors do, so comparisons line up.
        for ev in reversed(self.events.get(rank, ())):
            if ev.req == rid and ev.op == "MPI_Irecv" and ev.wildcard:
                ev.peer = source
                ev.nbytes = nbytes
                break
