"""PMPI-style tracing layer.

The simulated runtime reports every MPI call — and, when CYPRESS
instrumentation is active, every control-structure marker — to a
:class:`TraceSink`.  This mirrors the paper's customised MPI communication
library built on the MPI profiling layer, including the two instrumented
functions ``PMPI_COMM_Structure`` / ``PMPI_COMM_Structure_Exit`` (Fig. 9),
which appear here as the ``on_loop_* / on_branch_* / on_recurse_*``
callbacks.

Sinks compose: :class:`MultiSink` fans one execution out to several
compressors at once (so a benchmark can trace one run with CYPRESS,
ScalaTrace and the raw writer simultaneously), and :class:`TimingSink`
wraps any sink with CPU-time accounting used by the overhead figures.

Batching: ``on_events(rank, events)`` delivers a run of consecutive
communication events of one rank in a single call, letting sinks hoist
their per-rank state out of the loop.  The default implementation simply
fans out to ``on_event``, so sinks only override it when it pays.

Capture: :class:`StreamCaptureSink` records the complete callback stream
per rank as compact opcode tuples.  A captured stream can be replayed
into any sink later (``replay_into``) or handed to
:func:`repro.core.intra.compress_streams`, which shards ranks over a
process pool — the deferred-compression mode behind
``run_cypress(compress_workers=...)`` and the CLI ``--compress-workers``
flag.
"""

from __future__ import annotations

import time

from .events import CommEvent

# Opcodes of captured callback streams (StreamCaptureSink.streams).  One
# tuple per callback: (opcode, *args) with the rank implied by the
# per-rank stream the tuple is stored in.
(
    OP_LOOP_PUSH,
    OP_LOOP_ITER,
    OP_LOOP_POP,
    OP_BRANCH_ENTER,
    OP_BRANCH_EXIT,
    OP_RECURSE_ENTER,
    OP_RECURSE_EXIT,
    OP_EVENT,
    OP_REQ_COMPLETE,
    OP_FINALIZE,
) = range(10)


class TraceSink:
    """Interface every trace consumer implements.  Default: ignore all."""

    # -- structural markers (CYPRESS instrumentation only) ---------------

    def on_loop_push(self, rank: int, ast_id: int) -> None: ...

    def on_loop_iter(self, rank: int, ast_id: int) -> None: ...

    def on_loop_pop(self, rank: int, ast_id: int) -> None: ...

    def on_branch_enter(self, rank: int, ast_id: int, path: int) -> None: ...

    def on_branch_exit(self, rank: int, ast_id: int) -> None: ...

    def on_recurse_enter(self, rank: int, ast_id: int) -> None: ...

    def on_recurse_exit(self, rank: int, ast_id: int) -> None: ...

    # -- communication events ------------------------------------------

    def on_event(self, rank: int, event: CommEvent) -> None: ...

    def on_events(self, rank: int, events) -> None:
        """Batched delivery of consecutive events of one rank.  Sinks
        with per-rank state override this to hoist it out of the loop."""
        on_event = self.on_event
        for event in events:
            on_event(rank, event)

    def on_request_complete(
        self, rank: int, rid: int, source: int, nbytes: int, when: float
    ) -> None:
        """Called when a nonblocking request completes — resolves wildcard
        receive sources (the paper delays their compression until here)."""

    def on_finalize(self, rank: int) -> None:
        """Called when ``rank`` executes MPI_Finalize."""

    # -- hints -----------------------------------------------------------

    wants_markers: bool = False  # runtimes skip marker plumbing when False


class NullSink(TraceSink):
    """Tracing disabled (used to measure the uninstrumented baseline)."""


class MultiSink(TraceSink):
    """Broadcast every callback to several sinks."""

    def __init__(self, sinks: list[TraceSink]) -> None:
        self.sinks = list(sinks)
        self.wants_markers = any(s.wants_markers for s in sinks)

    def on_loop_push(self, rank, ast_id):
        for s in self.sinks:
            s.on_loop_push(rank, ast_id)

    def on_loop_iter(self, rank, ast_id):
        for s in self.sinks:
            s.on_loop_iter(rank, ast_id)

    def on_loop_pop(self, rank, ast_id):
        for s in self.sinks:
            s.on_loop_pop(rank, ast_id)

    def on_branch_enter(self, rank, ast_id, path):
        for s in self.sinks:
            s.on_branch_enter(rank, ast_id, path)

    def on_branch_exit(self, rank, ast_id):
        for s in self.sinks:
            s.on_branch_exit(rank, ast_id)

    def on_recurse_enter(self, rank, ast_id):
        for s in self.sinks:
            s.on_recurse_enter(rank, ast_id)

    def on_recurse_exit(self, rank, ast_id):
        for s in self.sinks:
            s.on_recurse_exit(rank, ast_id)

    def on_event(self, rank, event):
        for s in self.sinks:
            s.on_event(rank, event)

    def on_events(self, rank, events):
        for s in self.sinks:
            s.on_events(rank, events)

    def on_request_complete(self, rank, rid, source, nbytes, when):
        for s in self.sinks:
            s.on_request_complete(rank, rid, source, nbytes, when)

    def on_finalize(self, rank):
        for s in self.sinks:
            s.on_finalize(rank)


class TimingSink(TraceSink):
    """Wraps a sink, accumulating the CPU time spent inside it.

    ``elapsed`` (seconds) is the intra-process compression overhead
    attributable to the wrapped compressor — the quantity Fig. 16 plots
    relative to application time.
    """

    def __init__(self, inner: TraceSink) -> None:
        self.inner = inner
        self.elapsed = 0.0
        self.calls = 0
        self.wants_markers = inner.wants_markers

    def _timed(self, fn, *args) -> None:
        t0 = time.perf_counter()
        fn(*args)
        self.elapsed += time.perf_counter() - t0
        self.calls += 1

    def on_loop_push(self, rank, ast_id):
        self._timed(self.inner.on_loop_push, rank, ast_id)

    def on_loop_iter(self, rank, ast_id):
        self._timed(self.inner.on_loop_iter, rank, ast_id)

    def on_loop_pop(self, rank, ast_id):
        self._timed(self.inner.on_loop_pop, rank, ast_id)

    def on_branch_enter(self, rank, ast_id, path):
        self._timed(self.inner.on_branch_enter, rank, ast_id, path)

    def on_branch_exit(self, rank, ast_id):
        self._timed(self.inner.on_branch_exit, rank, ast_id)

    def on_recurse_enter(self, rank, ast_id):
        self._timed(self.inner.on_recurse_enter, rank, ast_id)

    def on_recurse_exit(self, rank, ast_id):
        self._timed(self.inner.on_recurse_exit, rank, ast_id)

    def on_event(self, rank, event):
        self._timed(self.inner.on_event, rank, event)

    def on_events(self, rank, events):
        t0 = time.perf_counter()
        self.inner.on_events(rank, events)
        self.elapsed += time.perf_counter() - t0
        self.calls += len(events)

    def on_request_complete(self, rank, rid, source, nbytes, when):
        self._timed(self.inner.on_request_complete, rank, rid, source, nbytes, when)

    def on_finalize(self, rank):
        self._timed(self.inner.on_finalize, rank)


class RecordingSink(TraceSink):
    """Collects raw per-rank event lists — ground truth for tests and for
    the replay-correctness checks (sequence preservation)."""

    def __init__(self) -> None:
        self.events: dict[int, list[CommEvent]] = {}

    def on_event(self, rank: int, event: CommEvent) -> None:
        self.events.setdefault(rank, []).append(event)

    def on_events(self, rank: int, events) -> None:
        self.events.setdefault(rank, []).extend(events)

    def on_request_complete(self, rank, rid, source, nbytes, when):
        # Resolve wildcard receives in the recorded ground truth the same
        # way compressors do, so comparisons line up.
        for ev in reversed(self.events.get(rank, ())):
            if ev.req == rid and ev.op == "MPI_Irecv" and ev.wildcard:
                ev.peer = source
                ev.nbytes = nbytes
                break


class StreamCaptureSink(TraceSink):
    """Records the complete per-rank callback stream as opcode tuples.

    Capturing is one tuple construction plus a list append per callback —
    far cheaper than compressing inline — which is what makes deferred
    (and parallel) compression worthwhile: the traced run finishes at
    near-uninstrumented speed and the captured streams are compressed
    afterwards, per rank, on however many workers are available.

    Per-rank callback order is preserved exactly, which is the only
    ordering the intra-process compressor depends on (rank states never
    interact).

    ``packed=True`` captures each rank's stream as a
    :class:`~repro.core.packed.PackedStream` instead of a tuple list —
    the shm transport's wire form, produced at capture time so the
    parallel hand-off needs no encode step at all.  The callback
    overrides are installed as instance attributes so the default
    tuple-capture path pays nothing for the option.
    """

    wants_markers = True

    def __init__(self, packed: bool = False) -> None:
        self.streams: dict[int, object] = {}
        self.packed = packed
        if packed:
            from repro.core import packed as _p  # deferred: breaks cycle

            self._packed_mod = _p
            stream = self._stream
            self.on_loop_push = lambda rank, ast_id: stream(
                rank).append_marker(OP_LOOP_PUSH, ast_id)
            self.on_loop_iter = lambda rank, ast_id: stream(
                rank).append_marker(OP_LOOP_ITER, ast_id)
            self.on_loop_pop = lambda rank, ast_id: stream(
                rank).append_marker(OP_LOOP_POP, ast_id)
            self.on_branch_enter = lambda rank, ast_id, path: stream(
                rank).append_marker(OP_BRANCH_ENTER, ast_id, path)
            self.on_branch_exit = lambda rank, ast_id: stream(
                rank).append_marker(OP_BRANCH_EXIT, ast_id)
            self.on_recurse_enter = lambda rank, ast_id: stream(
                rank).append_marker(OP_RECURSE_ENTER, ast_id)
            self.on_recurse_exit = lambda rank, ast_id: stream(
                rank).append_marker(OP_RECURSE_EXIT, ast_id)
            self.on_event = lambda rank, event: stream(
                rank).append_event(event)
            self.on_events = self._packed_on_events
            self.on_request_complete = lambda rank, rid, source, nbytes, \
                when: stream(rank).append_request_complete(
                    rid, source, nbytes, when)
            self.on_finalize = lambda rank: stream(rank).append_finalize()

    def _packed_on_events(self, rank, events):
        append_event = self._stream(rank).append_event
        for ev in events:
            append_event(ev)

    def _stream(self, rank: int):
        stream = self.streams.get(rank)
        if stream is None:
            if self.packed:
                stream = self.streams[rank] = self._packed_mod.PackedStream()
            else:
                stream = self.streams[rank] = []
        return stream

    def _as_list(self, stream) -> list[tuple]:
        """Capture-list view of one stream (decodes packed captures)."""
        if self.packed:
            return self._packed_mod.decode_stream(stream)
        return stream

    def on_loop_push(self, rank, ast_id):
        self._stream(rank).append((OP_LOOP_PUSH, ast_id))

    def on_loop_iter(self, rank, ast_id):
        self._stream(rank).append((OP_LOOP_ITER, ast_id))

    def on_loop_pop(self, rank, ast_id):
        self._stream(rank).append((OP_LOOP_POP, ast_id))

    def on_branch_enter(self, rank, ast_id, path):
        self._stream(rank).append((OP_BRANCH_ENTER, ast_id, path))

    def on_branch_exit(self, rank, ast_id):
        self._stream(rank).append((OP_BRANCH_EXIT, ast_id))

    def on_recurse_enter(self, rank, ast_id):
        self._stream(rank).append((OP_RECURSE_ENTER, ast_id))

    def on_recurse_exit(self, rank, ast_id):
        self._stream(rank).append((OP_RECURSE_EXIT, ast_id))

    def on_event(self, rank, event):
        self._stream(rank).append((OP_EVENT, event))

    def on_events(self, rank, events):
        self._stream(rank).extend((OP_EVENT, ev) for ev in events)

    def on_request_complete(self, rank, rid, source, nbytes, when):
        self._stream(rank).append((OP_REQ_COMPLETE, rid, source, nbytes, when))

    def on_finalize(self, rank):
        self._stream(rank).append((OP_FINALIZE,))

    # ------------------------------------------------------------------

    def event_count(self, rank: int | None = None) -> int:
        streams = (
            [self.streams.get(rank, [])] if rank is not None
            else self.streams.values()
        )
        if self.packed:
            return sum(stream.nevents for stream in streams if stream)
        return sum(
            1 for stream in streams for item in stream if item[0] == OP_EVENT
        )

    def replay_into(self, sink: TraceSink, ranks=None) -> None:
        """Re-drive ``sink`` from the captured streams, one rank at a
        time, batching runs of consecutive events through ``on_events``.
        Only per-rank callback order is preserved (sufficient for any
        sink whose state is per-rank, like the compressors)."""
        for rank in sorted(self.streams) if ranks is None else ranks:
            stream = self.streams.get(rank, [])
            if self.packed and stream:
                stream = self._as_list(stream)
            batch: list[CommEvent] = []
            for item in stream:
                code = item[0]
                if code == OP_EVENT:
                    batch.append(item[1])
                    continue
                if batch:
                    sink.on_events(rank, batch)
                    batch = []
                if code == OP_LOOP_PUSH:
                    sink.on_loop_push(rank, item[1])
                elif code == OP_LOOP_ITER:
                    sink.on_loop_iter(rank, item[1])
                elif code == OP_LOOP_POP:
                    sink.on_loop_pop(rank, item[1])
                elif code == OP_BRANCH_ENTER:
                    sink.on_branch_enter(rank, item[1], item[2])
                elif code == OP_BRANCH_EXIT:
                    sink.on_branch_exit(rank, item[1])
                elif code == OP_RECURSE_ENTER:
                    sink.on_recurse_enter(rank, item[1])
                elif code == OP_RECURSE_EXIT:
                    sink.on_recurse_exit(rank, item[1])
                elif code == OP_REQ_COMPLETE:
                    sink.on_request_complete(
                        rank, item[1], item[2], item[3], item[4]
                    )
                elif code == OP_FINALIZE:
                    sink.on_finalize(rank)
            if batch:
                sink.on_events(rank, batch)
