"""Collective-operation synchronisation for the simulated runtime.

Each communicator carries an implicit sequence of collective operations; a
rank entering its ``k``-th collective joins slot ``k``.  The slot completes
when all ranks of the communicator have arrived; the completion time is
``max(arrival clocks) + NetworkModel.collective_cost(...)``.  Ranks that
disagree about which operation (or root) slot ``k`` is raise
:class:`~repro.mpisim.errors.CollectiveMismatchError` — the runtime's
equivalent of the MPI standard's erroneous-program rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import CollectiveMismatchError
from .netmodel import NetworkModel


@dataclass
class CollectiveSlot:
    op: str
    root: int
    size: int  # communicator size (arrival target)
    arrived: dict[int, float] = field(default_factory=dict)  # rank -> entry clock
    nbytes: dict[int, int] = field(default_factory=dict)
    payload: dict[int, tuple] = field(default_factory=dict)  # split colors etc.
    done: bool = False
    completion_time: float = 0.0
    results: dict[int, int] = field(default_factory=dict)  # split: rank -> comm


class CommRegistry:
    """World-consistent communicator bookkeeping (MPI_Comm_split).

    Communicator ids are assigned deterministically — per split slot, in
    ascending color order — so an independent replayer (SIM-MPI) that
    observes the same split events reconstructs identical ids.
    """

    def __init__(self, nprocs: int) -> None:
        self._members: dict[int, list[int]] = {0: list(range(nprocs))}
        self._next_id = 1

    def members(self, comm: int) -> list[int]:
        try:
            return self._members[comm]
        except KeyError:
            raise CollectiveMismatchError(f"unknown communicator {comm}") from None

    def size(self, comm: int) -> int:
        return len(self.members(comm))

    def comm_rank(self, comm: int, world_rank: int) -> int:
        try:
            return self.members(comm).index(world_rank)
        except ValueError:
            raise CollectiveMismatchError(
                f"rank {world_rank} is not a member of communicator {comm}"
            ) from None

    def split(self, contributions: dict[int, tuple[int, int]]) -> dict[int, int]:
        """Perform one split: ``world rank -> (color, key)`` in, ``world
        rank -> new comm id`` out.  Negative colors (MPI_UNDEFINED) yield
        comm id -1."""
        by_color: dict[int, list[tuple[int, int]]] = {}
        for world_rank, (color, key) in contributions.items():
            if color < 0:
                continue
            by_color.setdefault(color, []).append((key, world_rank))
        results: dict[int, int] = {
            r: -1 for r, (c, _k) in contributions.items() if c < 0
        }
        for color in sorted(by_color):
            comm_id = self._next_id
            self._next_id += 1
            ordered = [r for _key, r in sorted(by_color[color])]
            self._members[comm_id] = ordered
            for r in ordered:
                results[r] = comm_id
        return results


class CollectiveEngine:
    def __init__(self, nprocs: int, network: NetworkModel) -> None:
        self._nprocs = nprocs
        self._network = network
        self.comms = CommRegistry(nprocs)
        # (comm, slot index) -> slot
        self._slots: dict[tuple[int, int], CollectiveSlot] = {}
        # per (comm, rank): how many collectives this rank has entered
        self._counters: dict[tuple[int, int], int] = {}
        self.completed = 0  # progress indicators for deadlock detection
        self.entered = 0

    def enter(
        self,
        rank: int,
        comm: int,
        op: str,
        root: int,
        nbytes: int,
        clock: float,
        payload: tuple | None = None,
    ) -> tuple[int, int]:
        """Register ``rank``'s arrival at its next collective on ``comm``.
        Returns the slot key to poll with :meth:`poll`."""
        members = self.comms.members(comm)
        if rank not in members:
            raise CollectiveMismatchError(
                f"rank {rank} called {op} on communicator {comm} "
                "it does not belong to"
            )
        self.entered += 1
        counter_key = (comm, rank)
        index = self._counters.get(counter_key, 0)
        self._counters[counter_key] = index + 1
        key = (comm, index)
        slot = self._slots.get(key)
        if slot is None:
            slot = CollectiveSlot(op=op, root=root, size=len(members))
            self._slots[key] = slot
        elif slot.op != op or slot.root != root:
            raise CollectiveMismatchError(
                f"rank {rank} entered {op}(root={root}) at collective #{index} "
                f"on comm {comm}, but other ranks entered "
                f"{slot.op}(root={slot.root})"
            )
        slot.arrived[rank] = clock
        slot.nbytes[rank] = nbytes
        if payload is not None:
            slot.payload[rank] = payload
        if len(slot.arrived) == slot.size and not slot.done:
            worst = max(slot.arrived.values())
            size = max(slot.nbytes.values())
            cost_op = "MPI_Barrier" if op == "MPI_Comm_split" else op
            slot.completion_time = worst + self._network.collective_cost(
                cost_op, size, slot.size
            )
            if op == "MPI_Comm_split":
                slot.results = self.comms.split(slot.payload)
            slot.done = True
            self.completed += 1
        return key

    def poll(self, key: tuple[int, int]) -> CollectiveSlot:
        return self._slots[key]

    def describe_waiting(self, key: tuple[int, int]) -> str:
        slot = self._slots[key]
        missing = slot.size - len(slot.arrived)
        return f"{slot.op} (collective #{key[1]} on comm {key[0]}, waiting for {missing} rank(s))"
