"""MPI datatype registry.

MiniMPI programs pass raw byte counts to communication intrinsics, but the
workload generators compute those counts from element counts and datatype
sizes the way the original NPB sources do.  This registry mirrors the sizes
of the common MPI predefined datatypes.
"""

from __future__ import annotations

SIZES: dict[str, int] = {
    "MPI_CHAR": 1,
    "MPI_BYTE": 1,
    "MPI_SHORT": 2,
    "MPI_INT": 4,
    "MPI_LONG": 8,
    "MPI_FLOAT": 4,
    "MPI_DOUBLE": 8,
    "MPI_DOUBLE_COMPLEX": 16,
    "MPI_LONG_LONG": 8,
}

# Wildcards, mirrored from MPI.
ANY_SOURCE = -1
ANY_TAG = -1
PROC_NULL = -3


def size_of(name: str) -> int:
    try:
        return SIZES[name]
    except KeyError:
        raise KeyError(f"unknown MPI datatype {name!r}") from None


def bytes_of(count: int, datatype: str) -> int:
    if count < 0:
        raise ValueError(f"negative element count {count}")
    return count * size_of(datatype)
