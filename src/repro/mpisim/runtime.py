"""The simulated MPI runtime: P ranks, cooperative scheduling, progress.

Each rank executes as a Python generator (the MiniMPI interpreter, or any
user-supplied generator function for tests); a generator ``yield``s when
its current MPI operation cannot complete.  The scheduler round-robins the
live ranks and detects deadlock when a full round makes no progress.

Virtual time: every rank owns a clock (microseconds).  Message arrival
times, receive completions and collective completions are computed with the
:class:`~repro.mpisim.netmodel.NetworkModel`.  The runtime is the
"machine" whose execution times the SIM-MPI replay engine predicts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from .collectives import CollectiveEngine
from .comm import RankComm
from .errors import DeadlockError, MPISimError
from .matching import Mailbox, Message
from .netmodel import NetworkModel
from .pmpi import NullSink, TraceSink
from .request import IRECV, Request


@dataclass
class RunResult:
    """Outcome of one simulated execution."""

    nprocs: int
    finish_times: list[float]  # per-rank final virtual clock (us)
    total_messages: int
    total_events: int
    rounds: int  # scheduler rounds (diagnostic)

    @property
    def elapsed(self) -> float:
        """Virtual execution time of the job (us) — max over ranks."""
        return max(self.finish_times) if self.finish_times else 0.0


class Runtime:
    """One simulated MPI job."""

    def __init__(
        self,
        nprocs: int,
        network: NetworkModel | None = None,
        tracer: TraceSink | None = None,
    ) -> None:
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        self.nprocs = nprocs
        self.network = network or NetworkModel()
        self.tracer = tracer or NullSink()
        self.ranks = [RankComm(r, self) for r in range(nprocs)]
        self.mailboxes = [Mailbox(r) for r in range(nprocs)]
        self.collectives = CollectiveEngine(nprocs, self.network)
        self.requests: dict[int, Request] = {}
        # Posted (pending) receive requests per rank, in post order.
        self._posted: list[list[Request]] = [[] for _ in range(nprocs)]
        self._next_rid = 1
        self._send_seq = 0
        self.progress = 0  # bumped on any state change; deadlock detector
        self.total_messages = 0

    # ------------------------------------------------------------------
    # State transitions driven by RankComm.

    def post_message(
        self, src: int, dst: int, tag: int, nbytes: int, comm: int, send_time: float
    ) -> None:
        self._send_seq += 1
        arrival = send_time + self.network.transfer_time(nbytes)
        msg = Message(
            src=src, dst=dst, tag=tag, nbytes=nbytes, comm=comm,
            send_time=send_time, arrival_time=arrival, seq=self._send_seq,
        )
        self.mailboxes[dst].deliver(msg)
        self.total_messages += 1
        self.progress += 1
        self._progress_receives(dst)

    def new_request(
        self, rank: int, kind: str, peer: int, tag: int, nbytes: int,
        comm: int, post_time: float,
    ) -> Request:
        req = Request(
            rid=self._next_rid, rank=rank, kind=kind, peer=peer, tag=tag,
            nbytes=nbytes, comm=comm, post_time=post_time,
        )
        self._next_rid += 1
        self.requests[req.rid] = req
        return req

    def post_receive(self, req: Request) -> None:
        assert req.kind == IRECV
        self._posted[req.rank].append(req)
        # Posting is a state change: without counting it, a round where one
        # rank posts receives while the rest idle would look like deadlock.
        self.progress += 1
        self._progress_receives(req.rank)

    def _progress_receives(self, rank: int) -> None:
        """Match posted receives of ``rank`` against its mailbox, in post
        order (MPI posted-queue semantics)."""
        posted = self._posted[rank]
        if not posted:
            return
        mailbox = self.mailboxes[rank]
        still_pending: list[Request] = []
        for req in posted:
            msg = mailbox.match(req.peer, req.tag, req.comm)
            if msg is None:
                still_pending.append(req)
                continue
            completion = max(req.post_time, msg.arrival_time) + self.network.recv_cost(
                msg.nbytes
            )
            req.finish(completion, source=msg.src, nbytes=msg.nbytes)
            self.progress += 1
            self.tracer.on_request_complete(
                rank, req.rid, msg.src, msg.nbytes, completion
            )
        self._posted[rank] = still_pending

    # ------------------------------------------------------------------
    # Scheduling.

    def run(self, rank_main: Callable[[RankComm], Iterator[None]]) -> RunResult:
        """Execute ``rank_main(comm)`` — a generator function — on every rank.

        Returns the run result; raises :class:`DeadlockError` if the job
        wedges and propagates any :class:`MPISimError` from rank code.
        """
        gens = {r: rank_main(self.ranks[r]) for r in range(self.nprocs)}
        live: deque[int] = deque(range(self.nprocs))
        rounds = 0
        while live:
            rounds += 1
            before = self.progress + self.collectives.entered
            finished: list[int] = []
            for rank in list(live):
                gen = gens[rank]
                try:
                    next(gen)
                except StopIteration:
                    finished.append(rank)
                    self.progress += 1
            for rank in finished:
                live.remove(rank)
            if live and self.progress + self.collectives.entered == before:
                blocked = {
                    r: self.ranks[r].blocked_on or "unknown wait state"
                    for r in live
                }
                raise DeadlockError(blocked)
        self._check_leaks()
        return RunResult(
            nprocs=self.nprocs,
            finish_times=[c.clock for c in self.ranks],
            total_messages=self.total_messages,
            total_events=sum(c.event_seq for c in self.ranks),
            rounds=rounds,
        )

    def _check_leaks(self) -> None:
        pending_recvs = sum(len(p) for p in self._posted)
        unmatched = sum(m.pending_count() for m in self.mailboxes)
        if pending_recvs:
            raise MPISimError(
                f"job finished with {pending_recvs} receive(s) never matched"
            )
        if unmatched:
            raise MPISimError(
                f"job finished with {unmatched} message(s) never received"
            )
