"""Error types for the simulated MPI runtime."""

from __future__ import annotations


class MPISimError(Exception):
    """Base class for simulated-MPI runtime errors."""


class DeadlockError(MPISimError):
    """Raised when no rank can make progress.

    Carries a human-readable description of what every live rank was
    blocked on, mirroring what a parallel debugger would show.
    """

    def __init__(self, blocked: dict[int, str]) -> None:
        self.blocked = dict(blocked)
        lines = [f"deadlock: {len(blocked)} rank(s) blocked"]
        for rank in sorted(blocked)[:16]:
            lines.append(f"  rank {rank}: {blocked[rank]}")
        if len(blocked) > 16:
            lines.append(f"  ... and {len(blocked) - 16} more")
        super().__init__("\n".join(lines))


class CollectiveMismatchError(MPISimError):
    """Ranks disagreed on which collective operation is being executed."""


class InvalidRequestError(MPISimError):
    """A wait/test referenced an unknown or already-completed request."""


class ProgramError(MPISimError):
    """A MiniMPI program misused the MPI API (bad rank, negative size...)."""
