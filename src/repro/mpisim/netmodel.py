"""Network timing model of the simulated machine.

This plays the role of the paper's Explorer-100 cluster (QDR InfiniBand):
it is the "hardware" whose behaviour the SIM-MPI replay engine later tries
to *predict* with a fitted LogGP model.  To keep that prediction exercise
honest (paper Fig. 21 reports a 5.9% average error, not 0%), the machine
model is deliberately richer than plain LogGP: it has an eager/rendezvous
protocol switch with different per-byte costs in each regime, the way real
MPI implementations behave.

All times are in microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2


@dataclass(frozen=True)
class NetworkModel:
    """Timing parameters of the simulated interconnect."""

    latency: float = 1.6  # wire latency L (us), QDR-IB-like
    overhead: float = 0.7  # per-message CPU overhead o (us)
    gap_small: float = 0.00045  # per-byte cost below the eager threshold (us/B)
    gap_large: float = 0.00032  # per-byte cost above it (us/B), ~3 GB/s
    eager_threshold: int = 12288  # protocol switch point (bytes)
    rendezvous_setup: float = 2.4  # extra handshake latency for large messages

    # ---- point-to-point -----------------------------------------------

    def transfer_time(self, nbytes: int) -> float:
        """Network time from send start to arrival at the receiver."""
        if nbytes <= self.eager_threshold:
            return self.latency + nbytes * self.gap_small
        return self.latency + self.rendezvous_setup + nbytes * self.gap_large

    def send_cost(self, nbytes: int) -> float:
        """CPU time the sender spends in the send call (buffered/eager)."""
        return self.overhead + min(nbytes, self.eager_threshold) * self.gap_small * 0.25

    def recv_cost(self, _nbytes: int) -> float:
        """CPU time the receiver spends completing a matched receive."""
        return self.overhead

    # ---- collectives ---------------------------------------------------
    # Tree/log-round formulas: the shapes MPICH-style implementations use.

    def _rounds(self, nprocs: int) -> int:
        return max(1, ceil(log2(max(2, nprocs))))

    def collective_cost(self, op: str, nbytes: int, nprocs: int) -> float:
        """Time from the moment the *last* rank arrives until completion."""
        rounds = self._rounds(nprocs)
        hop = self.latency + 2 * self.overhead
        per_byte = self.gap_small if nbytes <= self.eager_threshold else self.gap_large
        if op == "MPI_Barrier":
            return rounds * hop
        if op in ("MPI_Bcast", "MPI_Reduce", "MPI_Scatter", "MPI_Gather"):
            return rounds * (hop + nbytes * per_byte)
        if op == "MPI_Allreduce":
            # reduce + bcast
            return 2 * rounds * (hop + nbytes * per_byte)
        if op == "MPI_Scan":
            # linear chain of partial reductions in tree-based impls: log rounds
            return rounds * (hop + nbytes * per_byte)
        if op == "MPI_Reduce_scatter":
            # reduce + scatterv: comparable to an allreduce's first half
            # plus a scatter round
            return (rounds + 1) * (hop + nbytes * per_byte)
        if op == "MPI_Allgather":
            # recursive doubling: log rounds, doubling data
            return rounds * hop + (nprocs - 1) * nbytes * per_byte
        if op == "MPI_Alltoall":
            # pairwise exchange: P-1 rounds of nbytes each
            return (nprocs - 1) * (hop + nbytes * per_byte)
        raise ValueError(f"unknown collective {op!r}")
