"""Simulated MPI runtime substrate (paper: real MPI library + PMPI layer)."""

from .runtime import Runtime, RunResult
from .netmodel import NetworkModel
from .pmpi import TraceSink, NullSink, MultiSink, TimingSink, RecordingSink
from .events import CommEvent
from .errors import (
    MPISimError,
    DeadlockError,
    CollectiveMismatchError,
    InvalidRequestError,
    ProgramError,
)

__all__ = [
    "Runtime",
    "RunResult",
    "NetworkModel",
    "TraceSink",
    "NullSink",
    "MultiSink",
    "TimingSink",
    "RecordingSink",
    "CommEvent",
    "MPISimError",
    "DeadlockError",
    "CollectiveMismatchError",
    "InvalidRequestError",
    "ProgramError",
]
