"""Message matching engine: envelopes, ordering, wildcard resolution.

Implements MPI matching semantics for the simulated runtime:

* messages between a (source, destination) pair on one communicator are
  *non-overtaking*: a receive matches the earliest-sent fitting message;
* ``ANY_SOURCE`` receives pick, among each source's earliest fitting
  message, the one with the smallest arrival time (ties broken by global
  send order) — the behaviour of a single-threaded progress engine;
* ``ANY_TAG`` matches any tag but still respects per-source send order for
  the tags it can match.

Sends are eager/buffered: the sender never blocks, the message is enqueued
at the destination with a computed arrival time.
"""

from __future__ import annotations

from dataclasses import dataclass

from .datatypes import ANY_SOURCE, ANY_TAG


@dataclass(frozen=True)
class Message:
    src: int
    dst: int
    tag: int
    nbytes: int
    comm: int
    send_time: float
    arrival_time: float
    seq: int  # global send sequence number (tie breaker)


class Mailbox:
    """Arrived-but-unmatched messages of one destination rank."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        # (comm, src) -> in-order list of pending messages from that source.
        self._queues: dict[tuple[int, int], list[Message]] = {}

    def deliver(self, msg: Message) -> None:
        self._queues.setdefault((msg.comm, msg.src), []).append(msg)

    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------

    def _first_fitting(self, queue: list[Message], tag: int) -> int | None:
        for i, msg in enumerate(queue):
            if tag == ANY_TAG or msg.tag == tag:
                return i
        return None

    def match(self, src: int, tag: int, comm: int) -> Message | None:
        """Find and consume the message a receive of (src, tag, comm) should
        match right now, or None if nothing fits yet."""
        if src != ANY_SOURCE:
            queue = self._queues.get((comm, src))
            if not queue:
                return None
            idx = self._first_fitting(queue, tag)
            if idx is None:
                return None
            return queue.pop(idx)
        # Wildcard source: consider every source's first fitting message.
        best_key: tuple[float, int] | None = None
        best: tuple[tuple[int, int], int] | None = None
        for key, queue in self._queues.items():
            if key[0] != comm or not queue:
                continue
            idx = self._first_fitting(queue, tag)
            if idx is None:
                continue
            msg = queue[idx]
            cand = (msg.arrival_time, msg.seq)
            if best_key is None or cand < best_key:
                best_key = cand
                best = (key, idx)
        if best is None:
            return None
        key, idx = best
        return self._queues[key].pop(idx)
