"""Communication event records — what the PMPI layer observes.

One :class:`CommEvent` is produced per MPI call, carrying the parameter set
the paper lists for communication vertices (§IV-A): *communication type,
size, direction, tag, context, and time*, plus request linkage for
asynchronous operations.

``key()`` returns the tuple compared during compression — everything but
the communication time, exactly as the paper merges records ("merging them
if all their communication parameters (all but the communication time)
match").
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Direction constants.
DIR_NONE = 0
DIR_SEND = 1
DIR_RECV = 2
DIR_BOTH = 3  # sendrecv

# Which ops carry which direction.
_OP_DIRECTION = {
    "MPI_Send": DIR_SEND,
    "MPI_Isend": DIR_SEND,
    "MPI_Recv": DIR_RECV,
    "MPI_Irecv": DIR_RECV,
    "MPI_Sendrecv": DIR_BOTH,
}

COLLECTIVES = frozenset(
    {
        "MPI_Barrier",
        "MPI_Bcast",
        "MPI_Reduce",
        "MPI_Allreduce",
        "MPI_Gather",
        "MPI_Scatter",
        "MPI_Allgather",
        "MPI_Alltoall",
        "MPI_Scan",
        "MPI_Reduce_scatter",
        "MPI_Comm_split",
    }
)

WAIT_OPS = frozenset({"MPI_Wait", "MPI_Waitall", "MPI_Waitsome", "MPI_Test"})

NONBLOCKING_OPS = frozenset({"MPI_Isend", "MPI_Irecv"})

NO_PEER = -100  # sentinel: op has no peer (collectives, init/finalize)


def direction_of(op: str) -> int:
    return _OP_DIRECTION.get(op, DIR_NONE)


@dataclass(slots=True)
class CommEvent:
    """A single traced MPI call of one rank.

    ``slots=True``: the tracing fast path reads a dozen fields per event
    (key-interning compares them one by one), and the runtime allocates
    one instance per MPI call — slot storage makes both cheap."""

    op: str
    rank: int
    seq: int  # per-rank event index (used to verify sequence preservation)
    peer: int = NO_PEER  # dest for sends, src for recvs; NO_PEER otherwise
    peer2: int = NO_PEER  # recv source for MPI_Sendrecv
    tag: int = 0
    tag2: int = 0  # recv tag for MPI_Sendrecv
    nbytes: int = 0
    nbytes2: int = 0  # recv bytes for MPI_Sendrecv
    comm: int = 0
    root: int = -1
    req: int = -1  # request id produced (Isend/Irecv)
    reqs: tuple[int, ...] = ()  # requests consumed (Wait*/Test)
    wildcard: bool = False  # posted with ANY_SOURCE (peer holds actual src)
    # MPI_Comm_split: the communicator id produced (deterministic, so the
    # same value on every rank of the same colour group).  For the split
    # event, tag carries the colour and peer carries the key (relative
    # encoding makes the common key==rank case merge across ranks).
    result_comm: int = -1
    time_start: float = 0.0
    duration: float = 0.0
    # Filled in by the CYPRESS tracer: GIDs the wait refers to (paper Fig 12)
    # and the GID of the vertex producing a request.
    req_gids: tuple[int, ...] = field(default_factory=tuple)

    def key(self) -> tuple:
        """Parameters compared when merging repeated records (everything
        except time and the per-rank sequence number).  Raw request ids are
        *excluded* — the CYPRESS tracer substitutes ``req_gids``; baselines
        compare the GID-free shape the same way ScalaTrace does (request
        handles are runtime values, never trace keys)."""
        return (
            self.op,
            self.peer,
            self.peer2,
            self.tag,
            self.tag2,
            self.nbytes,
            self.nbytes2,
            self.comm,
            self.root,
            self.wildcard,
            self.req_gids,
            self.result_comm,
        )

    @property
    def direction(self) -> int:
        return direction_of(self.op)

    def replay_tuple(self) -> tuple:
        """Canonical identity used to check sequence-preserving replay:
        the full call as the application issued it (no timing)."""
        return (
            self.op,
            self.peer,
            self.peer2,
            self.tag,
            self.tag2,
            self.nbytes,
            self.nbytes2,
            self.comm,
            self.root,
            self.wildcard,
            self.result_comm,
        )


def format_event(ev: CommEvent) -> str:
    """Single-line textual form, the unit of the raw-trace (Gzip) baseline."""
    parts = [ev.op, f"r{ev.rank}", f"t={ev.time_start:.3f}", f"d={ev.duration:.3f}"]
    if ev.peer != NO_PEER:
        parts.append(f"peer={ev.peer}")
    if ev.peer2 != NO_PEER:
        parts.append(f"peer2={ev.peer2}")
    if ev.nbytes:
        parts.append(f"bytes={ev.nbytes}")
    if ev.nbytes2:
        parts.append(f"bytes2={ev.nbytes2}")
    if ev.tag:
        parts.append(f"tag={ev.tag}")
    if ev.root >= 0:
        parts.append(f"root={ev.root}")
    if ev.req >= 0:
        parts.append(f"req={ev.req}")
    if ev.reqs:
        parts.append("reqs=" + ",".join(map(str, ev.reqs)))
    if ev.wildcard:
        parts.append("anysrc")
    return " ".join(parts)
