"""High-level execution driver: compile a MiniMPI program and run it on the
simulated MPI machine.

This is the glue the examples, workloads and benchmarks use::

    compiled = compile_minimpi(source)
    result = run_compiled(compiled, nprocs=64, tracer=my_sink)
"""

from __future__ import annotations

from repro.minilang.interp import Interpreter
from repro.mpisim.netmodel import NetworkModel
from repro.mpisim.pmpi import TraceSink
from repro.mpisim.runtime import Runtime, RunResult
from repro.static.instrument import CompiledProgram, compile_minimpi

__all__ = ["compile_minimpi", "run_compiled", "run_source"]


def run_compiled(
    compiled: CompiledProgram,
    nprocs: int,
    defines: dict[str, int] | None = None,
    tracer: TraceSink | None = None,
    network: NetworkModel | None = None,
    max_steps: int | None = None,
) -> RunResult:
    """Execute a compiled MiniMPI program on ``nprocs`` simulated ranks."""
    runtime = Runtime(nprocs, network=network, tracer=tracer)

    def rank_main(comm):
        interp = Interpreter(
            compiled.program,
            comm,
            defines=defines,
            plan=compiled.plan,
            max_steps=max_steps,
        )
        return interp.run()

    return runtime.run(rank_main)


def run_source(
    source: str,
    nprocs: int,
    defines: dict[str, int] | None = None,
    tracer: TraceSink | None = None,
    cypress: bool = True,
    network: NetworkModel | None = None,
    max_steps: int | None = None,
) -> tuple[CompiledProgram, RunResult]:
    """Compile and run in one call; returns (compiled, run result)."""
    compiled = compile_minimpi(source, cypress=cypress)
    result = run_compiled(
        compiled, nprocs, defines=defines, tracer=tracer,
        network=network, max_steps=max_steps,
    )
    return compiled, result
