#!/usr/bin/env python
"""Compare all four compression methods on an NPB-like workload.

Reproduces, for one workload/process count of your choice, the essence of
the paper's Figures 15/16/18: trace sizes, intra-process compression
overhead, and inter-process merge time for Gzip, ScalaTrace,
ScalaTrace-2 and CYPRESS — all from a single traced execution.

Run:  python examples/compare_compressors.py [workload] [nprocs]
      python examples/compare_compressors.py mg 16
"""

import sys

from repro.analysis import measure_all_methods
from repro.workloads import WORKLOADS, get


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mg"
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    if name not in WORKLOADS:
        raise SystemExit(f"unknown workload {name!r}; pick from {sorted(WORKLOADS)}")

    w = get(name)
    w.check_procs(nprocs)
    print(f"Running {name.upper()} on {nprocs} simulated ranks "
          f"({w.description})...\n")
    m = measure_all_methods(w, nprocs, scale=0.5)

    print(f"traced events: {m.app_events}; untraced run: "
          f"{m.base_seconds:.2f}s wall\n")
    header = (f"{'method':14s} {'trace':>10s} {'+gzip':>10s} "
              f"{'intra ovh':>10s} {'inter':>9s} {'memory':>10s}")
    print(header)
    print("-" * len(header))
    for method, r in m.methods.items():
        gz = f"{r.gzip_bytes}" if r.gzip_bytes is not None else "-"
        print(
            f"{method:14s} {r.trace_bytes:9d}B {gz:>9s}B "
            f"{m.overhead_pct(method, 'intra'):9.1f}% "
            f"{r.inter_seconds:8.3f}s {r.memory_bytes:9d}B"
        )

    cy = m.methods["cypress"]
    st = m.methods["scalatrace"]
    print("\nCYPRESS vs ScalaTrace:")
    print(f"  size   : {st.trace_bytes / max(1, cy.trace_bytes):.1f}x smaller")
    print(f"  intra  : {st.intra_seconds / max(1e-9, cy.intra_seconds):.1f}x faster")
    print(f"  inter  : {st.inter_seconds / max(1e-9, cy.inter_seconds):.1f}x faster")


if __name__ == "__main__":
    main()
