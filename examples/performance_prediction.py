#!/usr/bin/env python
"""Trace-driven performance prediction with SIM-MPI (paper §V, Fig. 21).

The paper's case study: trace LESlie3d with CYPRESS, decompress the
sequence-preserving traces, fit LogGP network parameters from a two-rank
ping-pong on the target machine, and predict the execution time at each
scale — then compare against the machine's measured time.

Run:  python examples/performance_prediction.py
"""

from repro import run_cypress
from repro.core.decompress import decompress_rank
from repro.replay import fit_loggp, predict
from repro.workloads import get


def main() -> None:
    print("Fitting LogGP parameters from a 2-rank ping-pong ladder...")
    params = fit_loggp()
    print(f"  L = {params.L:.2f} us (latency)")
    print(f"  o = {params.o:.2f} us (per-message CPU overhead)")
    print(f"  G = {params.G * 1e3:.3f} ns/byte (1/bandwidth)\n")

    w = get("leslie3d")
    print(f"{'procs':>6s} {'measured(ms)':>13s} {'predicted(ms)':>14s} "
          f"{'error':>7s} {'comm%':>6s}")
    errors = []
    for nprocs in (8, 16, 32, 64):
        run = run_cypress(w.source, nprocs, defines=w.defines(nprocs, 0.5))
        measured = run.run_result.elapsed
        # Per-rank replay: each rank's own computation gaps (the paper
        # gets these from deterministic replay on one node, SS V).
        traces = {r: decompress_rank(run.compressor.ctt(r))
                  for r in range(nprocs)}
        sim = predict(traces, params)
        err = abs(sim.elapsed - measured) / measured
        errors.append(err)
        print(
            f"{nprocs:6d} {measured / 1e3:13.2f} {sim.elapsed / 1e3:14.2f} "
            f"{err * 100:6.1f}% {sim.comm_fraction() * 100:5.1f}%"
        )
    print(f"\naverage prediction error: {100 * sum(errors) / len(errors):.1f}% "
          f"(paper reports 5.9%)")


if __name__ == "__main__":
    main()
