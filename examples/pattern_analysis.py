#!/usr/bin/env python
"""Communication-pattern analysis from compressed traces (paper §VII-D1,
Figs. 17/20).

Extracts the rank-to-rank volume matrix directly from a merged CTT —
without decompressing the trace — and renders it as an ASCII heatmap,
lists each rank's partners, and histograms the message sizes.  Used in
the paper to drive process-mapping optimisation.

Run:  python examples/pattern_analysis.py [workload] [nprocs]
      python examples/pattern_analysis.py leslie3d 32
"""

import sys

from repro import run_cypress
from repro.analysis import (
    ascii_heatmap,
    communication_matrix,
    message_sizes,
    neighbor_sets,
)
from repro.workloads import WORKLOADS, get


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "leslie3d"
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    if name not in WORKLOADS:
        raise SystemExit(f"unknown workload {name!r}; pick from {sorted(WORKLOADS)}")
    w = get(name)
    w.check_procs(nprocs)

    run = run_cypress(w.source, nprocs, defines=w.defines(nprocs, 0.5))
    merged = run.merge()
    matrix = communication_matrix(merged, nprocs)

    print(f"{name.upper()} on {nprocs} ranks — "
          f"{matrix.sum() / 1024:.0f} KB point-to-point traffic")
    print(f"(extracted from a {run.trace_bytes()}-byte compressed trace)\n")
    print(ascii_heatmap(matrix))

    neighbors = neighbor_sets(matrix)
    degree = {r: len(p) for r, p in neighbors.items()}
    print(f"\nrank 0 communicates with: {neighbors[0]}")
    print(f"partner count: min {min(degree.values())}, "
          f"max {max(degree.values())}")

    sizes = message_sizes(merged)
    print("\nmessage sizes:")
    for nbytes, count in sorted(sizes.items()):
        print(f"  {nbytes / 1024:8.1f} KB x {count}")


if __name__ == "__main__":
    main()
