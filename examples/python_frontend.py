#!/usr/bin/env python
"""Trace a hand-written *Python* rank function with CYPRESS.

MiniMPI programs get their communication structure tree from static
analysis; Python code declares it instead (it mirrors the code shape) and
annotates loops/branches with lightweight markers — the way one would
retrofit CYPRESS onto an mpi4py application.

This example runs a 2D halo exchange written directly in Python, traces
it on 16 simulated ranks, and shows compression + exact replay.

Run:  python examples/python_frontend.py
"""

from repro.frontend import S, run_python
from repro.mpisim import RecordingSink

# The declared structure mirrors the code below.
SPEC = S.root(
    S.call("mpi_init"),
    S.loop(
        "timestep",
        S.branch("north", S.call("mpi_irecv"), S.call("mpi_isend")),
        S.branch("south", S.call("mpi_irecv"), S.call("mpi_isend")),
        S.branch("west", S.call("mpi_irecv"), S.call("mpi_isend")),
        S.branch("east", S.call("mpi_irecv"), S.call("mpi_isend")),
        S.call("mpi_waitall"),
        S.branch("norm_step", S.call("mpi_allreduce")),
    ),
    S.call("mpi_finalize"),
)

PX = 4  # process grid width
HALO = 16 * 1024
STEPS = 30


def rank_main(tc):
    """One rank of a 2D stencil: 4-neighbour halo exchange per step."""
    yield from tc.mpi("mpi_init")
    rank, size = tc.rank, tc.size
    py = size // PX
    row, col = divmod(rank, PX)
    requests = []

    for step in tc.loop("timestep", range(STEPS)):
        requests.clear()
        for label, cond, peer in (
            ("north", row > 0, rank - PX),
            ("south", row < py - 1, rank + PX),
            ("west", col > 0, rank - 1),
            ("east", col < PX - 1, rank + 1),
        ):
            with tc.branch_scope(label, cond) as taken:
                if taken:
                    r1 = yield from tc.mpi("mpi_irecv", peer, HALO, 7)
                    r2 = yield from tc.mpi("mpi_isend", peer, HALO, 7)
                    requests += [r1, r2]
        yield from tc.mpi("mpi_waitall", list(requests), len(requests))
        tc.compute(400)  # the stencil sweep
        with tc.branch_scope("norm_step", step % 10 == 9) as taken:
            if taken:
                yield from tc.mpi("mpi_allreduce", 8)
    yield from tc.mpi("mpi_finalize")


def main() -> None:
    nprocs = 16
    rec = RecordingSink()
    run = run_python(rank_main, SPEC, nprocs, extra_sinks=[rec])

    total_events = run.run_result.total_events
    print(f"{nprocs} ranks, {total_events} events, "
          f"{run.run_result.elapsed / 1e3:.1f} ms virtual time")
    print(f"compressed trace: {run.trace_bytes()} bytes "
          f"({run.trace_bytes(gzip=True)} gzipped)")

    # Verify sequence preservation against the ground-truth recording.
    for rank in range(nprocs):
        truth = [e.replay_tuple() for e in rec.events[rank]]
        replay = [e.call_tuple() for e in run.replay(rank)]
        assert replay == truth
    print("replay check: every rank's exact event sequence reproduced")

    corner, interior = run.replay(0), run.replay(5)
    print(f"rank 0 (corner) events: {len(corner)}; "
          f"rank 5 (interior): {len(interior)}")


if __name__ == "__main__":
    main()
