#!/usr/bin/env python
"""Quickstart: compile, trace, compress, inspect, and replay a small MPI
program with CYPRESS.

Walks the full pipeline on the paper's running example (a Jacobi-style
halo exchange, Fig. 3):

1. compile the MiniMPI source — the static pass extracts the CST;
2. run it on the simulated MPI machine with the CYPRESS tracer attached;
3. merge the per-rank compressed trace trees (CTTs);
4. serialize (optionally gzip) and show the sizes;
5. decompress rank 0's exact original event sequence.

Run:  python examples/quickstart.py
"""

from repro import run_cypress
from repro.core import serialize
from repro.static import compile_minimpi

JACOBI = """
// Paper Fig. 3: simplified Jacobi iteration.
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var k = 0; k < steps; k = k + 1) {
    if (rank < size - 1) { mpi_send(rank + 1, 8 * n, 1); }
    if (rank > 0)        { mpi_recv(rank - 1, 8 * n, 1); }
    if (rank > 0)        { mpi_send(rank - 1, 8 * n, 2); }
    if (rank < size - 1) { mpi_recv(rank + 1, 8 * n, 2); }
    compute(250);     // the sweep itself (microseconds of virtual time)
  }
  mpi_reduce(0, 8);   // global residual
  mpi_finalize();
}
"""


def main() -> None:
    nprocs = 16
    defines = {"steps": 50, "n": 1024}

    # 1. Static phase: extract the Communication Structure Tree.
    compiled = compile_minimpi(JACOBI)
    print("=== CST extracted at compile time ===")
    print(compiled.cst.pretty())
    print(f"(compile took {compiled.compile_seconds * 1000:.1f} ms)\n")

    # 2+3. Dynamic phase: trace 16 simulated ranks, compress on the fly.
    run = run_cypress(compiled, nprocs, defines=defines, measure_overhead=True)
    result = run.run_result
    print("=== Execution ===")
    print(f"ranks          : {nprocs}")
    print(f"events traced  : {result.total_events}")
    print(f"virtual time   : {result.elapsed / 1e3:.1f} ms")
    print(f"compression CPU: {run.intra_seconds * 1e3:.1f} ms\n")

    # 4. Sizes.
    merged = run.merge()
    raw = len(serialize.dumps(merged))
    gz = len(serialize.dumps(merged, gzip=True))
    naive = result.total_events * 64  # ~64 bytes/event in a flat trace
    print("=== Compressed trace ===")
    print(f"merged CTT     : {merged.vertex_count()} vertices, "
          f"{merged.group_count()} rank groups")
    print(f"CYPRESS        : {raw} bytes")
    print(f"CYPRESS+Gzip   : {gz} bytes")
    print(f"flat trace est.: {naive} bytes "
          f"({naive / raw:.0f}x larger)\n")

    # 5. Sequence-preserving replay.
    events = run.replay(rank=0)
    print("=== Rank 0 replay (first 8 events) ===")
    for ev in events[:8]:
        peer = f" -> rank {ev.peer}" if ev.peer >= 0 else ""
        print(f"  {ev.op}{peer}  bytes={ev.nbytes}  "
              f"mean_dur={ev.mean_duration:.2f}us")
    print(f"  ... {len(events)} events total, exact original order")


if __name__ == "__main__":
    main()
