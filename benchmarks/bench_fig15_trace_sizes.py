"""Figure 15 — total communication trace sizes (KB) of the NPB programs
for Gzip / ScalaTrace / ScalaTrace2 / ScalaTrace2+Gzip / Cypress /
Cypress+Gzip across process counts.

Expected shapes (asserted): Gzip grows ~linearly with P; CYPRESS stays
flat-to-sublinear and beats raw Gzip everywhere; on MG (complex nested
patterns) CYPRESS beats ScalaTrace outright; on SP (varied sizes/tags)
ScalaTrace-2's elastic encoding is competitive with or better than
CYPRESS.
"""

import pytest

from .common import SCALE, emit, fmt_row, measurement, procs_for, size_kb

NPB = ("bt", "cg", "dt", "ep", "ft", "lu", "mg", "sp")
SERIES = ("gzip", "scalatrace", "scalatrace2", "scalatrace2+gzip",
          "cypress", "cypress+gzip")


@pytest.mark.parametrize("name", NPB)
def test_fig15_table(benchmark, name):
    def build():
        rows = []
        for nprocs in procs_for(name):
            m = measurement(name, nprocs)
            rows.append((nprocs, {s: size_kb(m, s) for s in SERIES}))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    widths = [6] + [17] * len(SERIES)
    lines = [
        f"Figure 15 ({name.upper()}): total trace size in KB, scale={SCALE}",
        fmt_row(["procs", *SERIES], widths),
    ]
    for nprocs, sizes in rows:
        lines.append(
            fmt_row([nprocs] + [f"{sizes[s]:.2f}" for s in SERIES], widths)
        )
    emit(f"fig15_{name}", lines)

    # --- shape assertions -------------------------------------------------
    first, last = rows[0], rows[-1]
    growth = last[0] / first[0]
    # Gzip scales with P...
    assert last[1]["gzip"] > first[1]["gzip"] * (growth / 3)
    # ...while CYPRESS stays flat-to-sublinear.
    assert last[1]["cypress"] < first[1]["cypress"] * growth
    # The shipped form (Cypress+Gzip) beats per-rank Gzip once the job is
    # past toy sizes; asserted at the grid's largest process count.
    assert last[1]["cypress+gzip"] < last[1]["gzip"], name
    if name == "mg":
        for nprocs, sizes in rows:
            assert sizes["cypress"] < sizes["scalatrace"], f"mg@{nprocs}"
    if name == "sp":
        # ScalaTrace-2+Gzip is the one combination that can beat CYPRESS
        # (the paper's one loss, Fig. 15h).
        nprocs, sizes = rows[-1]
        assert sizes["scalatrace2+gzip"] < sizes["cypress"]
