"""Merge-scaling sweep: serial vs parallel inter-process merge, P up to 1024.

The inter-process merge is the one CYPRESS stage whose input grows with
the job size (P per-rank CTTs), so its asymptotics decide whether the
top-down design survives at scale.  This bench builds synthetic rank
populations by cloning the CTTs of a real traced run of a FIG5-style
even/odd halo kernel — relative peer encoding means clones of the same
template carry identical payloads and group together, exactly the
regular-application regime of the paper — then times

* ``fold``  — left fold, the O(P) chain of pairwise absorbs;
* ``tree``  — serial binary reduction tree (O(log P) depth);
* ``parallel`` — the multiprocessing tree schedule (``workers="auto"``).

All three must produce byte-identical serialized traces (deferred
canonical-order stats materialization makes the merge association-free).
Results go to ``results/merge_scaling.json`` including a log-log scaling
exponent for the serial tree; the acceptance bar is sub-quadratic
(exponent < 2) at P = 1024.

Run directly (``python -m benchmarks.bench_merge_scaling``) for the full
sweep, or with ``--smoke`` (CI) for the two smallest points.  Under
pytest the quick grid is used unless ``REPRO_FULL=1``.
"""

from __future__ import annotations

import copy
import json
import math
import sys
import time

from repro.core import serialize
from repro.core.inter import merge_all
from repro.core.intra import IntraProcessCompressor
from repro.driver import run_compiled
from repro.static.instrument import compile_minimpi

from .common import FULL, RESULTS_DIR

SMOKE_GRID = (16, 64)
FULL_GRID = (16, 32, 64, 128, 256, 512, 1024)

TEMPLATE_RANKS = 8

# Even/odd halo exchange (the paper's Fig. 5 shape): every rank swaps a
# face with both neighbours each step, evens send first.  Peers are
# rank-relative, so interior ranks compress to identical CTT payloads.
_SOURCE = """
func main() {
  mpi_init();
  var rank = mpi_comm_rank();
  var size = mpi_comm_size();
  for (var step = 0; step < steps; step = step + 1) {
    if (rank % 2 == 0) {
      if (rank + 1 < size) {
        mpi_send(rank + 1, nbytes, 10);
        mpi_recv(rank + 1, nbytes, 11);
      }
      if (rank - 1 >= 0) {
        mpi_send(rank - 1, nbytes, 12);
        mpi_recv(rank - 1, nbytes, 13);
      }
    } else {
      mpi_recv(rank - 1, nbytes, 10);
      mpi_send(rank - 1, nbytes, 11);
      if (rank + 1 < size) {
        mpi_recv(rank + 1, nbytes, 12);
        mpi_send(rank + 1, nbytes, 13);
      }
    }
    compute(50);
  }
  mpi_finalize();
}
"""


def _template_ctts():
    """Trace the halo kernel once on TEMPLATE_RANKS real ranks."""
    compiled = compile_minimpi(_SOURCE, source_name="<merge-scaling>")
    comp = IntraProcessCompressor(compiled.cst)
    run_compiled(
        compiled, TEMPLATE_RANKS, defines={"steps": 12, "nbytes": 4096},
        tracer=comp,
    )
    return [comp.ctt(r) for r in range(TEMPLATE_RANKS)]


def synthesize_ranks(templates, nranks: int):
    """Clone templates out to ``nranks`` synthetic CTTs.

    Interior templates carry purely rank-relative payloads, so clones at
    the same position mod TEMPLATE_RANKS merge into stride-compressed
    rank groups — the regular-pattern regime the merge is built for.
    """
    ctts = []
    for r in range(nranks):
        # Keep boundary templates (absolute-edge behaviour) only at the
        # real boundaries; fill the interior with interior templates.
        if r == 0:
            t = templates[0]
        elif r == nranks - 1:
            t = templates[TEMPLATE_RANKS - 1]
        else:
            t = templates[2 + (r - 2) % (TEMPLATE_RANKS - 4)] if nranks > 4 \
                else templates[r % TEMPLATE_RANKS]
        clone = copy.deepcopy(t)
        clone.rank = r
        ctts.append(clone)
    return ctts


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def run_point(templates, nranks: int, workers="auto") -> dict:
    ctts = synthesize_ranks(templates, nranks)
    merged_fold, fold_s = _timed(lambda: merge_all(ctts, schedule="fold"))
    merged_tree, tree_s = _timed(lambda: merge_all(ctts, schedule="tree"))
    merged_par, par_s = _timed(
        lambda: merge_all(
            ctts, schedule="tree", workers=workers, parallel_threshold=16
        )
    )
    blob_fold = serialize.dumps(merged_fold)
    blob_tree = serialize.dumps(merged_tree)
    blob_par = serialize.dumps(merged_par)
    assert blob_tree == blob_fold, f"tree != fold bytes at P={nranks}"
    assert blob_par == blob_tree, f"parallel != serial bytes at P={nranks}"
    groups = sum(len(v.groups) for v in merged_tree.vertices())
    return {
        "nranks": nranks,
        "fold_s": round(fold_s, 6),
        "tree_s": round(tree_s, 6),
        "parallel_s": round(par_s, 6),
        "trace_bytes": len(blob_tree),
        "groups": groups,
    }


def scaling_exponent(points: list[dict], key: str = "tree_s") -> float:
    """Least-squares slope of log(time) vs log(P)."""
    xs = [math.log(p["nranks"]) for p in points]
    ys = [math.log(max(p[key], 1e-9)) for p in points]
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    denom = sum((x - mx) ** 2 for x in xs)
    if denom == 0:
        return 0.0
    return sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / denom


def run_sweep(grid, workers="auto") -> dict:
    templates = _template_ctts()
    points = [run_point(templates, p, workers=workers) for p in grid]
    result = {
        "bench": "merge_scaling",
        "grid": list(grid),
        "workers": workers,
        "points": points,
        "tree_scaling_exponent": round(scaling_exponent(points), 3),
        "fold_scaling_exponent": round(
            scaling_exponent(points, "fold_s"), 3
        ),
    }
    return result


def emit_json(result: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "merge_scaling.json"
    path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {path}")


# ---------------------------------------------------------------------------
# pytest entry points


def test_merge_scaling_sweep():
    grid = FULL_GRID if FULL else SMOKE_GRID
    result = run_sweep(grid)
    for p in result["points"]:
        print(
            f"  P={p['nranks']:5d}  fold {p['fold_s']:.4f}s  "
            f"tree {p['tree_s']:.4f}s  parallel {p['parallel_s']:.4f}s  "
            f"{p['trace_bytes']} bytes"
        )
    if FULL:
        emit_json(result)
    # Sub-quadratic: a P^2 merge would show exponent ~2 on this sweep.
    assert result["tree_scaling_exponent"] < 1.8, result


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    smoke = "--smoke" in argv
    grid = SMOKE_GRID if smoke else FULL_GRID
    result = run_sweep(grid)
    print(f"merge scaling sweep (workers={result['workers']}):")
    print(f"  {'P':>6s} {'fold (s)':>10s} {'tree (s)':>10s} "
          f"{'parallel (s)':>13s} {'bytes':>10s} {'groups':>7s}")
    for p in result["points"]:
        print(
            f"  {p['nranks']:6d} {p['fold_s']:10.4f} {p['tree_s']:10.4f} "
            f"{p['parallel_s']:13.4f} {p['trace_bytes']:10d} "
            f"{p['groups']:7d}"
        )
    print(f"  tree scaling exponent: {result['tree_scaling_exponent']}"
          f" (fold: {result['fold_scaling_exponent']})")
    if not smoke:
        emit_json(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
