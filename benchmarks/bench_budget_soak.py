"""Flat-RSS soak gate for bounded-memory streaming compression.

Compresses a 100x-longer fig11/cg workload (measured in *events*, not
the scale knob — cg's event count grows quadratically in scale) through
the budgeted interleaved-ingest path (docs/INTERNALS.md §15) and fails
if the process RSS grows past ``budget + fixed overhead`` during
ingestion.  The capture phase is excluded from the gate: the captured
streams are allocated before the baseline RSS is taken and stay
constant while the compressor runs, so the sampled delta isolates
compressor growth.

A 1-byte budget maximizes pressure — every idle rank is spilled on
every enforcement pass, so the soak also proves sustained
spill/evict/reload traffic stays byte-identical to the unbudgeted
pipeline.  The gate asserts:

* sampled peak RSS <= baseline + budget + ``FIXED_OVERHEAD``;
* the merged container is byte-identical to ``merge_all`` over the
  unbudgeted per-rank CTTs;
* spills > 0, reloads > 0, folds == nprocs (the soak actually soaked).

``budget.spills`` / ``budget.reloads`` / ``budget.live_bytes`` (and the
peaks) land in ``results/bench_budget_soak.json`` and, when an
observability registry is active, as ``bench.budget_soak.*`` gauges.
"""

from __future__ import annotations

import gc
import json
import sys
import threading
import time

from repro.core import serialize
from repro.core.inter import merge_all
from repro.core.intra import CypressConfig, IntraProcessCompressor, compress_streams
from repro.driver import run_compiled
from repro.mpisim.pmpi import StreamCaptureSink
from repro.static.instrument import compile_minimpi
from repro.workloads import WORKLOADS

from .common import RESULTS_DIR, emit, fmt_row, publish_gauges

#: Scale knob per workload that yields ~100x the scale-1.0 event count
#: (fig11 scales linearly; cg's niter and cgitmax both scale, so events
#: grow ~quadratically and scale 10 already lands at ~91x).
SOAK_SCALES = {"fig11": 100.0, "cg": 10.0}

#: The soak budget.  One byte maximizes eviction pressure: every rank
#: is over budget the moment it holds any state, so each round-robin
#: pass spills the idle ranks and reloads them on their next batch.
BUDGET_BYTES = 1

#: Allowance on top of the budget for everything that is not CTT state:
#: allocator slack, the partial merged tree, spill I/O buffers, the
#: sampler thread.  An unbounded-buffering regression on a ~400k-event
#: soak costs tens of MB and blows through this.
FIXED_OVERHEAD = 32 << 20

#: Batch size of the round-robin ingest (server-style interleaving).
CHUNK = 4096


def _vm_rss() -> int:
    """Resident set size in bytes via /proc (psutil-free)."""
    with open("/proc/self/status") as f:
        for line in f:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmRSS not found in /proc/self/status")


class _RssSampler:
    """Background thread sampling VmRSS; tracks the peak seen."""

    def __init__(self, interval: float = 0.002):
        self.interval = interval
        self.peak = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self._stop.is_set():
            rss = _vm_rss()
            if rss > self.peak:
                self.peak = rss
            self._stop.wait(self.interval)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join()
        rss = _vm_rss()  # final sample so short phases are never missed
        if rss > self.peak:
            self.peak = rss


def soak_one(name: str) -> dict:
    w = WORKLOADS[name]
    nprocs = 4 if 4 in w.valid_procs else min(w.valid_procs)
    scale = SOAK_SCALES[name]

    compiled = compile_minimpi(w.source)
    capture = StreamCaptureSink()
    t0 = time.perf_counter()
    run_compiled(
        compiled, nprocs, defines=w.defines(nprocs, scale), tracer=capture
    )
    capture_s = time.perf_counter() - t0
    streams = capture.streams
    events = sum(len(s) for s in streams.values())

    # Unbudgeted reference bytes, then drop the reference compressor so
    # its memory is not resident during the gated phase.
    ref = compress_streams(compiled.cst, streams)
    ref_blob = serialize.dumps(merge_all(
        [ref.ctt(r) for r in sorted(streams)], nranks=nprocs))
    del ref
    gc.collect()
    rss_base = _vm_rss()

    comp = IntraProcessCompressor(
        compiled.cst, config=CypressConfig(memory_budget_bytes=BUDGET_BYTES)
    )
    comp.enable_incremental_fold(nranks=nprocs, domain=range(nprocs))
    cursors = {r: 0 for r in streams}
    live = sorted(streams)
    t0 = time.perf_counter()
    with _RssSampler() as sampler:
        while live:
            for r in list(live):
                s = streams[r]
                if cursors[r] >= len(s):
                    comp.seal_rank(r)
                    live.remove(r)
                    continue
                comp.ingest_stream(r, s[cursors[r]:cursors[r] + CHUNK])
                cursors[r] += CHUNK
        blob = serialize.dumps(comp.merged(nranks=nprocs))
    ingest_s = time.perf_counter() - t0
    comp.close_spill()

    bc = comp.budget_counters
    limit = rss_base + BUDGET_BYTES + FIXED_OVERHEAD
    result = {
        "workload": name,
        "nprocs": nprocs,
        "events": events,
        "capture_seconds": round(capture_s, 3),
        "ingest_seconds": round(ingest_s, 3),
        "identical": blob == ref_blob,
        "rss_base_bytes": rss_base,
        "rss_peak_bytes": sampler.peak,
        "rss_limit_bytes": limit,
        "rss_flat": sampler.peak <= limit,
        **bc.as_metrics(),
    }

    assert result["identical"], (
        f"{name}: budgeted container differs from unbudgeted merge_all "
        f"({len(blob)} vs {len(ref_blob)} bytes)")
    assert result["rss_flat"], (
        f"{name}: peak RSS {sampler.peak} exceeds baseline {rss_base} + "
        f"budget {BUDGET_BYTES} + overhead {FIXED_OVERHEAD}")
    assert bc.spills > 0, f"{name}: soak produced no spills"
    assert bc.reloads > 0, f"{name}: soak produced no reloads"
    assert bc.folds == nprocs, (
        f"{name}: {bc.folds} folds, expected {nprocs}")
    return result


def main(argv=None) -> int:
    results = [soak_one(name) for name in sorted(SOAK_SCALES)]

    widths = [8, 8, 9, 8, 8, 7, 12, 12, 6]
    lines = [
        "Budget soak (100x events, budget=%d B, overhead=%d MiB)"
        % (BUDGET_BYTES, FIXED_OVERHEAD >> 20),
        fmt_row(["shape", "events", "spills", "reloads", "folds",
                 "peak_kb", "rss_delta_kb", "ingest_s", "flat"], widths),
    ]
    for r in results:
        lines.append(fmt_row([
            r["workload"], r["events"], r["budget.spills"],
            r["budget.reloads"], r["budget.folds"],
            r["budget.peak_live_bytes"] // 1024,
            (r["rss_peak_bytes"] - r["rss_base_bytes"]) // 1024,
            r["ingest_seconds"], "ok" if r["rss_flat"] else "FAIL",
        ], widths))
    emit("bench_budget_soak", lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_budget_soak.json").write_text(
        json.dumps({r["workload"]: r for r in results}, indent=2) + "\n")
    for r in results:
        publish_gauges(f"budget_soak.{r['workload']}", {
            k.replace("budget.", ""): v
            for k, v in r.items() if k.startswith("budget.")
        })
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
