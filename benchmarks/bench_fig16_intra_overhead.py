"""Figure 16 — intra-process compression overhead: time % (vs the
untraced run) and per-process compressor memory, for ScalaTrace /
ScalaTrace-2 / CYPRESS on BT, CG, FT, LU, MG, SP.

Paper headline (§VII-C1): NPB average intra overhead 51.05% (ScalaTrace),
9.1% (ScalaTrace-2), 1.58% (CYPRESS) — an average ~5x reduction vs the
best dynamic method.  We assert the ordering and a >2x CYPRESS-vs-
ScalaTrace gap on every workload (Python constants differ; direction and
factor are the reproducible part).
"""

import pytest

from repro.analysis.stats import APP_MEMORY_BASELINE

from .common import SCALE, emit, fmt_row, measurement, procs_for

WORKLOADS = ("bt", "cg", "ft", "lu", "mg", "sp")
METHODS = ("scalatrace", "scalatrace2", "cypress")


@pytest.mark.parametrize("name", WORKLOADS)
def test_fig16_table(benchmark, name):
    def build():
        rows = []
        for nprocs in procs_for(name):
            m = measurement(name, nprocs)
            time_pct = {k: m.overhead_pct(k, "intra") for k in METHODS}
            mem_pct = {
                k: 100.0 * m.methods[k].memory_bytes / APP_MEMORY_BASELINE
                for k in ("scalatrace", "cypress")
            }
            rows.append((nprocs, time_pct, mem_pct))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    widths = [6, 16, 16, 16, 14, 14]
    lines = [
        f"Figure 16 ({name.upper()}): intra-process overhead, scale={SCALE}",
        fmt_row(
            ["procs", "t%ScalaTrace", "t%ScalaTrace2", "t%Cypress",
             "m%ScalaTrace", "m%Cypress"],
            widths,
        ),
    ]
    for nprocs, tp, mp in rows:
        lines.append(
            fmt_row(
                [
                    nprocs,
                    f"{tp['scalatrace']:.1f}",
                    f"{tp['scalatrace2']:.1f}",
                    f"{tp['cypress']:.1f}",
                    f"{mp['scalatrace']:.4f}",
                    f"{mp['cypress']:.4f}",
                ],
                widths,
            )
        )
    emit(f"fig16_{name}", lines)

    # --- shape assertions -------------------------------------------------
    for nprocs, tp, mp in rows:
        assert tp["cypress"] < tp["scalatrace"], f"{name}@{nprocs}"
        assert mp["cypress"] <= mp["scalatrace"] * 1.5, f"{name}@{nprocs}"


def test_fig16_average_summary(benchmark):
    """The §VII-C1 averages across the six workloads."""

    def build():
        total = {k: 0.0 for k in METHODS}
        n = 0
        for name in WORKLOADS:
            for nprocs in procs_for(name):
                m = measurement(name, nprocs)
                for k in METHODS:
                    total[k] += m.overhead_pct(k, "intra")
                n += 1
        return {k: v / n for k, v in total.items()}

    avg = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = [
        "Figure 16 summary: average intra-process time overhead (paper: "
        "ScalaTrace 51.05%, ScalaTrace2 9.1%, Cypress 1.58%)",
    ] + [f"  {k:12s} {v:8.1f}%" for k, v in avg.items()]
    emit("fig16_summary", lines)
    # CYPRESS must be the cheapest by a clear factor.  (Our ScalaTrace-2
    # reimplementation pays ~20% more per event than ScalaTrace-1 on the
    # *regular* codes — elastic shape matching isn't free — so the
    # paper's ST2 < ST ordering only reproduces on the complex patterns;
    # see EXPERIMENTS.md.)
    assert avg["cypress"] < avg["scalatrace"]
    assert avg["cypress"] < avg["scalatrace2"]
    assert avg["cypress"] * 2 < avg["scalatrace"]
