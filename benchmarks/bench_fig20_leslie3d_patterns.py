"""Figure 20 — LESlie3d communication patterns at 32 and 64 processes,
extracted from the CYPRESS compressed traces.

Paper §VII-D1: "the process 0 only communicates with the processes of 1,
2 and 8. There are only two types of message sizes, 43KB and 83KB."  Both
facts are asserted verbatim.
"""

import numpy as np
import pytest

from repro.analysis.patterns import (
    ascii_heatmap,
    communication_matrix,
    message_sizes,
    neighbor_sets,
)
from repro.core import run_cypress
from repro.workloads import get

from .common import SCALE, emit


def _run(nprocs):
    w = get("leslie3d")
    run = run_cypress(w.source, nprocs, defines=w.defines(nprocs, SCALE))
    return run.merge()


@pytest.mark.parametrize("nprocs", [32, 64])
def test_fig20_pattern(benchmark, nprocs):
    merged = benchmark.pedantic(lambda: _run(nprocs), rounds=1, iterations=1)
    matrix = communication_matrix(merged, nprocs)
    emit(
        f"fig20_{nprocs}",
        [
            f"Figure 20: LESlie3d communication pattern ({nprocs} procs)",
            ascii_heatmap(matrix),
            f"rank 0 partners: {neighbor_sets(matrix)[0]}",
            f"message sizes:   {sorted(message_sizes(merged))}",
        ],
    )

    # Locality (paper's observation at 32 procs).
    neighbors = neighbor_sets(matrix)
    if nprocs == 32:
        assert neighbors[0] == [1, 2, 8]
    # Every rank talks to at most 6 partners (3D stencil).
    assert max(len(v) for v in neighbors.values()) <= 6
    # Exactly the two observed message sizes.
    assert sorted(message_sizes(merged)) == [43 * 1024, 83 * 1024]
    # Band structure: all traffic on short diagonals.
    src, dst = np.nonzero(matrix)
    assert (np.abs(src - dst) <= nprocs // 4).all()
