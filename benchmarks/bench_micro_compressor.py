"""Microbenchmarks: per-event compressor cost, isolated from the runtime.

Feeds identical synthetic event/marker streams straight into each
compressor, measuring pure compression throughput — the cleanest view of
the paper's O(1)-per-event claim (CYPRESS compares an event only against
records at its own CTT vertex; ScalaTrace searches its queue tail).
"""

from repro.baselines.scalatrace import ScalaTraceCompressor
from repro.baselines.scalatrace2 import ScalaTrace2Compressor
from repro.core.intra import IntraProcessCompressor
from repro.mpisim.events import CommEvent
from repro.static.instrument import compile_minimpi

from .common import emit

# A loop over a branch pair — the paper's Fig. 11 shape.
PROGRAM = """
func main() {
  for (var i = 0; i < n; i = i + 1) {
    if (i % 2 == 0) { mpi_send(1, 4096, 7); } else { mpi_recv(1, 4096, 7); }
    mpi_allreduce(8);
  }
}
"""

N_EVENTS = 4000


def _drive_cypress(comp, loop_id, branch_id, iters):
    seq = 0
    comp.on_loop_push(0, loop_id)
    for i in range(iters):
        comp.on_loop_iter(0, loop_id)
        path = 0 if i % 2 == 0 else 1
        comp.on_branch_enter(0, branch_id, path)
        op = "MPI_Send" if path == 0 else "MPI_Recv"
        comp.on_event(0, CommEvent(op=op, rank=0, seq=seq, peer=1,
                                   tag=7, nbytes=4096))
        seq += 1
        comp.on_branch_exit(0, branch_id)
        comp.on_event(0, CommEvent(op="MPI_Allreduce", rank=0, seq=seq,
                                   nbytes=8))
        seq += 1
    comp.on_loop_pop(0, loop_id)


def _drive_flat(comp, iters):
    seq = 0
    for i in range(iters):
        op = "MPI_Send" if i % 2 == 0 else "MPI_Recv"
        comp.on_event(0, CommEvent(op=op, rank=0, seq=seq, peer=1,
                                   tag=7, nbytes=4096))
        seq += 1
        comp.on_event(0, CommEvent(op="MPI_Allreduce", rank=0, seq=seq,
                                   nbytes=8))
        seq += 1


def _structure_ids():
    compiled = compile_minimpi(PROGRAM)
    loop_id = branch_id = None
    for node in compiled.cst.preorder():
        if node.kind == "loop":
            loop_id = node.ast_id
        if node.kind == "branch" and branch_id is None:
            branch_id = node.ast_id
    return compiled.cst, loop_id, branch_id


def test_micro_cypress_throughput(benchmark):
    cst, loop_id, branch_id = _structure_ids()

    def run():
        comp = IntraProcessCompressor(cst)
        _drive_cypress(comp, loop_id, branch_id, N_EVENTS // 2)
        return comp

    comp = benchmark(run)
    # Compression happened: 3 leaf records total (send/recv/allreduce).
    assert comp.ctt(0).record_count() == 3


def test_micro_scalatrace_throughput(benchmark):
    def run():
        comp = ScalaTraceCompressor()
        _drive_flat(comp, N_EVENTS // 2)
        return comp

    comp = benchmark(run)
    assert len(comp.queue(0)) < 10  # folded into RSDs


def test_micro_scalatrace2_throughput(benchmark):
    def run():
        comp = ScalaTrace2Compressor()
        _drive_flat(comp, N_EVENTS // 2)
        return comp

    comp = benchmark(run)
    assert len(comp.queue(0)) < 10


def test_micro_summary(benchmark):
    """Events/second for each compressor, printed side by side."""
    import time

    cst, loop_id, branch_id = _structure_ids()

    def measure():
        out = {}
        t0 = time.perf_counter()
        comp = IntraProcessCompressor(cst)
        _drive_cypress(comp, loop_id, branch_id, N_EVENTS // 2)
        out["cypress"] = N_EVENTS / (time.perf_counter() - t0)
        t0 = time.perf_counter()
        _drive_flat(ScalaTraceCompressor(), N_EVENTS // 2)
        out["scalatrace"] = N_EVENTS / (time.perf_counter() - t0)
        t0 = time.perf_counter()
        _drive_flat(ScalaTrace2Compressor(), N_EVENTS // 2)
        out["scalatrace2"] = N_EVENTS / (time.perf_counter() - t0)
        return out

    rates = benchmark.pedantic(measure, rounds=3, iterations=1)
    emit(
        "micro_compressor",
        ["Microbench: compressor throughput (events/s, marker cost included "
         "for CYPRESS)"]
        + [f"  {k:12s} {v:12.0f}" for k, v in rates.items()],
    )
    assert rates["cypress"] > 0
